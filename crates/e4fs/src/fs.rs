//! The `E4Fs` file system: block groups, write-through metadata, ordered
//! journaling.

use std::collections::{BTreeMap, HashMap};

use parking_lot::Mutex;
use simdev::Device;
use tvfs::{
    DirEntry, FileAttr, FileSystem, FileType, InodeNo, Linear, PageCache, RangeMap, SetAttr,
    StatFs, VfsError, VfsResult, ROOT_INO,
};

use crate::bitmap;
use crate::jbd2::Jbd2;
use crate::layout::{
    decode_dentries, decode_extent_block, encode_dentries, encode_extent_block, DiskInode,
    Superblock, BLOCK, INLINE_EXTENTS, MAGIC,
};
use crate::metastore::MetaStore;

/// Tunables for an [`E4Fs`] instance.
#[derive(Debug, Clone)]
pub struct E4Options {
    /// Journal size in blocks (header + ring).
    pub journal_blocks: u64,
    /// Blocks per group.
    pub blocks_per_group: u64,
    /// Inodes per group.
    pub inodes_per_group: u64,
    /// DRAM page-cache capacity in bytes.
    pub page_cache_bytes: u64,
    /// Pages prefetched on sequential reads (HDDs like big readahead).
    pub readahead_pages: u64,
    /// Software-path cost per VFS op (virtual ns).
    pub software_op_ns: u64,
    /// Cost of serving one page from DRAM (virtual ns).
    pub dram_copy_ns: u64,
    /// Dirty-page count that triggers writeback + commit.
    pub writeback_threshold: usize,
}

impl Default for E4Options {
    fn default() -> Self {
        E4Options {
            journal_blocks: 1024,
            blocks_per_group: 8192,
            inodes_per_group: 512,
            page_cache_bytes: 64 << 20,
            readahead_pages: 16,
            software_op_ns: 800,
            dram_copy_ns: 300,
            writeback_threshold: 16 * 1024,
        }
    }
}

struct E4Inode {
    attr: FileAttr,
    /// File page → device block.
    extents: RangeMap<Linear>,
    dentries: BTreeMap<String, (InodeNo, bool)>,
    /// Extent-overflow metadata blocks currently owned.
    overflow_blocks: Vec<u64>,
}

struct Inner {
    meta: MetaStore,
    journal: Jbd2,
    inodes: HashMap<InodeNo, E4Inode>,
    cache: PageCache,
    /// Free data blocks per group (derived; bitmap is authoritative).
    group_free: Vec<u64>,
    ra_next: HashMap<InodeNo, u64>,
    /// Inodes whose on-disk record must be re-encoded at the next commit
    /// (write-path metadata updates are deferred; namespace operations
    /// store through immediately).
    dirty_inodes: std::collections::BTreeSet<InodeNo>,
}

/// An Ext4-like journaling file system over one block [`Device`].
///
/// See the crate docs for the design summary. Durability contract: ordered
/// metadata journaling — `fsync`/`sync` make data and metadata crash-safe;
/// committed metadata never references unwritten data.
pub struct E4Fs {
    dev: Device,
    sb: Superblock,
    opts: E4Options,
    inner: Mutex<Inner>,
}

impl E4Fs {
    /// Formats `dev` (mkfs) and mounts the empty file system.
    pub fn format(dev: Device, opts: E4Options) -> VfsResult<Self> {
        let sb = Superblock {
            magic: MAGIC,
            capacity: dev.capacity(),
            journal_blocks: opts.journal_blocks,
            blocks_per_group: opts.blocks_per_group,
            inodes_per_group: opts.inodes_per_group,
        };
        if sb.group_count() == 0 {
            return Err(VfsError::InvalidArgument(
                "device too small for one block group".into(),
            ));
        }
        dev.write(0, &sb.encode())?;
        let journal = Jbd2::format(&dev, 1, sb.journal_blocks)?;
        // mkfs writes bitmaps and inode tables directly (no journaling).
        let meta_bits = sb.group_meta_blocks();
        for g in 0..sb.group_count() {
            let mut bbm = vec![0u8; BLOCK as usize];
            for b in 0..meta_bits {
                bitmap::set_bit(&mut bbm, b);
            }
            // Bits beyond the group size are marked used so they are never
            // allocated.
            for b in sb.blocks_per_group..(BLOCK * 8) {
                bitmap::set_bit(&mut bbm, b);
            }
            dev.write(sb.block_bitmap_block(g) * BLOCK, &bbm)?;
            dev.write(sb.inode_bitmap_block(g) * BLOCK, &vec![0u8; BLOCK as usize])?;
            let zeros = vec![0u8; BLOCK as usize];
            for t in 0..sb.itable_blocks() {
                dev.write((sb.itable_start(g) + t) * BLOCK, &zeros)?;
            }
        }
        dev.flush();
        let group_free = vec![sb.blocks_per_group - meta_bits; sb.group_count() as usize];
        let mut inner = Inner {
            meta: MetaStore::new(),
            journal,
            inodes: HashMap::new(),
            cache: PageCache::new(opts.page_cache_bytes, BLOCK as usize),
            group_free,
            ra_next: HashMap::new(),
            dirty_inodes: std::collections::BTreeSet::new(),
        };
        let mut root_attr = FileAttr::new(ROOT_INO, FileType::Directory, 0o755, 0);
        root_attr.nlink = 2;
        inner.inodes.insert(
            ROOT_INO,
            E4Inode {
                attr: root_attr,
                extents: RangeMap::new(),
                dentries: BTreeMap::new(),
                overflow_blocks: Vec::new(),
            },
        );
        let fs = E4Fs {
            dev,
            sb,
            opts,
            inner: Mutex::new(inner),
        };
        // Persist the root inode through the journal.
        {
            let mut guard = fs.inner.lock();
            fs.store_inode(&mut guard, ROOT_INO)?;
            fs.mark_ino_bitmap(&mut guard, ROOT_INO, true)?;
            let txn = guard.meta.take_dirty();
            guard.journal.commit(&fs.dev, &txn)?;
        }
        Ok(fs)
    }

    /// Mounts an existing file system, running journal recovery first.
    pub fn mount(dev: Device, opts: E4Options) -> VfsResult<Self> {
        let mut raw = vec![0u8; Superblock::SIZE];
        dev.read(0, &mut raw)?;
        let sb = Superblock::decode(&raw)?;
        let journal = Jbd2::recover(&dev, 1, sb.journal_blocks)?;
        let mut meta = MetaStore::new();
        let mut inodes: HashMap<InodeNo, E4Inode> = HashMap::new();
        let mut group_free = Vec::with_capacity(sb.group_count() as usize);
        // Pass 1: inodes + extents from the inode tables.
        for g in 0..sb.group_count() {
            let ibm = meta.load(&dev, sb.inode_bitmap_block(g))?.to_vec();
            for idx in 0..sb.inodes_per_group {
                if !bitmap::get_bit(&ibm, idx) {
                    continue;
                }
                let ino = g * sb.inodes_per_group + idx + 1;
                let (blk, off) = sb.inode_block(ino);
                let img = meta.load(&dev, blk)?;
                let di = DiskInode::decode(&img[off..off + 256])?;
                if !di.valid {
                    continue;
                }
                let mut extents = RangeMap::new();
                let mut overflow_blocks = Vec::new();
                for &(fp, db, len) in &di.inline {
                    extents.insert(fp, u64::from(len), Linear(db));
                }
                let mut ob = di.overflow;
                while ob != 0 {
                    overflow_blocks.push(ob);
                    let img = meta.load(&dev, ob)?.to_vec();
                    let (exts, next) = decode_extent_block(&img)?;
                    for (fp, db, len) in exts {
                        extents.insert(fp, u64::from(len), Linear(db));
                    }
                    ob = next;
                }
                inodes.insert(
                    ino,
                    E4Inode {
                        attr: di.to_attr(ino),
                        extents,
                        dentries: BTreeMap::new(),
                        overflow_blocks,
                    },
                );
            }
            let bbm = meta.load(&dev, sb.block_bitmap_block(g))?;
            group_free.push(bitmap::count_zeros(bbm, sb.blocks_per_group));
        }
        // Pass 2: directory contents from journaled dir data blocks.
        let dir_inos: Vec<InodeNo> = inodes
            .iter()
            .filter(|(_, i)| i.attr.is_dir())
            .map(|(&k, _)| k)
            .collect();
        for ino in dir_inos {
            let (size, pages) = {
                let d = &inodes[&ino];
                (d.attr.size, d.extents.iter().collect::<Vec<_>>())
            };
            let mut blob = Vec::with_capacity(size as usize);
            'outer: for e in pages {
                for i in 0..e.len {
                    let img = meta.load(&dev, e.value.0 + i)?;
                    let take = (BLOCK as usize).min(size as usize - blob.len());
                    blob.extend_from_slice(&img[..take]);
                    if blob.len() >= size as usize {
                        break 'outer;
                    }
                }
            }
            let dentries = if blob.is_empty() {
                Vec::new()
            } else {
                decode_dentries(&blob)?
            };
            let d = inodes.get_mut(&ino).expect("present");
            d.dentries = dentries.into_iter().map(|(n, i, x)| (n, (i, x))).collect();
        }
        if !inodes.contains_key(&ROOT_INO) {
            return Err(VfsError::Io("e4fs has no root inode".into()));
        }
        Ok(E4Fs {
            dev,
            sb,
            inner: Mutex::new(Inner {
                meta,
                journal,
                inodes,
                cache: PageCache::new(opts.page_cache_bytes, BLOCK as usize),
                group_free,
                ra_next: HashMap::new(),
                dirty_inodes: std::collections::BTreeSet::new(),
            }),
            opts,
        })
    }

    /// The device this file system runs on.
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Page-cache statistics.
    pub fn cache_stats(&self) -> tvfs::CacheStats {
        self.inner.lock().cache.stats()
    }

    fn charge_sw(&self) {
        self.dev.clock().advance(self.opts.software_op_ns);
    }

    fn charge_dram(&self, pages: u64) {
        self.dev.clock().advance(self.opts.dram_copy_ns * pages);
    }

    fn now(&self) -> u64 {
        self.dev.clock().now_ns()
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates `n` data blocks near `goal`, returning runs.
    fn alloc_blocks(&self, inner: &mut Inner, goal: u64, n: u64) -> VfsResult<Vec<(u64, u64)>> {
        let total_free: u64 = inner.group_free.iter().sum();
        if total_free < n {
            return Err(VfsError::NoSpace);
        }
        let start_group = self.sb.group_of_block(goal).unwrap_or(0);
        let n_groups = self.sb.group_count();
        let mut runs: Vec<(u64, u64)> = Vec::new();
        let mut left = n;
        for gi in 0..n_groups {
            let g = (start_group + gi) % n_groups;
            if inner.group_free[g as usize] == 0 {
                continue;
            }
            let bbm_block = self.sb.block_bitmap_block(g);
            let group_start = self.sb.group_start(g);
            // Start the scan at the goal within the home group.
            let mut from = if g == start_group && goal > group_start {
                (goal - group_start).min(self.sb.blocks_per_group - 1)
            } else {
                0
            };
            while left > 0 && inner.group_free[g as usize] > 0 {
                let bbm = inner.meta.load(&self.dev, bbm_block)?;
                let Some((bit, len)) =
                    bitmap::find_zero_run(bbm, from, self.sb.blocks_per_group, left)
                else {
                    break;
                };
                inner.meta.update(&self.dev, bbm_block, |b| {
                    for i in bit..bit + len {
                        bitmap::set_bit(b, i);
                    }
                })?;
                inner.group_free[g as usize] -= len;
                left -= len;
                let abs = group_start + bit;
                match runs.last_mut() {
                    Some((s, l)) if *s + *l == abs => *l += len,
                    _ => runs.push((abs, len)),
                }
                from = bit + len;
                if from >= self.sb.blocks_per_group {
                    from = 0;
                }
            }
            if left == 0 {
                break;
            }
        }
        debug_assert_eq!(left, 0);
        Ok(runs)
    }

    /// Frees data blocks `[start, start+len)`.
    fn free_blocks(&self, inner: &mut Inner, start: u64, len: u64) -> VfsResult<()> {
        let mut b = start;
        let end = start + len;
        while b < end {
            let g = self
                .sb
                .group_of_block(b)
                .ok_or_else(|| VfsError::Io("freeing metadata region".into()))?;
            let group_start = self.sb.group_start(g);
            let group_end = group_start + self.sb.blocks_per_group;
            let chunk_end = end.min(group_end);
            let bbm_block = self.sb.block_bitmap_block(g);
            inner.meta.update(&self.dev, bbm_block, |bm| {
                for i in b..chunk_end {
                    bitmap::clear_bit(bm, i - group_start);
                }
            })?;
            inner.group_free[g as usize] += chunk_end - b;
            b = chunk_end;
        }
        Ok(())
    }

    fn alloc_ino(&self, inner: &mut Inner, parent: InodeNo) -> VfsResult<InodeNo> {
        // Same-group-as-parent affinity, then first free anywhere.
        let (pg, _) = self.sb.inode_location(parent);
        let n_groups = self.sb.group_count();
        for gi in 0..n_groups {
            let g = (pg + gi) % n_groups;
            let ibm_block = self.sb.inode_bitmap_block(g);
            let ibm = inner.meta.load(&self.dev, ibm_block)?;
            if let Some(idx) = bitmap::find_zero(ibm, 0, self.sb.inodes_per_group) {
                inner
                    .meta
                    .update(&self.dev, ibm_block, |b| bitmap::set_bit(b, idx))?;
                return Ok(g * self.sb.inodes_per_group + idx + 1);
            }
        }
        Err(VfsError::NoSpace)
    }

    fn mark_ino_bitmap(&self, inner: &mut Inner, ino: InodeNo, used: bool) -> VfsResult<()> {
        let (g, idx) = self.sb.inode_location(ino);
        let ibm_block = self.sb.inode_bitmap_block(g);
        inner.meta.update(&self.dev, ibm_block, |b| {
            if used {
                bitmap::set_bit(b, idx);
            } else {
                bitmap::clear_bit(b, idx);
            }
        })
    }

    // ------------------------------------------------------------------
    // Metadata write-through
    // ------------------------------------------------------------------

    /// Re-encodes an inode into its inode-table block (and overflow extent
    /// blocks), marking everything dirty for the next transaction.
    fn store_inode(&self, inner: &mut Inner, ino: InodeNo) -> VfsResult<()> {
        let (all_exts, attr, old_overflow): (Vec<(u64, u64, u32)>, FileAttr, Vec<u64>) = {
            let x = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
            (
                x.extents
                    .iter()
                    .map(|e| (e.start, e.value.0, e.len as u32))
                    .collect(),
                x.attr,
                x.overflow_blocks.clone(),
            )
        };
        let inline: Vec<(u64, u64, u32)> = all_exts.iter().take(INLINE_EXTENTS).copied().collect();
        let spill: Vec<(u64, u64, u32)> = all_exts.iter().skip(INLINE_EXTENTS).copied().collect();
        // Allocate / free overflow blocks to match the spill size.
        let per = crate::layout::EXTENTS_PER_BLOCK;
        let need = spill.len().div_ceil(per);
        let mut overflow = old_overflow.clone();
        while overflow.len() < need {
            // Extent-overflow blocks live at the tail of the device, away
            // from the data-allocation frontier, so growing a fragmented
            // file does not punch holes into its own data layout.
            let tail_goal = self.sb.data_start(self.sb.group_count().saturating_sub(1));
            let run = self.alloc_blocks(inner, tail_goal, 1)?;
            overflow.push(run[0].0);
        }
        while overflow.len() > need {
            let b = overflow.pop().expect("non-empty");
            inner.meta.forget(b);
            self.free_blocks(inner, b, 1)?;
        }
        for (i, chunk) in spill.chunks(per).enumerate() {
            let next = overflow.get(i + 1).copied().unwrap_or(0);
            inner
                .meta
                .put(overflow[i], encode_extent_block(chunk, next));
        }
        let di = DiskInode {
            valid: true,
            is_dir: attr.is_dir(),
            mode: attr.mode,
            uid: attr.uid,
            gid: attr.gid,
            size: attr.size,
            blocks_bytes: attr.blocks_bytes,
            atime_ns: attr.atime_ns,
            mtime_ns: attr.mtime_ns,
            ctime_ns: attr.ctime_ns,
            nlink: attr.nlink,
            inline,
            overflow: overflow.first().copied().unwrap_or(0),
        };
        let (blk, off) = self.sb.inode_block(ino);
        let enc = di.encode();
        inner
            .meta
            .update(&self.dev, blk, |b| b[off..off + 256].copy_from_slice(&enc))?;
        inner.inodes.get_mut(&ino).expect("present").overflow_blocks = overflow;
        Ok(())
    }

    /// Clears an inode's on-disk record and bitmap bit.
    fn erase_inode(&self, inner: &mut Inner, ino: InodeNo) -> VfsResult<()> {
        let (blk, off) = self.sb.inode_block(ino);
        let enc = DiskInode::empty().encode();
        inner
            .meta
            .update(&self.dev, blk, |b| b[off..off + 256].copy_from_slice(&enc))?;
        self.mark_ino_bitmap(inner, ino, false)
    }

    /// Serializes a directory's entries into its (journaled) data blocks.
    fn store_dir(&self, inner: &mut Inner, ino: InodeNo) -> VfsResult<()> {
        let dentries: Vec<(String, u64, bool)> = {
            let d = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
            d.dentries
                .iter()
                .map(|(n, &(i, x))| (n.clone(), i, x))
                .collect()
        };
        let blob = encode_dentries(&dentries);
        let need_pages = (blob.len() as u64).div_ceil(BLOCK).max(1);
        // Grow or shrink the directory's block allocation.
        let have_pages = inner.inodes[&ino].extents.end();
        if need_pages > have_pages {
            let goal = self.sb.data_start(self.sb.inode_location(ino).0);
            let runs = self.alloc_blocks(inner, goal, need_pages - have_pages)?;
            let mut fp = have_pages;
            let d = inner.inodes.get_mut(&ino).expect("present");
            for (s, l) in runs {
                d.extents.insert(fp, l, Linear(s));
                fp += l;
            }
        } else if need_pages < have_pages {
            let mut freed: Vec<(u64, u64)> = Vec::new();
            {
                let d = inner.inodes.get_mut(&ino).expect("present");
                for e in d.extents.overlapping(need_pages, have_pages - need_pages) {
                    freed.push((e.value.0, e.len));
                }
                d.extents.remove(need_pages, have_pages - need_pages);
            }
            for (s, l) in freed {
                for b in s..s + l {
                    inner.meta.forget(b);
                }
                self.free_blocks(inner, s, l)?;
            }
        }
        // Write the serialized entries into the (metadata) dir blocks.
        let extents: Vec<(u64, u64, u64)> = inner.inodes[&ino]
            .extents
            .iter()
            .map(|e| (e.start, e.value.0, e.len))
            .collect();
        for (fp, db, len) in extents {
            for i in 0..len {
                let page = fp + i;
                let s = (page * BLOCK) as usize;
                if s >= blob.len() {
                    break;
                }
                let e = (s + BLOCK as usize).min(blob.len());
                let mut img = vec![0u8; BLOCK as usize];
                img[..e - s].copy_from_slice(&blob[s..e]);
                inner.meta.put(db + i, img);
            }
        }
        {
            let d = inner.inodes.get_mut(&ino).expect("present");
            d.attr.size = blob.len() as u64;
            d.attr.blocks_bytes = d.extents.covered() * BLOCK;
            d.attr.mtime_ns = self.now();
        }
        self.store_inode(inner, ino)
    }

    // ------------------------------------------------------------------
    // Ordered commit
    // ------------------------------------------------------------------

    /// Writes back all dirty file data (ordered mode), then commits the
    /// metadata transaction.
    ///
    /// Dirty pages are submitted in **device-block order** with adjacent
    /// blocks merged into single commands — the elevator pass the block
    /// layer performs for seek-bound devices. Without it, random file
    /// offsets would turn writeback into one seek per page.
    fn commit_all(&self, inner: &mut Inner) -> VfsResult<()> {
        // Re-encode inodes whose write-path metadata changes were deferred.
        let pending: Vec<InodeNo> = std::mem::take(&mut inner.dirty_inodes)
            .into_iter()
            .collect();
        for ino in pending {
            if inner.inodes.contains_key(&ino) {
                self.store_inode(inner, ino)?;
            }
        }
        // Gather (device_block, data) across all dirty inodes.
        let mut by_block: Vec<(u64, Vec<u8>)> = Vec::new();
        for ino in inner.cache.dirty_inodes() {
            let dirty = inner.cache.take_dirty(ino);
            let exists = inner.inodes.contains_key(&ino);
            for (pg, data) in dirty {
                if !exists {
                    continue;
                }
                match inner.inodes[&ino].extents.get(pg) {
                    Some(Linear(db)) => by_block.push((db, data)),
                    None => {
                        // Every written page was allocated in write(); a
                        // missing mapping means a truncate raced — drop it.
                    }
                }
            }
        }
        by_block.sort_by_key(|(db, _)| *db);
        // Merge contiguous blocks into bulk writes.
        let mut i = 0usize;
        while i < by_block.len() {
            let start = by_block[i].0;
            let mut run = 1usize;
            while i + run < by_block.len() && by_block[i + run].0 == start + run as u64 {
                run += 1;
            }
            let mut blob = Vec::with_capacity(run * BLOCK as usize);
            for (_, data) in &by_block[i..i + run] {
                blob.extend_from_slice(data);
            }
            self.dev.write(start * BLOCK, &blob)?;
            i += run;
        }
        let txn = inner.meta.take_dirty();
        inner.journal.commit(&self.dev, &txn)
    }

    /// Reads one page through the cache.
    fn read_page_cached(
        &self,
        inner: &mut Inner,
        ino: InodeNo,
        pg: u64,
        out: &mut [u8],
    ) -> VfsResult<()> {
        if inner.cache.get(ino, pg, out) {
            self.charge_dram(1);
            return Ok(());
        }
        match inner.inodes[&ino].extents.get(pg) {
            Some(Linear(db)) => {
                self.dev.read(db * BLOCK, out)?;
                inner.cache.insert_clean(ino, pg, out);
            }
            None => out.fill(0),
        }
        Ok(())
    }
}

impl FileSystem for E4Fs {
    fn fs_name(&self) -> &str {
        "e4fs"
    }

    fn lookup(&self, parent: InodeNo, name: &str) -> VfsResult<FileAttr> {
        self.charge_sw();
        let inner = self.inner.lock();
        let dir = inner.inodes.get(&parent).ok_or(VfsError::NotFound)?;
        if !dir.attr.is_dir() {
            return Err(VfsError::NotDir);
        }
        let &(child, _) = dir.dentries.get(name).ok_or(VfsError::NotFound)?;
        inner
            .inodes
            .get(&child)
            .map(|x| x.attr)
            .ok_or(VfsError::Stale)
    }

    fn getattr(&self, ino: InodeNo) -> VfsResult<FileAttr> {
        self.charge_sw();
        let inner = self.inner.lock();
        inner
            .inodes
            .get(&ino)
            .map(|x| x.attr)
            .ok_or(VfsError::NotFound)
    }

    fn setattr(&self, ino: InodeNo, set: &SetAttr) -> VfsResult<FileAttr> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        if !inner.inodes.contains_key(&ino) {
            return Err(VfsError::NotFound);
        }
        if let Some(new_size) = set.size {
            if inner.inodes[&ino].attr.is_dir() {
                return Err(VfsError::IsDir);
            }
            let old_size = inner.inodes[&ino].attr.size;
            if new_size < old_size {
                let first_dead = new_size.div_ceil(BLOCK);
                inner.cache.invalidate_from(ino, first_dead);
                let mut freed: Vec<(u64, u64)> = Vec::new();
                {
                    let x = inner.inodes.get_mut(&ino).expect("checked");
                    let tail = old_size.div_ceil(BLOCK).max(first_dead);
                    for e in x.extents.overlapping(first_dead, tail - first_dead) {
                        freed.push((e.value.0, e.len));
                    }
                    x.extents.remove(first_dead, tail - first_dead);
                }
                for (s, l) in freed {
                    self.free_blocks(&mut inner, s, l)?;
                }
                if new_size % BLOCK != 0 {
                    let pg = new_size / BLOCK;
                    let has_backing = inner.inodes[&ino].extents.get(pg).is_some()
                        || inner.cache.contains(ino, pg);
                    if has_backing {
                        let mut base = vec![0u8; BLOCK as usize];
                        self.read_page_cached(&mut inner, ino, pg, &mut base)?;
                        let cut = (new_size % BLOCK) as usize;
                        inner
                            .cache
                            .update_dirty(ino, pg, || base.clone(), |p| p[cut..].fill(0));
                    }
                }
            }
            let x = inner.inodes.get_mut(&ino).expect("checked");
            x.attr.size = new_size;
            x.attr.mtime_ns = now;
            x.attr.blocks_bytes = x.extents.covered() * BLOCK;
        }
        {
            let x = inner.inodes.get_mut(&ino).expect("checked");
            if let Some(m) = set.mode {
                x.attr.mode = m;
            }
            if let Some(u) = set.uid {
                x.attr.uid = u;
            }
            if let Some(g) = set.gid {
                x.attr.gid = g;
            }
            if let Some(t) = set.atime_ns {
                x.attr.atime_ns = t;
            }
            if let Some(t) = set.mtime_ns {
                x.attr.mtime_ns = t;
            }
            x.attr.ctime_ns = now;
        }
        self.store_inode(&mut inner, ino)?;
        Ok(inner.inodes[&ino].attr)
    }

    fn create(
        &self,
        parent: InodeNo,
        name: &str,
        kind: FileType,
        mode: u32,
    ) -> VfsResult<FileAttr> {
        if name.is_empty() || name.contains('/') {
            return Err(VfsError::InvalidArgument("bad name".into()));
        }
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        {
            let dir = inner.inodes.get(&parent).ok_or(VfsError::NotFound)?;
            if !dir.attr.is_dir() {
                return Err(VfsError::NotDir);
            }
            if dir.dentries.contains_key(name) {
                return Err(VfsError::Exists);
            }
        }
        let ino = self.alloc_ino(&mut inner, parent)?;
        let mut attr = FileAttr::new(ino, kind, mode, now);
        if kind == FileType::Directory {
            attr.nlink = 2;
        }
        inner.inodes.insert(
            ino,
            E4Inode {
                attr,
                extents: RangeMap::new(),
                dentries: BTreeMap::new(),
                overflow_blocks: Vec::new(),
            },
        );
        self.store_inode(&mut inner, ino)?;
        inner
            .inodes
            .get_mut(&parent)
            .expect("checked")
            .dentries
            .insert(name.to_string(), (ino, kind == FileType::Directory));
        self.store_dir(&mut inner, parent)?;
        Ok(attr)
    }

    fn unlink(&self, parent: InodeNo, name: &str) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let child = {
            let dir = inner.inodes.get(&parent).ok_or(VfsError::NotFound)?;
            if !dir.attr.is_dir() {
                return Err(VfsError::NotDir);
            }
            let &(child, _) = dir.dentries.get(name).ok_or(VfsError::NotFound)?;
            child
        };
        if let Some(c) = inner.inodes.get(&child) {
            if c.attr.is_dir() && !c.dentries.is_empty() {
                return Err(VfsError::NotEmpty);
            }
        }
        inner
            .inodes
            .get_mut(&parent)
            .expect("checked")
            .dentries
            .remove(name);
        self.store_dir(&mut inner, parent)?;
        inner.cache.invalidate(child);
        inner.dirty_inodes.remove(&child);
        if let Some(x) = inner.inodes.remove(&child) {
            for e in x.extents.iter() {
                // Directory data blocks live in the metastore too.
                if x.attr.is_dir() {
                    for b in e.value.0..e.value.0 + e.len {
                        inner.meta.forget(b);
                    }
                }
                self.free_blocks(&mut inner, e.value.0, e.len)?;
            }
            for b in x.overflow_blocks {
                inner.meta.forget(b);
                self.free_blocks(&mut inner, b, 1)?;
            }
        }
        self.erase_inode(&mut inner, child)?;
        Ok(())
    }

    fn rename(
        &self,
        parent: InodeNo,
        name: &str,
        new_parent: InodeNo,
        new_name: &str,
    ) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let entry = {
            let dir = inner.inodes.get(&parent).ok_or(VfsError::NotFound)?;
            *dir.dentries.get(name).ok_or(VfsError::NotFound)?
        };
        let replaced = {
            let ndir = inner.inodes.get(&new_parent).ok_or(VfsError::NotFound)?;
            if !ndir.attr.is_dir() {
                return Err(VfsError::NotDir);
            }
            match ndir.dentries.get(new_name) {
                Some(&(existing, true)) => {
                    let exi = inner.inodes.get(&existing).ok_or(VfsError::Stale)?;
                    if !exi.dentries.is_empty() {
                        return Err(VfsError::NotEmpty);
                    }
                    Some(existing)
                }
                Some(&(existing, false)) => Some(existing),
                None => None,
            }
        };
        inner
            .inodes
            .get_mut(&parent)
            .expect("checked")
            .dentries
            .remove(name);
        inner
            .inodes
            .get_mut(&new_parent)
            .expect("checked")
            .dentries
            .insert(new_name.to_string(), entry);
        if let Some(existing) = replaced {
            if existing != entry.0 {
                inner.cache.invalidate(existing);
                if let Some(x) = inner.inodes.remove(&existing) {
                    for e in x.extents.iter() {
                        self.free_blocks(&mut inner, e.value.0, e.len)?;
                    }
                    for b in x.overflow_blocks {
                        inner.meta.forget(b);
                        self.free_blocks(&mut inner, b, 1)?;
                    }
                }
                self.erase_inode(&mut inner, existing)?;
            }
        }
        self.store_dir(&mut inner, parent)?;
        if new_parent != parent {
            self.store_dir(&mut inner, new_parent)?;
        }
        Ok(())
    }

    fn readdir(&self, ino: InodeNo) -> VfsResult<Vec<DirEntry>> {
        self.charge_sw();
        let inner = self.inner.lock();
        let dir = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
        if !dir.attr.is_dir() {
            return Err(VfsError::NotDir);
        }
        Ok(dir
            .dentries
            .iter()
            .map(|(name, &(child, is_dir))| DirEntry {
                name: name.clone(),
                ino: child,
                kind: if is_dir {
                    FileType::Directory
                } else {
                    FileType::Regular
                },
            })
            .collect())
    }

    fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> VfsResult<usize> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        let size = {
            let x = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
            if x.attr.is_dir() {
                return Err(VfsError::IsDir);
            }
            x.attr.size
        };
        if off >= size {
            return Ok(0);
        }
        let n = buf.len().min((size - off) as usize);
        let mut page_buf = vec![0u8; BLOCK as usize];
        let mut done = 0usize;
        while done < n {
            let pos = off + done as u64;
            let pg = pos / BLOCK;
            let in_pg = (pos % BLOCK) as usize;
            let chunk = (BLOCK as usize - in_pg).min(n - done);
            self.read_page_cached(&mut inner, ino, pg, &mut page_buf)?;
            buf[done..done + chunk].copy_from_slice(&page_buf[in_pg..in_pg + chunk]);
            done += chunk;
        }
        let first_pg = off / BLOCK;
        let last_pg = (off + n as u64 - 1) / BLOCK;
        if inner.ra_next.get(&ino).copied() == Some(first_pg) && self.opts.readahead_pages > 0 {
            let mut ra_buf = vec![0u8; BLOCK as usize];
            for pg in last_pg + 1..last_pg + 1 + self.opts.readahead_pages {
                if inner.cache.contains(ino, pg) {
                    continue;
                }
                if let Some(Linear(db)) = inner.inodes[&ino].extents.get(pg) {
                    self.dev.read(db * BLOCK, &mut ra_buf)?;
                    inner.cache.insert_clean(ino, pg, &ra_buf);
                }
            }
        }
        inner.ra_next.insert(ino, last_pg + 1);
        if let Some(x) = inner.inodes.get_mut(&ino) {
            x.attr.atime_ns = now;
        }
        Ok(n)
    }

    fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> VfsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        {
            let x = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
            if x.attr.is_dir() {
                return Err(VfsError::IsDir);
            }
        }
        let len = data.len() as u64;
        let first_pg = off / BLOCK;
        let last_pg = (off + len - 1) / BLOCK;
        // Immediate allocation: map every unmapped page now, goal-directed
        // at the end of the file's current last extent. Remember which
        // pages were holes: their RMW base is zeros, never the (possibly
        // recycled) device block content.
        let was_hole: std::collections::BTreeSet<u64> = (first_pg..=last_pg)
            .filter(|&pg| inner.inodes[&ino].extents.get(pg).is_none())
            .collect();
        {
            let mut unmapped: Vec<u64> = Vec::new();
            for pg in first_pg..=last_pg {
                if inner.inodes[&ino].extents.get(pg).is_none() {
                    unmapped.push(pg);
                }
            }
            if !unmapped.is_empty() {
                let goal = inner.inodes[&ino]
                    .extents
                    .iter()
                    .last()
                    .map(|e| e.value.0 + e.len)
                    .unwrap_or_else(|| self.sb.data_start(self.sb.inode_location(ino).0));
                // Allocate runs for consecutive unmapped stretches.
                let mut i = 0usize;
                while i < unmapped.len() {
                    let run_start = unmapped[i];
                    let mut run_len = 1u64;
                    while i + (run_len as usize) < unmapped.len()
                        && unmapped[i + run_len as usize] == run_start + run_len
                    {
                        run_len += 1;
                    }
                    let runs = self.alloc_blocks(&mut inner, goal, run_len)?;
                    let mut fp = run_start;
                    for (s, l) in runs {
                        inner.inodes.get_mut(&ino).expect("checked").extents.insert(
                            fp,
                            l,
                            Linear(s),
                        );
                        fp += l;
                    }
                    i += run_len as usize;
                }
            }
        }
        for pg in first_pg..=last_pg {
            let pg_start = pg * BLOCK;
            let w_start = off.max(pg_start);
            let w_end = (off + len).min(pg_start + BLOCK);
            let partial = w_start != pg_start || w_end != pg_start + BLOCK;
            let base: Vec<u8> =
                if partial && !was_hole.contains(&pg) && !inner.cache.contains(ino, pg) {
                    let mut b = vec![0u8; BLOCK as usize];
                    self.read_page_cached(&mut inner, ino, pg, &mut b)?;
                    b
                } else {
                    // Hole pages (or resident pages, where `init` is skipped)
                    // start from zeros.
                    vec![0u8; BLOCK as usize]
                };
            inner.cache.update_dirty(
                ino,
                pg,
                || base,
                |page| {
                    page[(w_start - pg_start) as usize..(w_end - pg_start) as usize]
                        .copy_from_slice(&data[(w_start - off) as usize..(w_end - off) as usize]);
                },
            );
        }
        self.charge_dram(last_pg - first_pg + 1);
        {
            let x = inner.inodes.get_mut(&ino).expect("checked");
            x.attr.size = x.attr.size.max(off + len);
            x.attr.mtime_ns = now;
            x.attr.blocks_bytes = x.extents.covered() * BLOCK;
        }
        inner.dirty_inodes.insert(ino);
        if inner.cache.total_dirty() > self.opts.writeback_threshold {
            self.commit_all(&mut inner)?;
        }
        Ok(data.len())
    }

    fn punch_hole(&self, ino: InodeNo, off: u64, len: u64) -> VfsResult<()> {
        if len == 0 {
            return Ok(());
        }
        self.charge_sw();
        let mut inner = self.inner.lock();
        if !inner.inodes.contains_key(&ino) {
            return Err(VfsError::NotFound);
        }
        if inner.inodes[&ino].attr.is_dir() {
            return Err(VfsError::IsDir);
        }
        let end = off + len;
        let first_full = off.div_ceil(BLOCK);
        let last_full = end / BLOCK;
        let zero_range = |inner: &mut Inner, zoff: u64, zlen: u64| -> VfsResult<()> {
            if zlen == 0 {
                return Ok(());
            }
            let pg = zoff / BLOCK;
            let has_backing =
                inner.inodes[&ino].extents.get(pg).is_some() || inner.cache.contains(ino, pg);
            if !has_backing {
                return Ok(());
            }
            let mut base = vec![0u8; BLOCK as usize];
            self.read_page_cached(inner, ino, pg, &mut base)?;
            let s = (zoff % BLOCK) as usize;
            inner.cache.update_dirty(
                ino,
                pg,
                || base.clone(),
                |p| p[s..s + zlen as usize].fill(0),
            );
            Ok(())
        };
        let head_end = end.min(first_full * BLOCK);
        if off < head_end {
            zero_range(&mut inner, off, head_end - off)?;
        }
        let tail_start = (last_full * BLOCK).max(off);
        if tail_start < end && tail_start >= head_end {
            zero_range(&mut inner, tail_start, end - tail_start)?;
        }
        if last_full > first_full {
            inner.cache.invalidate_range(ino, first_full, last_full);
            let mut freed: Vec<(u64, u64)> = Vec::new();
            {
                let x = inner.inodes.get_mut(&ino).expect("checked");
                for e in x.extents.overlapping(first_full, last_full - first_full) {
                    freed.push((e.value.0, e.len));
                }
                x.extents.remove(first_full, last_full - first_full);
                x.attr.blocks_bytes = x.extents.covered() * BLOCK;
            }
            for (s, l) in freed {
                self.free_blocks(&mut inner, s, l)?;
            }
        }
        self.store_inode(&mut inner, ino)?;
        Ok(())
    }

    fn next_data(&self, ino: InodeNo, off: u64) -> VfsResult<Option<(u64, u64)>> {
        self.charge_sw();
        let inner = self.inner.lock();
        let x = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
        let size = x.attr.size;
        if off >= size {
            return Ok(None);
        }
        // Allocation is immediate, so the extent map is complete.
        match x.extents.next_mapped(off / BLOCK) {
            Some(e) => {
                let start = (e.start * BLOCK).max(off);
                let end = ((e.start + e.len) * BLOCK).min(size);
                if start >= size {
                    return Ok(None);
                }
                Ok(Some((start, end - start)))
            }
            None => Ok(None),
        }
    }

    fn fsync(&self, ino: InodeNo) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        if !inner.inodes.contains_key(&ino) {
            return Err(VfsError::NotFound);
        }
        // JBD2 has one running transaction: fsync of any file commits it
        // (with ordered data writeback of everything in it).
        self.commit_all(&mut inner)
    }

    fn sync(&self) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        self.commit_all(&mut inner)
    }

    fn statfs(&self) -> VfsResult<StatFs> {
        let inner = self.inner.lock();
        let data_per_group = self.sb.data_blocks_per_group();
        Ok(StatFs {
            total_bytes: self.sb.group_count() * data_per_group * BLOCK,
            free_bytes: inner.group_free.iter().sum::<u64>() * BLOCK,
            inodes: inner.inodes.len() as u64,
            block_size: BLOCK as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{hdd, VirtualClock};

    fn small_opts() -> E4Options {
        E4Options {
            journal_blocks: 256,
            blocks_per_group: 2048,
            inodes_per_group: 128,
            ..Default::default()
        }
    }

    fn fresh() -> E4Fs {
        let dev = Device::with_profile(hdd(), 256 << 20, VirtualClock::new());
        E4Fs::format(dev, small_opts()).unwrap()
    }

    fn mk(fs: &E4Fs, name: &str) -> FileAttr {
        fs.create(ROOT_INO, name, FileType::Regular, 0o644).unwrap()
    }

    #[test]
    fn create_write_read() {
        let fs = fresh();
        let a = mk(&fs, "f");
        let data: Vec<u8> = (0..30_000).map(|i| (i % 251) as u8).collect();
        fs.write(a.ino, 11, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        assert_eq!(fs.read(a.ino, 11, &mut buf).unwrap(), data.len());
        assert_eq!(buf, data);
    }

    #[test]
    fn allocation_is_immediate() {
        let fs = fresh();
        let a = mk(&fs, "f");
        fs.write(a.ino, 0, &vec![1u8; 8 * 4096]).unwrap();
        // Unlike xefs, blocks are mapped before any fsync.
        assert_eq!(fs.getattr(a.ino).unwrap().blocks_bytes, 8 * 4096);
    }

    #[test]
    fn goal_allocation_keeps_file_contiguous() {
        let fs = fresh();
        let a = mk(&fs, "f");
        for i in 0..64u64 {
            fs.write(a.ino, i * 4096, &vec![1u8; 4096]).unwrap();
        }
        let inner = fs.inner.lock();
        assert!(
            inner.inodes[&a.ino].extents.segment_count() <= 2,
            "sequential appends should stay contiguous"
        );
    }

    #[test]
    fn durable_after_fsync_and_crash() {
        let dev = Device::with_profile(hdd(), 256 << 20, VirtualClock::new());
        let data: Vec<u8> = (0..25_000).map(|i| (i % 239) as u8).collect();
        {
            let fs = E4Fs::format(dev.clone(), small_opts()).unwrap();
            let d = fs
                .create(ROOT_INO, "dir", FileType::Directory, 0o755)
                .unwrap();
            let f = fs.create(d.ino, "file", FileType::Regular, 0o644).unwrap();
            fs.write(f.ino, 500, &data).unwrap();
            fs.fsync(f.ino).unwrap();
        }
        dev.crash();
        let fs2 = E4Fs::mount(dev, small_opts()).unwrap();
        let d = fs2.lookup(ROOT_INO, "dir").unwrap();
        let f = fs2.lookup(d.ino, "file").unwrap();
        assert_eq!(f.size, 500 + data.len() as u64);
        let mut buf = vec![0u8; data.len()];
        fs2.read(f.ino, 500, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn unsynced_create_rolls_back_consistently() {
        let dev = Device::with_profile(hdd(), 256 << 20, VirtualClock::new());
        {
            let fs = E4Fs::format(dev.clone(), small_opts()).unwrap();
            let a = mk(&fs, "durable");
            fs.write(a.ino, 0, b"keep").unwrap();
            fs.fsync(a.ino).unwrap();
            mk(&fs, "ephemeral"); // never synced
        }
        dev.crash();
        let fs2 = E4Fs::mount(dev, small_opts()).unwrap();
        assert!(fs2.lookup(ROOT_INO, "durable").is_ok());
        assert_eq!(
            fs2.lookup(ROOT_INO, "ephemeral").unwrap_err(),
            VfsError::NotFound
        );
        // Space accounting consistent: allocator rebuilt from bitmaps.
        let st = fs2.statfs().unwrap();
        assert!(st.free_bytes > 0);
    }

    #[test]
    fn many_extents_overflow_to_extent_blocks() {
        let fs = fresh();
        let a = mk(&fs, "f");
        // Force fragmentation: interleave two files' writes page by page.
        let b = mk(&fs, "g");
        for i in 0..64u64 {
            fs.write(a.ino, i * 4096, &vec![1u8; 4096]).unwrap();
            fs.write(b.ino, i * 4096, &vec![2u8; 4096]).unwrap();
        }
        let n_segs = fs.inner.lock().inodes[&a.ino].extents.segment_count();
        assert!(
            n_segs > INLINE_EXTENTS,
            "test needs fragmentation, got {n_segs}"
        );
        fs.sync().unwrap();
        // Remount and verify the overflow chain decodes.
        let dev = fs.dev.clone();
        drop(fs);
        let fs2 = E4Fs::mount(dev, small_opts()).unwrap();
        let a2 = fs2.lookup(ROOT_INO, "f").unwrap();
        let mut buf = vec![0u8; 64 * 4096];
        fs2.read(a2.ino, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 1));
    }

    #[test]
    fn unlink_frees_blocks_and_inode() {
        let fs = fresh();
        let free0 = fs.statfs().unwrap().free_bytes;
        let a = mk(&fs, "f");
        fs.write(a.ino, 0, &vec![1u8; 1 << 20]).unwrap();
        fs.fsync(a.ino).unwrap();
        assert!(fs.statfs().unwrap().free_bytes < free0);
        fs.unlink(ROOT_INO, "f").unwrap();
        // Root dir may have grown a data block; allow that one block.
        assert!(fs.statfs().unwrap().free_bytes + 2 * BLOCK >= free0);
        assert!(fs.getattr(a.ino).is_err());
    }

    #[test]
    fn dir_with_many_entries_spans_blocks_and_recovers() {
        let dev = Device::with_profile(hdd(), 256 << 20, VirtualClock::new());
        {
            let fs = E4Fs::format(dev.clone(), small_opts()).unwrap();
            for i in 0..120 {
                fs.create(
                    ROOT_INO,
                    &format!("file-with-a-rather-long-name-{i:04}"),
                    FileType::Regular,
                    0o644,
                )
                .unwrap();
            }
            fs.sync().unwrap();
        }
        let fs2 = E4Fs::mount(dev, small_opts()).unwrap();
        assert_eq!(fs2.readdir(ROOT_INO).unwrap().len(), 120);
    }

    #[test]
    fn truncate_and_punch() {
        let fs = fresh();
        let a = mk(&fs, "f");
        fs.write(a.ino, 0, &vec![9u8; 4 * 4096]).unwrap();
        fs.punch_hole(a.ino, 4096, 8192).unwrap();
        let mut buf = vec![1u8; 4 * 4096];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert!(buf[..4096].iter().all(|&b| b == 9));
        assert!(buf[4096..3 * 4096].iter().all(|&b| b == 0));
        assert!(buf[3 * 4096..].iter().all(|&b| b == 9));
        fs.setattr(a.ino, &SetAttr::truncate(100)).unwrap();
        fs.setattr(a.ino, &SetAttr::truncate(4096)).unwrap();
        let mut buf = vec![1u8; 4096];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert!(buf[..100].iter().all(|&b| b == 9));
        assert!(buf[100..].iter().all(|&b| b == 0));
    }

    #[test]
    fn rename_recovers_after_sync() {
        let dev = Device::with_profile(hdd(), 256 << 20, VirtualClock::new());
        {
            let fs = E4Fs::format(dev.clone(), small_opts()).unwrap();
            let a = mk(&fs, "old");
            fs.write(a.ino, 0, b"payload").unwrap();
            fs.rename(ROOT_INO, "old", ROOT_INO, "new").unwrap();
            fs.sync().unwrap();
        }
        let fs2 = E4Fs::mount(dev, small_opts()).unwrap();
        assert!(fs2.lookup(ROOT_INO, "old").is_err());
        let f = fs2.lookup(ROOT_INO, "new").unwrap();
        let mut b = [0u8; 7];
        fs2.read(f.ino, 0, &mut b).unwrap();
        assert_eq!(&b, b"payload");
    }

    #[test]
    fn nospace_surfaces() {
        let dev = Device::with_profile(hdd(), 16 << 20, VirtualClock::new());
        let fs = E4Fs::format(
            dev,
            E4Options {
                journal_blocks: 64,
                blocks_per_group: 1024,
                inodes_per_group: 64,
                ..Default::default()
            },
        )
        .unwrap();
        let a = mk(&fs, "f");
        let r = fs.write(a.ino, 0, &vec![1u8; 32 << 20]);
        assert_eq!(r.unwrap_err(), VfsError::NoSpace);
    }

    #[test]
    fn next_data_with_holes() {
        let fs = fresh();
        let a = mk(&fs, "f");
        fs.write(a.ino, 20 * 4096, &vec![1u8; 4096]).unwrap();
        let (s, l) = fs.next_data(a.ino, 0).unwrap().unwrap();
        assert_eq!((s, l), (20 * 4096, 4096));
        assert_eq!(fs.next_data(a.ino, 21 * 4096).unwrap(), None);
    }

    #[test]
    fn hole_page_rmw_base_is_zeros_not_recycled_block() {
        // Regression (found by proptest): punching frees blocks; a later
        // partial write into a *hole* page must not read the recycled
        // block's stale content as its read-modify-write base.
        let fs = fresh();
        let a = mk(&fs, "f");
        fs.write(a.ino, 159744, &[0u8; 1]).unwrap();
        fs.write(a.ino, 67584, &vec![1u8; 6145]).unwrap();
        fs.fsync(a.ino).unwrap();
        fs.punch_hole(a.ino, 62119, 12543).unwrap();
        fs.write(a.ino, 156308, &vec![244u8; 2418]).unwrap();
        let mut buf = vec![9u8; 4096];
        fs.read(a.ino, 38 * 4096, &mut buf).unwrap();
        // Bytes after the 2418-byte write within page 38 must be zeros.
        assert!(buf[(158726 - 38 * 4096)..].iter().all(|&b| b == 0));
    }

    #[test]
    fn statfs_consistent_across_remount() {
        let dev = Device::with_profile(hdd(), 256 << 20, VirtualClock::new());
        let free;
        {
            let fs = E4Fs::format(dev.clone(), small_opts()).unwrap();
            let a = mk(&fs, "f");
            fs.write(a.ino, 0, &vec![1u8; 3 << 20]).unwrap();
            fs.sync().unwrap();
            free = fs.statfs().unwrap().free_bytes;
        }
        let fs2 = E4Fs::mount(dev, small_opts()).unwrap();
        assert_eq!(fs2.statfs().unwrap().free_bytes, free);
    }
}
