//! A JBD2-style block-image journal with eager checkpointing.
//!
//! Layout: the first journal block is the **journal header**
//! (`[magic][last_checkpointed_seq]`); the rest is the ring. A transaction
//! frame is:
//!
//! ```text
//! [seq u64][n_blocks u32][crc u32]  ([block_no u64][4096-byte image]) * n
//! ```
//!
//! Commit protocol (ordered mode is enforced by the caller, which writes
//! file data in place *before* calling [`Jbd2::commit`]):
//!
//! 1. append the frame to the ring (checkpointing first if the ring is
//!    low on space),
//! 2. device flush — the transaction is now durable.
//!
//! **Checkpointing is deferred**, as in real JBD2: committed block images
//! accumulate in memory and are written to their home locations (sorted,
//! merged) only when the ring runs low — one seek-heavy sweep amortizes
//! over many commits. The header's `last_checkpointed_seq` advances at
//! checkpoint time.
//!
//! Replay scans the ring from the start and applies every valid frame with
//! `seq > last_checkpointed_seq`, newest last. The header guard is what
//! prevents an *old* frame surviving in the ring from rolling a block back
//! after its newer transaction was overwritten by a ring wrap.

use bytes::{Buf, BufMut};
use simdev::Device;
use tvfs::{VfsError, VfsResult};

use crate::layout::BLOCK;

/// Journal header magic ("JBD2SIM!").
const JMAGIC: u64 = 0x4a42_4432_5349_4d21;

const FRAME_HEADER: usize = 8 + 4 + 4;

fn crc(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// The journal writer.
#[derive(Debug)]
pub struct Jbd2 {
    header_block: u64,
    ring_off: u64,
    ring_len: u64,
    cursor: u64,
    next_seq: u64,
    /// Committed-but-not-checkpointed home images (newest wins).
    pending_home: std::collections::BTreeMap<u64, Vec<u8>>,
}

impl Jbd2 {
    /// A fresh journal occupying blocks `[first_block, first_block +
    /// n_blocks)`; writes the initial header.
    pub fn format(dev: &Device, first_block: u64, n_blocks: u64) -> VfsResult<Self> {
        let j = Jbd2 {
            header_block: first_block,
            ring_off: (first_block + 1) * BLOCK,
            ring_len: (n_blocks - 1) * BLOCK,
            cursor: (first_block + 1) * BLOCK,
            next_seq: 1,
            pending_home: std::collections::BTreeMap::new(),
        };
        j.write_header(dev, 0)?;
        Ok(j)
    }

    fn write_header(&self, dev: &Device, last_ckpt: u64) -> VfsResult<()> {
        let mut b = Vec::with_capacity(16);
        b.put_u64_le(JMAGIC);
        b.put_u64_le(last_ckpt);
        dev.write(self.header_block * BLOCK, &b)?;
        Ok(())
    }

    /// Commits a transaction of metadata block images: journal write +
    /// flush. Home writes are deferred to [`Jbd2::checkpoint`], which runs
    /// automatically when the ring is low on space. No-op for an empty
    /// set.
    pub fn commit(&mut self, dev: &Device, blocks: &[(u64, Vec<u8>)]) -> VfsResult<()> {
        if blocks.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(blocks.len() * (8 + BLOCK as usize));
        for (no, img) in blocks {
            debug_assert_eq!(img.len(), BLOCK as usize);
            payload.put_u64_le(*no);
            payload.extend_from_slice(img);
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.put_u64_le(self.next_seq);
        frame.put_u32_le(blocks.len() as u32);
        frame.put_u32_le(crc(&payload));
        frame.extend_from_slice(&payload);
        if frame.len() as u64 + 8 > self.ring_len {
            return Err(VfsError::Io("journal smaller than one transaction".into()));
        }
        let low_space = self.cursor + frame.len() as u64 + 8 > self.ring_off + self.ring_len;
        if low_space {
            // Wrap is only safe over checkpointed frames.
            self.checkpoint(dev)?;
            self.cursor = self.ring_off;
        }
        // Journal write, then barrier: the txn is durable.
        dev.write(self.cursor, &frame)?;
        // Terminate the ring after the frame so replay stops cleanly.
        dev.write(self.cursor + frame.len() as u64, &[0u8; 8])?;
        dev.flush();
        self.cursor += frame.len() as u64;
        self.next_seq += 1;
        for (no, img) in blocks {
            self.pending_home.insert(*no, img.clone());
        }
        Ok(())
    }

    /// Writes all committed-but-unwritten home images (sorted, contiguous
    /// runs merged), advances the checkpoint guard and flushes.
    pub fn checkpoint(&mut self, dev: &Device) -> VfsResult<()> {
        if self.pending_home.is_empty() {
            return Ok(());
        }
        let pending = std::mem::take(&mut self.pending_home);
        let entries: Vec<(u64, Vec<u8>)> = pending.into_iter().collect();
        let mut i = 0usize;
        while i < entries.len() {
            let start = entries[i].0;
            let mut run = 1usize;
            while i + run < entries.len() && entries[i + run].0 == start + run as u64 {
                run += 1;
            }
            let mut blob = Vec::with_capacity(run * BLOCK as usize);
            for (_, img) in &entries[i..i + run] {
                blob.extend_from_slice(img);
            }
            dev.write(start * BLOCK, &blob)?;
            i += run;
        }
        self.write_header(dev, self.next_seq - 1)?;
        dev.flush();
        Ok(())
    }

    /// Recovers the journal: applies any committed-but-uncheckpointed
    /// transaction to home locations, returns the journal ready for new
    /// commits.
    pub fn recover(dev: &Device, first_block: u64, n_blocks: u64) -> VfsResult<Self> {
        let mut hdr = vec![0u8; 16];
        dev.read(first_block * BLOCK, &mut hdr)?;
        let mut h = hdr.as_slice();
        if h.get_u64_le() != JMAGIC {
            return Err(VfsError::Io("bad journal header".into()));
        }
        let last_ckpt = h.get_u64_le();
        let ring_off = (first_block + 1) * BLOCK;
        let ring_len = (n_blocks - 1) * BLOCK;
        let mut raw = vec![0u8; ring_len as usize];
        dev.read(ring_off, &mut raw)?;
        let mut pos = 0usize;
        let mut max_seq = last_ckpt;
        let mut replayed = 0usize;
        loop {
            if pos + FRAME_HEADER > raw.len() {
                break;
            }
            let mut f = &raw[pos..pos + FRAME_HEADER];
            let seq = f.get_u64_le();
            let n = f.get_u32_le() as usize;
            let sum = f.get_u32_le();
            if seq == 0 || n == 0 {
                break;
            }
            let plen = n * (8 + BLOCK as usize);
            if pos + FRAME_HEADER + plen > raw.len() {
                break;
            }
            let payload = &raw[pos + FRAME_HEADER..pos + FRAME_HEADER + plen];
            if crc(payload) != sum {
                break; // torn frame: crash frontier
            }
            if seq > last_ckpt {
                // Committed but possibly not checkpointed: replay images.
                let mut p = payload;
                for _ in 0..n {
                    let no = p.get_u64_le();
                    dev.write(no * BLOCK, &p[..BLOCK as usize])?;
                    p.advance(BLOCK as usize);
                }
                replayed += 1;
            }
            max_seq = max_seq.max(seq);
            pos += FRAME_HEADER + plen;
        }
        let j = Jbd2 {
            header_block: first_block,
            ring_off,
            ring_len,
            cursor: ring_off + pos as u64,
            next_seq: max_seq + 1,
            pending_home: std::collections::BTreeMap::new(),
        };
        if replayed > 0 {
            j.write_header(dev, max_seq)?;
            dev.flush();
        }
        Ok(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{hdd, VirtualClock};

    fn dev() -> Device {
        Device::with_profile(hdd(), 256 << 20, VirtualClock::new())
    }

    fn img(b: u8) -> Vec<u8> {
        vec![b; BLOCK as usize]
    }

    #[test]
    fn checkpoint_writes_home_locations() {
        let d = dev();
        let mut j = Jbd2::format(&d, 1, 64).unwrap();
        j.commit(&d, &[(100, img(7)), (200, img(9))]).unwrap();
        // Deferred: home locations untouched until checkpoint.
        let mut buf = vec![0u8; BLOCK as usize];
        d.read(100 * BLOCK, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
        j.checkpoint(&d).unwrap();
        d.read(100 * BLOCK, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 7));
        d.read(200 * BLOCK, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 9));
        // Checkpoint is idempotent / no-op when clean.
        let writes = d.stats().snapshot().writes;
        j.checkpoint(&d).unwrap();
        assert_eq!(d.stats().snapshot().writes, writes);
    }

    #[test]
    fn recovery_replays_committed_unchecked_txns() {
        let d = dev();
        let mut j = Jbd2::format(&d, 1, 64).unwrap();
        j.commit(&d, &[(100, img(7))]).unwrap();
        // No checkpoint; crash. Recovery must install the home image.
        d.crash();
        let _ = Jbd2::recover(&d, 1, 64).unwrap();
        let mut buf = vec![0u8; BLOCK as usize];
        d.read(100 * BLOCK, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 7));
    }

    #[test]
    fn crash_before_journal_flush_loses_txn_cleanly() {
        let d = dev();
        let mut j = Jbd2::format(&d, 1, 64).unwrap();
        j.commit(&d, &[(100, img(1))]).unwrap();
        // Manually emulate a torn in-flight txn: write garbage at the
        // cursor without a flush, then crash.
        d.write(j.cursor, &[0xAB; 100]).unwrap();
        d.crash();
        let _ = Jbd2::recover(&d, 1, 64).unwrap();
        let mut buf = vec![0u8; BLOCK as usize];
        d.read(100 * BLOCK, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 1), "committed txn must survive");
    }

    #[test]
    fn crash_between_commit_and_checkpoint_replays() {
        let d = dev();
        let mut j = Jbd2::format(&d, 1, 64).unwrap();
        // Do a normal commit of block 100 = 1.
        j.commit(&d, &[(100, img(1))]).unwrap();
        // Hand-craft a committed-but-not-checkpointed txn: journal frame
        // flushed, home write NOT performed, header not bumped.
        let mut payload = Vec::new();
        payload.put_u64_le(100u64);
        payload.extend_from_slice(&img(2));
        let mut frame = Vec::new();
        frame.put_u64_le(2u64); // seq 2
        frame.put_u32_le(1);
        frame.put_u32_le(crc(&payload));
        frame.extend_from_slice(&payload);
        d.write(j.cursor, &frame).unwrap();
        d.flush();
        d.crash();
        let _ = Jbd2::recover(&d, 1, 64).unwrap();
        let mut buf = vec![0u8; BLOCK as usize];
        d.read(100 * BLOCK, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 2), "recovery must replay seq 2");
        // Recovery is idempotent.
        let _ = Jbd2::recover(&d, 1, 64).unwrap();
        d.read(100 * BLOCK, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 2));
    }

    #[test]
    fn ring_wrap_does_not_roll_back() {
        let d = dev();
        // Tiny ring: 3 blocks total → ring of 2 blocks; each 1-block txn
        // frame is ~4112 bytes, so two commits force a wrap.
        let mut j = Jbd2::format(&d, 1, 3).unwrap();
        j.commit(&d, &[(100, img(1))]).unwrap();
        j.commit(&d, &[(100, img(2))]).unwrap(); // wraps, overwrites seq 1? no: seq2 fits after; seq3 wraps
        j.commit(&d, &[(100, img(3))]).unwrap();
        let _ = Jbd2::recover(&d, 1, 3).unwrap();
        let mut buf = vec![0u8; BLOCK as usize];
        d.read(100 * BLOCK, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&x| x == 3),
            "stale ring frames must not be replayed"
        );
    }

    #[test]
    fn recover_continues_sequence() {
        let d = dev();
        let mut j = Jbd2::format(&d, 1, 64).unwrap();
        j.commit(&d, &[(100, img(1))]).unwrap();
        j.commit(&d, &[(101, img(2))]).unwrap();
        let j2 = Jbd2::recover(&d, 1, 64).unwrap();
        assert_eq!(j2.next_seq, 3);
    }

    #[test]
    fn oversized_txn_rejected() {
        let d = dev();
        let mut j = Jbd2::format(&d, 1, 3).unwrap(); // ring: 2 blocks
        let blocks: Vec<(u64, Vec<u8>)> = (0..4).map(|i| (500 + i, img(1))).collect();
        assert!(j.commit(&d, &blocks).is_err());
    }

    #[test]
    fn empty_commit_is_noop() {
        let d = dev();
        let mut j = Jbd2::format(&d, 1, 8).unwrap();
        let writes = d.stats().snapshot().writes;
        j.commit(&d, &[]).unwrap();
        assert_eq!(d.stats().snapshot().writes, writes);
    }
}
