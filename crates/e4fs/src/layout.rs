//! On-disk layout: superblock, block groups, inode records, extent blocks,
//! directory blocks.
//!
//! ```text
//! block 0                     superblock
//! blocks 1..=J                journal (header block + ring)
//! then per group g:
//!   +0                        block bitmap
//!   +1                        inode bitmap
//!   +2 .. +2+T                inode table (256 B per inode)
//!   +2+T ..                   data blocks
//! ```

use bytes::{Buf, BufMut};
use tvfs::{FileAttr, FileType, VfsError, VfsResult};

/// File-system block size.
pub const BLOCK: u64 = 4096;

/// Superblock magic ("E4FS-SIM").
pub const MAGIC: u64 = 0x4534_4653_2d53_494d;

/// Bytes per on-disk inode record.
pub const INODE_SIZE: u64 = 256;

/// Inline extents stored directly in the inode record.
pub const INLINE_EXTENTS: usize = 6;

/// An extent run as stored on disk: `(file_page, disk_block, len)`.
pub type DiskExtent = (u64, u64, u32);

/// Extent entries per overflow block (`[count u32][next u64]` header).
pub const EXTENTS_PER_BLOCK: usize = ((BLOCK as usize) - 12) / 20;

/// Superblock fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Magic, [`MAGIC`].
    pub magic: u64,
    /// Device capacity at format time.
    pub capacity: u64,
    /// Journal size in blocks (header + ring).
    pub journal_blocks: u64,
    /// Blocks per group.
    pub blocks_per_group: u64,
    /// Inodes per group.
    pub inodes_per_group: u64,
}

impl Superblock {
    /// Encoded size.
    pub const SIZE: usize = 40;

    /// Encodes the superblock.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::SIZE);
        b.put_u64_le(self.magic);
        b.put_u64_le(self.capacity);
        b.put_u64_le(self.journal_blocks);
        b.put_u64_le(self.blocks_per_group);
        b.put_u64_le(self.inodes_per_group);
        b
    }

    /// Decodes and validates.
    pub fn decode(mut raw: &[u8]) -> VfsResult<Self> {
        if raw.len() < Self::SIZE {
            return Err(VfsError::Io("short superblock".into()));
        }
        let sb = Superblock {
            magic: raw.get_u64_le(),
            capacity: raw.get_u64_le(),
            journal_blocks: raw.get_u64_le(),
            blocks_per_group: raw.get_u64_le(),
            inodes_per_group: raw.get_u64_le(),
        };
        if sb.magic != MAGIC {
            return Err(VfsError::Io("bad e4fs magic".into()));
        }
        Ok(sb)
    }

    /// First block after superblock + journal.
    pub fn groups_start(&self) -> u64 {
        1 + self.journal_blocks
    }

    /// Inode-table blocks per group.
    pub fn itable_blocks(&self) -> u64 {
        (self.inodes_per_group * INODE_SIZE).div_ceil(BLOCK)
    }

    /// Per-group metadata blocks (bitmaps + inode table).
    pub fn group_meta_blocks(&self) -> u64 {
        2 + self.itable_blocks()
    }

    /// Number of complete groups on the device.
    pub fn group_count(&self) -> u64 {
        let avail = (self.capacity / BLOCK).saturating_sub(self.groups_start());
        avail / self.blocks_per_group
    }

    /// First block of group `g`.
    pub fn group_start(&self, g: u64) -> u64 {
        self.groups_start() + g * self.blocks_per_group
    }

    /// Block number of group `g`'s block bitmap.
    pub fn block_bitmap_block(&self, g: u64) -> u64 {
        self.group_start(g)
    }

    /// Block number of group `g`'s inode bitmap.
    pub fn inode_bitmap_block(&self, g: u64) -> u64 {
        self.group_start(g) + 1
    }

    /// First inode-table block of group `g`.
    pub fn itable_start(&self, g: u64) -> u64 {
        self.group_start(g) + 2
    }

    /// First data block of group `g`.
    pub fn data_start(&self, g: u64) -> u64 {
        self.group_start(g) + self.group_meta_blocks()
    }

    /// Data blocks per group.
    pub fn data_blocks_per_group(&self) -> u64 {
        self.blocks_per_group - self.group_meta_blocks()
    }

    /// Total inodes.
    #[allow(dead_code)] // part of the geometry API, used by tests/tools
    pub fn total_inodes(&self) -> u64 {
        self.group_count() * self.inodes_per_group
    }

    /// `(group, index)` of inode `ino` (1-based inode numbers).
    pub fn inode_location(&self, ino: u64) -> (u64, u64) {
        let idx = ino - 1;
        (idx / self.inodes_per_group, idx % self.inodes_per_group)
    }

    /// `(itable block, byte offset within block)` of inode `ino`.
    pub fn inode_block(&self, ino: u64) -> (u64, usize) {
        let (g, idx) = self.inode_location(ino);
        let byte = idx * INODE_SIZE;
        (self.itable_start(g) + byte / BLOCK, (byte % BLOCK) as usize)
    }

    /// Group that owns data block `b`, or `None` for metadata regions.
    pub fn group_of_block(&self, b: u64) -> Option<u64> {
        if b < self.groups_start() {
            return None;
        }
        let g = (b - self.groups_start()) / self.blocks_per_group;
        (g < self.group_count()).then_some(g)
    }
}

/// The 256-byte on-disk inode record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskInode {
    /// Slot is in use.
    pub valid: bool,
    /// Directory flag.
    pub is_dir: bool,
    /// Permission bits.
    pub mode: u32,
    /// Owner / group.
    pub uid: u32,
    /// Group id.
    pub gid: u32,
    /// Logical size.
    pub size: u64,
    /// Allocated bytes.
    pub blocks_bytes: u64,
    /// Timestamps (virtual ns).
    pub atime_ns: u64,
    /// Modification time.
    pub mtime_ns: u64,
    /// Change time.
    pub ctime_ns: u64,
    /// Link count.
    pub nlink: u32,
    /// Inline extents `(file_page, disk_block, len)`.
    pub inline: Vec<DiskExtent>,
    /// First overflow extent block (0 = none).
    pub overflow: u64,
}

impl DiskInode {
    /// An empty, invalid record.
    pub fn empty() -> Self {
        DiskInode {
            valid: false,
            is_dir: false,
            mode: 0,
            uid: 0,
            gid: 0,
            size: 0,
            blocks_bytes: 0,
            atime_ns: 0,
            mtime_ns: 0,
            ctime_ns: 0,
            nlink: 0,
            inline: Vec::new(),
            overflow: 0,
        }
    }

    /// Encodes into exactly [`INODE_SIZE`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(INODE_SIZE as usize);
        b.put_u8(self.valid as u8);
        b.put_u8(self.is_dir as u8);
        b.put_u8(self.inline.len() as u8);
        b.put_u8(0);
        b.put_u32_le(self.mode);
        b.put_u32_le(self.uid);
        b.put_u32_le(self.gid);
        b.put_u32_le(self.nlink);
        b.put_u64_le(self.size);
        b.put_u64_le(self.blocks_bytes);
        b.put_u64_le(self.atime_ns);
        b.put_u64_le(self.mtime_ns);
        b.put_u64_le(self.ctime_ns);
        b.put_u64_le(self.overflow);
        for &(fp, db, len) in self.inline.iter().take(INLINE_EXTENTS) {
            b.put_u64_le(fp);
            b.put_u64_le(db);
            b.put_u32_le(len);
        }
        b.resize(INODE_SIZE as usize, 0);
        b
    }

    /// Decodes from a 256-byte slice.
    pub fn decode(mut raw: &[u8]) -> VfsResult<Self> {
        if raw.len() < INODE_SIZE as usize {
            return Err(VfsError::Io("short inode".into()));
        }
        let valid = raw.get_u8() != 0;
        let is_dir = raw.get_u8() != 0;
        let n_inline = raw.get_u8() as usize;
        raw.get_u8();
        let mode = raw.get_u32_le();
        let uid = raw.get_u32_le();
        let gid = raw.get_u32_le();
        let nlink = raw.get_u32_le();
        let size = raw.get_u64_le();
        let blocks_bytes = raw.get_u64_le();
        let atime_ns = raw.get_u64_le();
        let mtime_ns = raw.get_u64_le();
        let ctime_ns = raw.get_u64_le();
        let overflow = raw.get_u64_le();
        if n_inline > INLINE_EXTENTS {
            return Err(VfsError::Io("bad inline extent count".into()));
        }
        let mut inline = Vec::with_capacity(n_inline);
        for _ in 0..n_inline {
            inline.push((raw.get_u64_le(), raw.get_u64_le(), raw.get_u32_le()));
        }
        Ok(DiskInode {
            valid,
            is_dir,
            mode,
            uid,
            gid,
            size,
            blocks_bytes,
            atime_ns,
            mtime_ns,
            ctime_ns,
            nlink,
            inline,
            overflow,
        })
    }

    /// Converts to VFS attributes.
    pub fn to_attr(&self, ino: u64) -> FileAttr {
        let kind = if self.is_dir {
            FileType::Directory
        } else {
            FileType::Regular
        };
        let mut a = FileAttr::new(ino, kind, self.mode, 0);
        a.size = self.size;
        a.blocks_bytes = self.blocks_bytes;
        a.atime_ns = self.atime_ns;
        a.mtime_ns = self.mtime_ns;
        a.ctime_ns = self.ctime_ns;
        a.nlink = self.nlink;
        a.uid = self.uid;
        a.gid = self.gid;
        a
    }
}

/// Encodes an overflow extent block: `[count u32][next u64][entries]`.
pub fn encode_extent_block(extents: &[DiskExtent], next: u64) -> Vec<u8> {
    debug_assert!(extents.len() <= EXTENTS_PER_BLOCK);
    let mut b = Vec::with_capacity(BLOCK as usize);
    b.put_u32_le(extents.len() as u32);
    b.put_u64_le(next);
    for &(fp, db, len) in extents {
        b.put_u64_le(fp);
        b.put_u64_le(db);
        b.put_u32_le(len);
    }
    b.resize(BLOCK as usize, 0);
    b
}

/// Decodes an overflow extent block.
pub fn decode_extent_block(mut raw: &[u8]) -> VfsResult<(Vec<DiskExtent>, u64)> {
    if raw.len() < BLOCK as usize {
        return Err(VfsError::Io("short extent block".into()));
    }
    let n = raw.get_u32_le() as usize;
    let next = raw.get_u64_le();
    if n > EXTENTS_PER_BLOCK {
        return Err(VfsError::Io("bad extent block count".into()));
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push((raw.get_u64_le(), raw.get_u64_le(), raw.get_u32_le()));
    }
    Ok((v, next))
}

/// Serializes directory entries; the caller splits the result into blocks.
pub fn encode_dentries(dentries: &[(String, u64, bool)]) -> Vec<u8> {
    let mut b = Vec::new();
    b.put_u32_le(dentries.len() as u32);
    for (name, ino, is_dir) in dentries {
        b.put_u16_le(name.len() as u16);
        b.extend_from_slice(name.as_bytes());
        b.put_u64_le(*ino);
        b.put_u8(*is_dir as u8);
    }
    b
}

/// Parses directory entries back.
pub fn decode_dentries(mut raw: &[u8]) -> VfsResult<Vec<(String, u64, bool)>> {
    if raw.len() < 4 {
        return Err(VfsError::Io("short dir data".into()));
    }
    let n = raw.get_u32_le() as usize;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        if raw.len() < 2 {
            return Err(VfsError::Io("short dirent".into()));
        }
        let nlen = raw.get_u16_le() as usize;
        if raw.len() < nlen + 9 {
            return Err(VfsError::Io("short dirent".into()));
        }
        let name = String::from_utf8(raw[..nlen].to_vec())
            .map_err(|_| VfsError::Io("bad dirent name".into()))?;
        raw.advance(nlen);
        let ino = raw.get_u64_le();
        let is_dir = raw.get_u8() != 0;
        v.push((name, ino, is_dir));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> Superblock {
        Superblock {
            magic: MAGIC,
            capacity: 1 << 30,
            journal_blocks: 1024,
            blocks_per_group: 8192,
            inodes_per_group: 1024,
        }
    }

    #[test]
    fn superblock_roundtrip() {
        let s = sb();
        assert_eq!(Superblock::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn geometry_is_consistent() {
        let s = sb();
        // 1024 inodes * 256 B = 64 blocks.
        assert_eq!(s.itable_blocks(), 64);
        assert_eq!(s.group_meta_blocks(), 66);
        assert_eq!(s.groups_start(), 1025);
        // (262144 - 1025) / 8192 = 31 full groups.
        assert_eq!(s.group_count(), 31);
        assert_eq!(s.data_start(0), 1025 + 66);
        assert_eq!(s.group_start(1), 1025 + 8192);
    }

    #[test]
    fn inode_location_mapping() {
        let s = sb();
        assert_eq!(s.inode_location(1), (0, 0));
        assert_eq!(s.inode_location(1024), (0, 1023));
        assert_eq!(s.inode_location(1025), (1, 0));
        let (blk, off) = s.inode_block(1);
        assert_eq!(blk, s.itable_start(0));
        assert_eq!(off, 0);
        let (blk, off) = s.inode_block(17);
        assert_eq!(blk, s.itable_start(0) + 1);
        assert_eq!(off, 0);
        assert_eq!(s.inode_block(2).1, 256);
    }

    #[test]
    fn group_of_block_bounds() {
        let s = sb();
        assert_eq!(s.group_of_block(0), None);
        assert_eq!(s.group_of_block(s.groups_start()), Some(0));
        assert_eq!(s.group_of_block(s.group_start(3) + 5), Some(3));
    }

    #[test]
    fn disk_inode_roundtrip() {
        let di = DiskInode {
            valid: true,
            is_dir: true,
            mode: 0o755,
            uid: 3,
            gid: 4,
            size: 12345,
            blocks_bytes: 8192,
            atime_ns: 1,
            mtime_ns: 2,
            ctime_ns: 3,
            nlink: 2,
            inline: vec![(0, 100, 2), (5, 200, 1)],
            overflow: 777,
        };
        let enc = di.encode();
        assert_eq!(enc.len(), INODE_SIZE as usize);
        assert_eq!(DiskInode::decode(&enc).unwrap(), di);
    }

    #[test]
    fn empty_inode_is_invalid() {
        let raw = vec![0u8; INODE_SIZE as usize];
        assert!(!DiskInode::decode(&raw).unwrap().valid);
    }

    #[test]
    fn extent_block_roundtrip() {
        let exts: Vec<(u64, u64, u32)> = (0..50).map(|i| (i * 10, i * 100, 3)).collect();
        let enc = encode_extent_block(&exts, 42);
        let (got, next) = decode_extent_block(&enc).unwrap();
        assert_eq!(got, exts);
        assert_eq!(next, 42);
    }

    #[test]
    fn extent_block_capacity() {
        // (4096 - 12) / 20 entries per overflow block.
        assert_eq!(EXTENTS_PER_BLOCK, 204);
    }

    #[test]
    fn dentries_roundtrip() {
        let d = vec![
            ("file.txt".to_string(), 7, false),
            ("sub".to_string(), 9, true),
        ];
        assert_eq!(decode_dentries(&encode_dentries(&d)).unwrap(), d);
        assert_eq!(decode_dentries(&encode_dentries(&[])).unwrap(), vec![]);
    }
}
