//! `e4fs` — an Ext4-like journaling file system for rotational disks.
//!
//! Models the Ext4 design (Mathur et al., OLS '07) that the paper mounts on
//! its HDD tier, with the pieces that distinguish it from `xefs` built for
//! real rather than renamed:
//!
//! * **Block groups.** The disk splits into groups, each holding a block
//!   bitmap, an inode bitmap, an on-disk inode table and data blocks.
//!   Allocation is goal-directed (near the file's previous block) and
//!   first-fit within the group — the classic ext4 locality story for
//!   seek-bound media.
//! * **On-disk metadata blocks.** Inodes are 256-byte records in the inode
//!   table; directories serialize their entries into journaled metadata
//!   blocks; large extent maps overflow into chained extent blocks. All
//!   metadata block images live in an in-memory `MetaStore` mirror whose
//!   dirty blocks form the journal transactions.
//! * **JBD2-style journal, ordered mode.** A transaction is a set of whole
//!   metadata *block images* plus a checksummed commit frame. Ordered mode
//!   is enforced: dirty file data is written in place *before* the
//!   transaction commits, so committed metadata never points at unwritten
//!   data. Checkpointing is deferred, as in real JBD2: committed block
//!   images are written home in one sorted sweep when the ring runs low;
//!   the journal header tracks the last checkpointed sequence so replay
//!   never rolls a block back.

mod bitmap;
mod fs;
mod jbd2;
mod layout;
mod metastore;

pub use fs::{E4Fs, E4Options};
pub use layout::BLOCK;
