//! In-memory mirror of metadata block images.
//!
//! Every metadata block (bitmaps, inode-table blocks, directory blocks,
//! extent-overflow blocks) has its current image here. Mutations mark
//! blocks dirty; the dirty set becomes the next JBD2 transaction. Home
//! locations on the device are written only at checkpoint time.

use std::collections::{BTreeSet, HashMap};

use simdev::Device;
use tvfs::VfsResult;

use crate::layout::BLOCK;

/// The metadata block mirror.
#[derive(Debug, Default)]
pub struct MetaStore {
    blocks: HashMap<u64, Vec<u8>>,
    dirty: BTreeSet<u64>,
}

impl MetaStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_loaded(&mut self, dev: &Device, block: u64) -> VfsResult<()> {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.blocks.entry(block) {
            let mut buf = vec![0u8; BLOCK as usize];
            dev.read(block * BLOCK, &mut buf)?;
            slot.insert(buf);
        }
        Ok(())
    }

    /// Reads a metadata block, loading it from the device on first touch.
    pub fn load(&mut self, dev: &Device, block: u64) -> VfsResult<&[u8]> {
        self.ensure_loaded(dev, block)?;
        Ok(self.blocks.get(&block).expect("just loaded"))
    }

    /// Mutates a metadata block (loading it first if needed) and marks it
    /// dirty for the next transaction.
    pub fn update(&mut self, dev: &Device, block: u64, f: impl FnOnce(&mut [u8])) -> VfsResult<()> {
        self.ensure_loaded(dev, block)?;
        let b = self.blocks.get_mut(&block).expect("just loaded");
        f(b);
        self.dirty.insert(block);
        Ok(())
    }

    /// Replaces a block image wholesale (e.g. a fresh directory block).
    pub fn put(&mut self, block: u64, data: Vec<u8>) {
        debug_assert_eq!(data.len(), BLOCK as usize);
        self.blocks.insert(block, data);
        self.dirty.insert(block);
    }

    /// Forgets a block (freed metadata); it will not be journaled.
    pub fn forget(&mut self, block: u64) {
        self.blocks.remove(&block);
        self.dirty.remove(&block);
    }

    /// Takes the dirty set as `(block, image)` pairs for a transaction.
    pub fn take_dirty(&mut self) -> Vec<(u64, Vec<u8>)> {
        let dirty = std::mem::take(&mut self.dirty);
        dirty
            .into_iter()
            .filter_map(|b| self.blocks.get(&b).map(|img| (b, img.clone())))
            .collect()
    }

    /// Whether any block is dirty.
    #[allow(dead_code)] // diagnostics / tests
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Number of dirty blocks.
    #[allow(dead_code)] // diagnostics / tests
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{hdd, VirtualClock};

    fn dev() -> Device {
        Device::with_profile(hdd(), 64 << 20, VirtualClock::new())
    }

    #[test]
    fn load_reads_device_once() {
        let d = dev();
        d.write(5 * BLOCK, b"hello").unwrap();
        let mut m = MetaStore::new();
        assert_eq!(&m.load(&d, 5).unwrap()[..5], b"hello");
        let reads = d.stats().snapshot().reads;
        m.load(&d, 5).unwrap();
        assert_eq!(d.stats().snapshot().reads, reads, "cached");
    }

    #[test]
    fn update_marks_dirty() {
        let d = dev();
        let mut m = MetaStore::new();
        m.update(&d, 3, |b| b[0] = 7).unwrap();
        assert!(m.has_dirty());
        let dirty = m.take_dirty();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, 3);
        assert_eq!(dirty[0].1[0], 7);
        assert!(!m.has_dirty());
        // Image persists in the mirror after take.
        assert_eq!(m.load(&d, 3).unwrap()[0], 7);
    }

    #[test]
    fn put_and_forget() {
        let d = dev();
        let mut m = MetaStore::new();
        m.put(9, vec![1u8; BLOCK as usize]);
        assert_eq!(m.dirty_count(), 1);
        m.forget(9);
        assert!(!m.has_dirty());
        // After forget, load re-reads the device (zeros).
        assert_eq!(m.load(&d, 9).unwrap()[0], 0);
    }
}
