//! `netfs` — networked file systems as Mux tiers (paper §4, "Distributed
//! Mux").
//!
//! The paper's most ambitious discussion item: "By designing a Mux-to-Mux
//! interconnection (e.g., through Remote Procedure Call) at the Mux layer
//! and a distributed tiering policy, it is possible that a set of machines
//! mounting traditional file systems can be integrated into a distributed
//! storage system. … We plan to start with attaching networked file systems
//! as one of the underlying file systems."
//!
//! That starting point is exactly what this crate provides:
//!
//! * [`SimLink`] — a simulated network link: round-trip latency + byte
//!   bandwidth charged on the shared [`simdev::VirtualClock`], with
//!   fail-stop injection for partition testing.
//! * [`RemoteFs`] — a [`tvfs::FileSystem`] that forwards every VFS call
//!   over a [`SimLink`] to a backing file system "on the other machine".
//!   Requests and responses are genuinely serialized (the link charges the
//!   real message sizes), so a remote tier's cost profile emerges from the
//!   link, not from hand-waving.
//!
//! Because [`RemoteFs`] is just another `FileSystem`, it can be registered
//! as a Mux tier unchanged — and since *Mux itself* implements
//! `FileSystem`, a whole remote Mux hierarchy can be attached as a single
//! tier of a local Mux: the Mux-to-Mux interconnection, in one line.

mod link;
mod remote;
pub mod wire;

pub use link::{LinkDir, LinkProfile, LinkStats, SimLink};
pub use remote::RemoteFs;
