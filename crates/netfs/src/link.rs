//! The simulated network link.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use simdev::VirtualClock;
use tvfs::{VfsError, VfsResult};

/// Performance model of a link: one message of `n` bytes costs
/// `one_way_ns + n * 1e9 / bandwidth_bps`; a request/response pair charges
/// both directions.
#[derive(Debug, Clone)]
pub struct LinkProfile {
    /// One-way propagation + stack latency.
    pub one_way_ns: u64,
    /// Link bandwidth in bytes/second.
    pub bandwidth_bps: u64,
}

impl LinkProfile {
    /// A 25 GbE-ish datacenter link: ~10 µs one-way, ~3 GB/s.
    pub fn datacenter() -> Self {
        LinkProfile {
            one_way_ns: 10_000,
            bandwidth_bps: 3_000_000_000,
        }
    }

    /// A WAN-ish link: 2 ms one-way, 100 MB/s.
    pub fn wan() -> Self {
        LinkProfile {
            one_way_ns: 2_000_000,
            bandwidth_bps: 100_000_000,
        }
    }

    /// Service time of one message of `bytes`.
    pub fn message_ns(&self, bytes: u64) -> u64 {
        self.one_way_ns + bytes.saturating_mul(1_000_000_000) / self.bandwidth_bps.max(1)
    }
}

/// A bidirectional simulated link charging a [`VirtualClock`].
#[derive(Clone)]
pub struct SimLink {
    shared: Arc<Shared>,
}

struct Shared {
    profile: LinkProfile,
    clock: VirtualClock,
    partitioned: AtomicBool,
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl SimLink {
    /// A healthy link with `profile`, charging `clock`.
    pub fn new(profile: LinkProfile, clock: VirtualClock) -> Self {
        SimLink {
            shared: Arc::new(Shared {
                profile,
                clock,
                partitioned: AtomicBool::new(false),
                messages: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
            }),
        }
    }

    /// Simulates a network partition: transfers fail until healed.
    pub fn set_partitioned(&self, p: bool) {
        self.shared.partitioned.store(p, Ordering::Release);
    }

    /// `(messages, bytes)` transferred so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.shared.messages.load(Ordering::Relaxed),
            self.shared.bytes.load(Ordering::Relaxed),
        )
    }

    /// Charges one message of `bytes` in one direction.
    pub fn transfer(&self, bytes: u64) -> VfsResult<()> {
        if self.shared.partitioned.load(Ordering::Acquire) {
            return Err(VfsError::Io("network partition".into()));
        }
        self.shared
            .clock
            .advance(self.shared.profile.message_ns(bytes));
        self.shared.messages.fetch_add(1, Ordering::Relaxed);
        self.shared.bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_has_latency_and_bandwidth_terms() {
        let p = LinkProfile {
            one_way_ns: 1000,
            bandwidth_bps: 1_000_000_000,
        };
        assert_eq!(p.message_ns(0), 1000);
        assert_eq!(p.message_ns(1_000_000), 1000 + 1_000_000);
    }

    #[test]
    fn transfer_charges_clock_and_counts() {
        let clock = VirtualClock::new();
        let l = SimLink::new(
            LinkProfile {
                one_way_ns: 500,
                bandwidth_bps: 1_000_000_000,
            },
            clock.clone(),
        );
        l.transfer(1000).unwrap();
        assert_eq!(clock.now_ns(), 500 + 1000);
        assert_eq!(l.stats(), (1, 1000));
    }

    #[test]
    fn partition_blocks_traffic() {
        let l = SimLink::new(LinkProfile::datacenter(), VirtualClock::new());
        l.set_partitioned(true);
        assert!(l.transfer(1).is_err());
        l.set_partitioned(false);
        assert!(l.transfer(1).is_ok());
    }

    #[test]
    fn wan_slower_than_datacenter() {
        assert!(LinkProfile::wan().message_ns(4096) > LinkProfile::datacenter().message_ns(4096));
    }
}
