//! The simulated network link.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use simdev::VirtualClock;
use tvfs::{VfsError, VfsResult};

/// Performance model of a link: one message of `n` bytes costs
/// `one_way_ns + n * 1e9 / bandwidth_bps`; a request/response pair charges
/// both directions.
#[derive(Debug, Clone)]
pub struct LinkProfile {
    /// One-way propagation + stack latency.
    pub one_way_ns: u64,
    /// Link bandwidth in bytes/second.
    pub bandwidth_bps: u64,
}

impl LinkProfile {
    /// A 25 GbE-ish datacenter link: ~10 µs one-way, ~3 GB/s.
    pub fn datacenter() -> Self {
        LinkProfile {
            one_way_ns: 10_000,
            bandwidth_bps: 3_000_000_000,
        }
    }

    /// A WAN-ish link: 2 ms one-way, 100 MB/s.
    pub fn wan() -> Self {
        LinkProfile {
            one_way_ns: 2_000_000,
            bandwidth_bps: 100_000_000,
        }
    }

    /// Service time of one message of `bytes`.
    pub fn message_ns(&self, bytes: u64) -> u64 {
        self.one_way_ns + self.serialization_ns(bytes)
    }

    /// Time the wire itself is occupied by `bytes` (bandwidth term only —
    /// propagation latency does not consume link capacity).
    pub fn serialization_ns(&self, bytes: u64) -> u64 {
        bytes.saturating_mul(1_000_000_000) / self.bandwidth_bps.max(1)
    }
}

/// Direction of one message on a bidirectional link, seen from the
/// initiator: requests flow out, responses flow back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDir {
    /// Initiator → responder.
    Request,
    /// Responder → initiator.
    Response,
}

/// Counters for one [`SimLink`], split by direction, plus the traffic a
/// partition dropped on the floor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages sent initiator → responder.
    pub req_messages: u64,
    /// Bytes sent initiator → responder.
    pub req_bytes: u64,
    /// Messages sent responder → initiator.
    pub resp_messages: u64,
    /// Bytes sent responder → initiator.
    pub resp_bytes: u64,
    /// Messages refused because the link was partitioned.
    pub dropped_messages: u64,
    /// Bytes refused because the link was partitioned.
    pub dropped_bytes: u64,
}

impl LinkStats {
    /// Total messages delivered in both directions.
    pub fn messages(&self) -> u64 {
        self.req_messages + self.resp_messages
    }

    /// Total bytes delivered in both directions.
    pub fn bytes(&self) -> u64 {
        self.req_bytes + self.resp_bytes
    }
}

/// A bidirectional simulated link charging a [`VirtualClock`].
#[derive(Clone)]
pub struct SimLink {
    shared: Arc<Shared>,
}

struct Shared {
    profile: LinkProfile,
    clock: VirtualClock,
    partitioned: AtomicBool,
    req_messages: AtomicU64,
    req_bytes: AtomicU64,
    resp_messages: AtomicU64,
    resp_bytes: AtomicU64,
    dropped_messages: AtomicU64,
    dropped_bytes: AtomicU64,
}

impl SimLink {
    /// A healthy link with `profile`, charging `clock`.
    pub fn new(profile: LinkProfile, clock: VirtualClock) -> Self {
        SimLink {
            shared: Arc::new(Shared {
                profile,
                clock,
                partitioned: AtomicBool::new(false),
                req_messages: AtomicU64::new(0),
                req_bytes: AtomicU64::new(0),
                resp_messages: AtomicU64::new(0),
                resp_bytes: AtomicU64::new(0),
                dropped_messages: AtomicU64::new(0),
                dropped_bytes: AtomicU64::new(0),
            }),
        }
    }

    /// Simulates a network partition: transfers fail until healed.
    pub fn set_partitioned(&self, p: bool) {
        self.shared.partitioned.store(p, Ordering::Release);
    }

    /// Whether the link is currently partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.shared.partitioned.load(Ordering::Acquire)
    }

    /// The link's performance model.
    pub fn profile(&self) -> &LinkProfile {
        &self.shared.profile
    }

    /// Per-direction message/byte counters plus partition drops.
    pub fn stats(&self) -> LinkStats {
        let s = &self.shared;
        LinkStats {
            req_messages: s.req_messages.load(Ordering::Relaxed),
            req_bytes: s.req_bytes.load(Ordering::Relaxed),
            resp_messages: s.resp_messages.load(Ordering::Relaxed),
            resp_bytes: s.resp_bytes.load(Ordering::Relaxed),
            dropped_messages: s.dropped_messages.load(Ordering::Relaxed),
            dropped_bytes: s.dropped_bytes.load(Ordering::Relaxed),
        }
    }

    /// Charges one message of `bytes` in direction `dir`.
    pub fn transfer(&self, dir: LinkDir, bytes: u64) -> VfsResult<()> {
        let s = &self.shared;
        if s.partitioned.load(Ordering::Acquire) {
            s.dropped_messages.fetch_add(1, Ordering::Relaxed);
            s.dropped_bytes.fetch_add(bytes, Ordering::Relaxed);
            return Err(VfsError::Io("network partition".into()));
        }
        s.clock.advance(s.profile.message_ns(bytes));
        match dir {
            LinkDir::Request => {
                s.req_messages.fetch_add(1, Ordering::Relaxed);
                s.req_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            LinkDir::Response => {
                s.resp_messages.fetch_add(1, Ordering::Relaxed);
                s.resp_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_has_latency_and_bandwidth_terms() {
        let p = LinkProfile {
            one_way_ns: 1000,
            bandwidth_bps: 1_000_000_000,
        };
        assert_eq!(p.message_ns(0), 1000);
        assert_eq!(p.message_ns(1_000_000), 1000 + 1_000_000);
        assert_eq!(p.serialization_ns(1_000_000), 1_000_000);
    }

    #[test]
    fn transfer_charges_clock_and_counts_per_direction() {
        let clock = VirtualClock::new();
        let l = SimLink::new(
            LinkProfile {
                one_way_ns: 500,
                bandwidth_bps: 1_000_000_000,
            },
            clock.clone(),
        );
        l.transfer(LinkDir::Request, 1000).unwrap();
        assert_eq!(clock.now_ns(), 500 + 1000);
        l.transfer(LinkDir::Response, 200).unwrap();
        let st = l.stats();
        assert_eq!((st.req_messages, st.req_bytes), (1, 1000));
        assert_eq!((st.resp_messages, st.resp_bytes), (1, 200));
        assert_eq!(st.messages(), 2);
        assert_eq!(st.bytes(), 1200);
        assert_eq!(st.dropped_messages, 0);
    }

    #[test]
    fn partition_blocks_traffic_and_counts_drops() {
        let l = SimLink::new(LinkProfile::datacenter(), VirtualClock::new());
        assert!(!l.is_partitioned());
        l.set_partitioned(true);
        assert!(l.is_partitioned());
        assert!(l.transfer(LinkDir::Request, 64).is_err());
        assert!(l.transfer(LinkDir::Response, 36).is_err());
        let st = l.stats();
        assert_eq!(st.dropped_messages, 2);
        assert_eq!(st.dropped_bytes, 100);
        assert_eq!(st.messages(), 0);
        l.set_partitioned(false);
        assert!(l.transfer(LinkDir::Request, 1).is_ok());
    }

    #[test]
    fn partition_then_heal_resumes_delivery_with_history_intact() {
        // The satellite-3 transition test: traffic → partition (drops
        // accumulate, clock frozen) → heal (delivery resumes, drop
        // counters keep their history).
        let clock = VirtualClock::new();
        let l = SimLink::new(LinkProfile::datacenter(), clock.clone());
        l.transfer(LinkDir::Request, 4096).unwrap();
        let healthy_ns = clock.now_ns();
        let before = l.stats();
        assert_eq!(before.req_messages, 1);

        l.set_partitioned(true);
        for _ in 0..5 {
            assert!(l.transfer(LinkDir::Request, 4096).is_err());
        }
        // A partitioned link never advances virtual time.
        assert_eq!(clock.now_ns(), healthy_ns);
        assert_eq!(l.stats().dropped_messages, 5);
        assert_eq!(l.stats().dropped_bytes, 5 * 4096);

        l.set_partitioned(false);
        l.transfer(LinkDir::Response, 128).unwrap();
        let after = l.stats();
        assert_eq!(after.req_messages, 1);
        assert_eq!(after.resp_messages, 1);
        assert_eq!(after.dropped_messages, 5, "heal must not clear history");
        assert!(clock.now_ns() > healthy_ns);
    }

    #[test]
    fn wan_slower_than_datacenter() {
        assert!(LinkProfile::wan().message_ns(4096) > LinkProfile::datacenter().message_ns(4096));
    }
}
