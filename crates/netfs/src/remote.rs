//! `RemoteFs`: a file system on the far side of a link.

use std::sync::Arc;

use tvfs::{DirEntry, FileAttr, FileSystem, FileType, InodeNo, SetAttr, StatFs, VfsResult};

use crate::link::{LinkDir, SimLink};
use crate::wire;

/// A [`FileSystem`] proxy that forwards every call over a [`SimLink`] to a
/// backing file system.
///
/// Each method charges one request and one response message on the link
/// (sized from its actual arguments and results), then executes on the
/// backing store. Registering a `RemoteFs` as a Mux tier attaches a
/// networked file system to the hierarchy — §4's starting point for
/// Distributed Mux.
pub struct RemoteFs {
    name: String,
    link: SimLink,
    backing: Arc<dyn FileSystem>,
}

impl RemoteFs {
    /// Wraps `backing` behind `link`.
    pub fn new(name: impl Into<String>, link: SimLink, backing: Arc<dyn FileSystem>) -> Self {
        RemoteFs {
            name: name.into(),
            link,
            backing,
        }
    }

    /// The link (for stats / partition injection in tests).
    pub fn link(&self) -> &SimLink {
        &self.link
    }

    fn rpc<R>(
        &self,
        req_fixed: u64,
        req_payload: u64,
        resp_fixed: u64,
        f: impl FnOnce() -> VfsResult<R>,
    ) -> VfsResult<(R, u64)> {
        self.link
            .transfer(LinkDir::Request, wire::request(req_fixed, req_payload))?;
        let out = f()?;
        Ok((out, resp_fixed))
    }

    fn finish<R>(&self, out: (R, u64), resp_payload: u64) -> VfsResult<R> {
        self.link
            .transfer(LinkDir::Response, wire::response(out.1, resp_payload))?;
        Ok(out.0)
    }
}

impl FileSystem for RemoteFs {
    fn fs_name(&self) -> &str {
        &self.name
    }

    fn root_ino(&self) -> InodeNo {
        self.backing.root_ino()
    }

    fn lookup(&self, parent: InodeNo, name: &str) -> VfsResult<FileAttr> {
        let out = self.rpc(8 + wire::name(name), 0, wire::ATTR, || {
            self.backing.lookup(parent, name)
        })?;
        self.finish(out, 0)
    }

    fn getattr(&self, ino: InodeNo) -> VfsResult<FileAttr> {
        let out = self.rpc(8, 0, wire::ATTR, || self.backing.getattr(ino))?;
        self.finish(out, 0)
    }

    fn setattr(&self, ino: InodeNo, set: &SetAttr) -> VfsResult<FileAttr> {
        let out = self.rpc(8 + 48, 0, wire::ATTR, || self.backing.setattr(ino, set))?;
        self.finish(out, 0)
    }

    fn create(
        &self,
        parent: InodeNo,
        name: &str,
        kind: FileType,
        mode: u32,
    ) -> VfsResult<FileAttr> {
        let out = self.rpc(13 + wire::name(name), 0, wire::ATTR, || {
            self.backing.create(parent, name, kind, mode)
        })?;
        self.finish(out, 0)
    }

    fn unlink(&self, parent: InodeNo, name: &str) -> VfsResult<()> {
        let out = self.rpc(8 + wire::name(name), 0, 0, || {
            self.backing.unlink(parent, name)
        })?;
        self.finish(out, 0)
    }

    fn rename(
        &self,
        parent: InodeNo,
        name: &str,
        new_parent: InodeNo,
        new_name: &str,
    ) -> VfsResult<()> {
        let out = self.rpc(16 + wire::name(name) + wire::name(new_name), 0, 0, || {
            self.backing.rename(parent, name, new_parent, new_name)
        })?;
        self.finish(out, 0)
    }

    fn readdir(&self, ino: InodeNo) -> VfsResult<Vec<DirEntry>> {
        let out = self.rpc(8, 0, 4, || self.backing.readdir(ino))?;
        let resp_payload: u64 = out.0.iter().map(|e| 9 + wire::name(&e.name)).sum();
        self.finish(out, resp_payload)
    }

    fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> VfsResult<usize> {
        // Request carries (ino, off, len); response carries the data.
        let out = self.rpc(24, 0, 8, || self.backing.read(ino, off, buf))?;
        let n = out.0;
        self.finish(out, n as u64)
    }

    fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> VfsResult<usize> {
        // Request carries the data; response carries the count.
        let out = self.rpc(24, data.len() as u64, 8, || {
            self.backing.write(ino, off, data)
        })?;
        self.finish(out, 0)
    }

    fn punch_hole(&self, ino: InodeNo, off: u64, len: u64) -> VfsResult<()> {
        let out = self.rpc(24, 0, 0, || self.backing.punch_hole(ino, off, len))?;
        self.finish(out, 0)
    }

    fn next_data(&self, ino: InodeNo, off: u64) -> VfsResult<Option<(u64, u64)>> {
        let out = self.rpc(16, 0, 17, || self.backing.next_data(ino, off))?;
        self.finish(out, 0)
    }

    fn fsync(&self, ino: InodeNo) -> VfsResult<()> {
        let out = self.rpc(8, 0, 0, || self.backing.fsync(ino))?;
        self.finish(out, 0)
    }

    fn sync(&self) -> VfsResult<()> {
        let out = self.rpc(0, 0, 0, || self.backing.sync())?;
        self.finish(out, 0)
    }

    fn statfs(&self) -> VfsResult<StatFs> {
        let out = self.rpc(0, 0, 28, || self.backing.statfs())?;
        self.finish(out, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkProfile;
    use simdev::VirtualClock;
    use tvfs::memfs::MemFs;
    use tvfs::{VfsError, ROOT_INO};

    fn remote(clock: &VirtualClock) -> (RemoteFs, Arc<MemFs>) {
        let backing = Arc::new(MemFs::new("far", 1 << 26));
        let link = SimLink::new(LinkProfile::datacenter(), clock.clone());
        (
            RemoteFs::new("remote-far", link, backing.clone() as Arc<dyn FileSystem>),
            backing,
        )
    }

    #[test]
    fn roundtrip_through_the_wire() {
        let clock = VirtualClock::new();
        let (r, backing) = remote(&clock);
        let f = r.create(ROOT_INO, "f", FileType::Regular, 0o644).unwrap();
        r.write(f.ino, 0, b"over the network").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(r.read(f.ino, 0, &mut buf).unwrap(), 16);
        assert_eq!(&buf, b"over the network");
        // The data really lives on the backing store.
        assert_eq!(backing.lookup(ROOT_INO, "f").unwrap().size, 16);
    }

    #[test]
    fn every_call_pays_two_messages() {
        let clock = VirtualClock::new();
        let (r, _) = remote(&clock);
        let s0 = r.link().stats();
        r.getattr(ROOT_INO).unwrap();
        let s1 = r.link().stats();
        assert_eq!(s1.messages() - s0.messages(), 2);
        // One in each direction.
        assert_eq!(s1.req_messages - s0.req_messages, 1);
        assert_eq!(s1.resp_messages - s0.resp_messages, 1);
    }

    #[test]
    fn bulk_data_is_charged_by_size() {
        let clock = VirtualClock::new();
        let (r, _) = remote(&clock);
        let f = r.create(ROOT_INO, "f", FileType::Regular, 0o644).unwrap();
        let s0 = r.link().stats();
        r.write(f.ino, 0, &vec![1u8; 1 << 20]).unwrap();
        let s1 = r.link().stats();
        assert!(
            s1.req_bytes - s0.req_bytes >= 1 << 20,
            "write payload rides the request"
        );
        // Reads charge the payload on the response.
        let mut buf = vec![0u8; 1 << 20];
        r.read(f.ino, 0, &mut buf).unwrap();
        let s2 = r.link().stats();
        assert!(
            s2.resp_bytes - s1.resp_bytes >= 1 << 20,
            "read payload rides the response"
        );
    }

    #[test]
    fn latency_emerges_from_the_link() {
        let clock = VirtualClock::new();
        let (r, _) = remote(&clock);
        let t0 = clock.now_ns();
        r.getattr(ROOT_INO).unwrap();
        let rtt = clock.now_ns() - t0;
        // Two 10 µs one-way hops plus header bytes.
        assert!(rtt >= 20_000, "rtt {rtt}");
        assert!(rtt < 25_000);
    }

    #[test]
    fn partition_surfaces_as_io_error() {
        let clock = VirtualClock::new();
        let (r, _) = remote(&clock);
        let f = r.create(ROOT_INO, "f", FileType::Regular, 0o644).unwrap();
        r.link().set_partitioned(true);
        assert!(matches!(
            r.write(f.ino, 0, b"x").unwrap_err(),
            VfsError::Io(_)
        ));
        r.link().set_partitioned(false);
        assert!(r.write(f.ino, 0, b"x").is_ok());
    }

    #[test]
    fn works_as_a_mux_tier() {
        use mux::{LruPolicy, Mux, MuxOptions, TierConfig};
        let clock = VirtualClock::new();
        let (r, backing) = remote(&clock);
        let mux = Mux::new(
            clock.clone(),
            Arc::new(LruPolicy::default_watermarks()),
            MuxOptions::default(),
        );
        // Local fast tier + remote capacity tier.
        mux.add_tier(
            TierConfig {
                name: "local".into(),
                class: simdev::DeviceClass::Pmem,
            },
            Arc::new(MemFs::new("local", 1 << 26)) as Arc<dyn FileSystem>,
        );
        let remote_id = mux.add_tier(
            TierConfig {
                name: "remote".into(),
                class: simdev::DeviceClass::Hdd, // slowest class: archival
            },
            Arc::new(r) as Arc<dyn FileSystem>,
        );
        let f = mux
            .create(ROOT_INO, "doc", FileType::Regular, 0o644)
            .unwrap();
        mux.write(f.ino, 0, &vec![7u8; 64 * 1024]).unwrap();
        // Demote to the remote machine through the OCC synchronizer.
        mux.migrate_file(f.ino, remote_id).unwrap();
        assert!(backing.lookup(ROOT_INO, "doc").unwrap().blocks_bytes > 0);
        let mut buf = vec![0u8; 64 * 1024];
        mux.read(f.ino, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
    }
}
