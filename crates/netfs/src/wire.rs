//! Wire sizes for the RPC messages.
//!
//! `RemoteFs` executes calls in-process (the "server" is a trait object),
//! but the link must charge realistic message sizes, so every call has an
//! explicit request/response encoding size derived from its arguments —
//! a fixed RPC header plus the marshalled payload.

/// Fixed per-message overhead: transport header + method id + status.
pub const HEADER: u64 = 48;

/// Request size of a call with `fixed` argument bytes and `payload` bulk
/// data bytes.
pub fn request(fixed: u64, payload: u64) -> u64 {
    HEADER + fixed + payload
}

/// Response size with `fixed` result bytes and `payload` bulk data.
pub fn response(fixed: u64, payload: u64) -> u64 {
    HEADER + fixed + payload
}

/// Marshalled size of a `FileAttr`.
pub const ATTR: u64 = 64;

/// Marshalled size of a name string.
pub fn name(n: &str) -> u64 {
    2 + n.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_monotone_in_payload() {
        assert!(request(8, 4096) > request(8, 0));
        assert_eq!(request(8, 0), HEADER + 8);
        assert_eq!(response(ATTR, 0), HEADER + ATTR);
        assert_eq!(name("abc"), 5);
    }

    #[test]
    fn every_message_pays_the_header() {
        assert_eq!(request(0, 0), HEADER);
        assert_eq!(response(0, 0), HEADER);
    }

    #[test]
    fn request_and_response_cost_fixed_plus_payload_exactly() {
        // Wire cost is purely additive: header + fixed + payload, no
        // hidden rounding — the link model depends on this for charging.
        for fixed in [0u64, 8, 24, ATTR] {
            for payload in [0u64, 1, 4096, 1 << 20] {
                assert_eq!(request(fixed, payload), HEADER + fixed + payload);
                assert_eq!(response(fixed, payload), HEADER + fixed + payload);
            }
        }
    }

    #[test]
    fn name_cost_is_length_prefixed() {
        assert_eq!(name(""), 2);
        assert_eq!(name("x"), 3);
        let long = "d".repeat(255);
        assert_eq!(name(&long), 2 + 255);
        // Multi-byte UTF-8 charges encoded bytes, not chars.
        assert_eq!(name("é"), 2 + 2);
    }
}
