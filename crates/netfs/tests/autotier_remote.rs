//! First real consumer of the netfs island: a [`RemoteFs`] over a
//! [`SimLink`] registered with Mux as the coldest tier.
//!
//! The autotier engine must (a) demote cold data onto the remote tier
//! through the ordinary migration path, and (b) when the link partitions,
//! let the health layer fence the tier instead of wedging the planner —
//! subsequent epochs veto the remote destination and foreground I/O keeps
//! working from the local tiers.

use std::sync::Arc;

use netfs::{LinkProfile, RemoteFs, SimLink};
use simdev::{DeviceClass, VirtualClock};
use tvfs::memfs::MemFs;
use tvfs::{FileSystem, FileType, ROOT_INO};

use mux::{AutotierConfig, Mux, MuxOptions, PinnedPolicy, TierConfig, TierHealthState, BLOCK};

struct Stack {
    clock: VirtualClock,
    mux: Arc<Mux>,
    remote: Arc<RemoteFs>,
}

/// Local PM tier 0 plus a datacenter-link remote tier 1 (the coldest).
/// New files land on PM; nothing is pinned, so the autotier may move them.
fn build_stack() -> Stack {
    let clock = VirtualClock::new();
    let mux = Arc::new(Mux::new(
        clock.clone(),
        Arc::new(PinnedPolicy::new(0)),
        MuxOptions::default(),
    ));
    mux.add_tier(
        TierConfig {
            name: "pm".into(),
            class: DeviceClass::Pmem,
        },
        Arc::new(MemFs::new("pm", 1 << 30)),
    );
    let remote = Arc::new(RemoteFs::new(
        "cold-store",
        SimLink::new(LinkProfile::datacenter(), clock.clone()),
        Arc::new(MemFs::new("backing", 1 << 30)),
    ));
    mux.add_tier(
        TierConfig {
            name: "remote".into(),
            class: DeviceClass::Hdd,
        },
        remote.clone() as Arc<dyn FileSystem>,
    );
    Stack { clock, mux, remote }
}

fn tick_epochs(st: &Stack, n: usize) -> Vec<mux::EpochReport> {
    (0..n)
        .map(|_| {
            st.clock.advance(AutotierConfig::default().epoch_ns);
            st.mux.maintenance_tick()
        })
        .collect()
}

#[test]
fn cold_data_demotes_to_the_remote_tier() {
    let st = build_stack();
    let ino = st
        .mux
        .create(ROOT_INO, "archive", FileType::Regular, 0o644)
        .unwrap()
        .ino;
    let payload: Vec<u8> = (0..16 * BLOCK as usize).map(|i| (i % 251) as u8).collect();
    st.mux.write(ino, 0, &payload).unwrap();
    assert!(st
        .mux
        .file_placement(ino)
        .unwrap()
        .iter()
        .all(|&(_, _, t)| t == 0));
    let msgs_before = st.remote.link().stats().messages();

    // Left untouched, the write heat decays below the cold floor within a
    // few epochs and the planner sinks the file to the remote tier.
    let mut demoted = false;
    for _ in 0..10 {
        tick_epochs(&st, 1);
        if st
            .mux
            .file_placement(ino)
            .unwrap()
            .iter()
            .all(|&(_, _, t)| t == 1)
        {
            demoted = true;
            break;
        }
    }
    assert!(
        demoted,
        "cold file never reached the remote tier: {:?}",
        st.mux.file_placement(ino).unwrap()
    );
    let stats = st.mux.stats().snapshot();
    assert!(
        stats.auto_demotions >= 16,
        "demotions: {}",
        stats.auto_demotions
    );
    let msgs_after = st.remote.link().stats().messages();
    assert!(
        msgs_after > msgs_before,
        "demotion must actually cross the simulated link"
    );

    // The data survives the trip (served from the remote tier).
    let mut buf = vec![0u8; payload.len()];
    st.mux.read(ino, 0, &mut buf).unwrap();
    assert_eq!(buf, payload);
}

#[test]
fn link_partition_fences_the_tier_without_wedging_the_planner() {
    let st = build_stack();
    let ino = st
        .mux
        .create(ROOT_INO, "stranded", FileType::Regular, 0o644)
        .unwrap()
        .ino;
    st.mux
        .write(ino, 0, &vec![9u8; 8 * BLOCK as usize])
        .unwrap();

    // Enqueue the demotion while the tier still looks healthy, then cut
    // the link before the executor gets to it — the plan fails mid-flight
    // and the health layer must fence the remote tier off. (A partitioned
    // link also fails `statfs`, so planner-emitted plans are vetoed before
    // execution; the enqueue models a plan that raced the fail-stop.)
    st.mux
        .autotier_enqueue(mux::policy::MigrationPlan {
            ino,
            block: 0,
            n_blocks: 8,
            to: 1,
        })
        .unwrap();
    st.remote.link().set_partitioned(true);
    let r = tick_epochs(&st, 1).pop().unwrap();
    assert!(r.failed > 0, "the in-flight demotion must fail: {r:?}");
    assert_ne!(
        st.mux.tier_health(1).state,
        TierHealthState::Healthy,
        "failed migrations must trip the remote tier's circuit breaker"
    );

    // The file never left the local tier, and stays fully readable.
    assert!(st
        .mux
        .file_placement(ino)
        .unwrap()
        .iter()
        .all(|&(_, _, t)| t == 0));
    let mut buf = vec![0u8; 8 * BLOCK as usize];
    st.mux.read(ino, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 9));

    // Later epochs veto the fenced destination instead of queueing doomed
    // work: the planner keeps running and the queue stays drained.
    let vetoes_before = st.mux.stats().snapshot().planner_vetoes;
    // Cool the file further so it keeps qualifying for demotion.
    let reports = tick_epochs(&st, 4);
    for r in &reports {
        assert_eq!(r.queued, 0, "fenced-tier plans must not accumulate: {r:?}");
    }
    let vetoes_after = st.mux.stats().snapshot().planner_vetoes;
    assert!(
        vetoes_after > vetoes_before,
        "planner must veto the fenced destination ({vetoes_before} -> {vetoes_after})"
    );

    // Healing the link and resetting the breaker lets the demotion through.
    st.remote.link().set_partitioned(false);
    st.mux.health().reset(1);
    let mut demoted = false;
    for _ in 0..10 {
        tick_epochs(&st, 1);
        if st
            .mux
            .file_placement(ino)
            .unwrap()
            .iter()
            .all(|&(_, _, t)| t == 1)
        {
            demoted = true;
            break;
        }
    }
    assert!(demoted, "demotion must resume after the link heals");
}
