//! The `NovaFs` file system: VFS entry points, commit protocol, recovery.

use std::collections::{BTreeSet, HashMap};

use parking_lot::Mutex;
use simdev::Device;
use tvfs::{
    DirEntry, FileAttr, FileSystem, FileType, InodeNo, Linear, SetAttr, StatFs, VfsError, VfsResult,
};

use crate::inode::Inode;
use crate::layout::{InodeSlot, Superblock, FIRST_INO, MAGIC, PAGE};
use crate::log::{fits_in_page, LogEntry, LOG_DATA_START};
use crate::palloc::PageAllocator;

/// Tunables for a [`NovaFs`] instance.
#[derive(Debug, Clone)]
pub struct NovaOptions {
    /// Number of inode-table slots.
    pub n_inodes: u64,
    /// Virtual nanoseconds charged per VFS operation for the software path
    /// (indexing, argument checking); device time is charged by the device.
    pub software_op_ns: u64,
}

impl Default for NovaOptions {
    fn default() -> Self {
        NovaOptions {
            n_inodes: 4096,
            software_op_ns: 1100,
        }
    }
}

struct Inner {
    alloc: PageAllocator,
    inodes: HashMap<InodeNo, Inode>,
    next_ino_hint: InodeNo,
}

/// A NOVA-like log-structured PM file system over one [`Device`].
///
/// See the crate docs for the design summary. All operations are durable
/// when they return (DAX writes + cache-line flushes + atomic tail update),
/// so [`FileSystem::fsync`] is a no-op — the property that makes NOVA fast
/// on PM and that Strata's extra logging forfeits (paper §3.1).
pub struct NovaFs {
    dev: Device,
    sb: Superblock,
    opts: NovaOptions,
    inner: Mutex<Inner>,
}

impl NovaFs {
    /// Formats `dev` with a fresh file system and mounts it.
    pub fn format(dev: Device, opts: NovaOptions) -> VfsResult<Self> {
        let sb = Superblock {
            magic: MAGIC,
            capacity: dev.capacity(),
            n_inodes: opts.n_inodes,
        };
        dev.write(0, &sb.encode())?;
        // Zero the inode table (a reformat must not resurrect old inodes).
        let zeros = vec![0u8; PAGE as usize];
        for p in 1..sb.first_free_page() {
            dev.write(p * PAGE, &zeros)?;
        }
        dev.flush();
        let fs = NovaFs {
            inner: Mutex::new(Inner {
                alloc: PageAllocator::new(sb.first_free_page(), sb.capacity / PAGE),
                inodes: HashMap::new(),
                next_ino_hint: FIRST_INO + 1,
            }),
            dev,
            sb,
            opts,
        };
        // Create the root directory.
        {
            let mut inner = fs.inner.lock();
            let attr = FileAttr::new(FIRST_INO, FileType::Directory, 0o755, fs.now());
            let slot = InodeSlot {
                valid: true,
                kind_dir: true,
                ..Default::default()
            };
            fs.write_slot(FIRST_INO, &slot)?;
            inner.inodes.insert(FIRST_INO, Inode::new(attr, slot));
        }
        Ok(fs)
    }

    /// Mounts an existing file system, rebuilding all in-DRAM state by
    /// scanning the inode table and replaying every log up to its committed
    /// tail.
    pub fn mount(dev: Device, opts: NovaOptions) -> VfsResult<Self> {
        let mut raw = vec![0u8; Superblock::SIZE];
        dev.read(0, &mut raw)?;
        let sb = Superblock::decode(&raw)?;
        let mut inner = Inner {
            alloc: PageAllocator::new(sb.first_free_page(), sb.capacity / PAGE),
            inodes: HashMap::new(),
            next_ino_hint: FIRST_INO + 1,
        };
        let fs_now = dev.clock().now_ns();
        for ino in FIRST_INO..FIRST_INO + sb.n_inodes {
            let mut slot_raw = vec![0u8; InodeSlot::SIZE];
            dev.read(sb.inode_slot_off(ino), &mut slot_raw)?;
            let slot = InodeSlot::decode(&slot_raw)?;
            if !slot.valid {
                continue;
            }
            let kind = if slot.kind_dir {
                FileType::Directory
            } else {
                FileType::Regular
            };
            let attr = FileAttr::new(ino, kind, if slot.kind_dir { 0o755 } else { 0o644 }, fs_now);
            let mut inode = Inode::new(attr, slot);
            Self::replay_log(&dev, &mut inode, &mut inner.alloc)?;
            inode.attr.blocks_bytes = inode.extents.covered() * PAGE;
            inner.inodes.insert(ino, inode);
        }
        // Garbage-collect orphans: valid slots never referenced by any
        // directory (a crash window between child-slot creation and the
        // parent dentry commit, or between dentry removal and slot
        // invalidation, leaks them).
        let mut referenced: BTreeSet<InodeNo> = BTreeSet::new();
        referenced.insert(FIRST_INO);
        for inode in inner.inodes.values() {
            for &(child, _) in inode.dentries.values() {
                referenced.insert(child);
            }
        }
        let orphans: Vec<InodeNo> = inner
            .inodes
            .keys()
            .copied()
            .filter(|i| !referenced.contains(i))
            .collect();
        let fs = NovaFs {
            dev,
            sb,
            opts,
            inner: Mutex::new(inner),
        };
        {
            let mut inner = fs.inner.lock();
            // Prune dangling dentries — the mirror-image crash window: the
            // parent's dentry append persisted but the child's slot write
            // did not, leaving a name that ESTALEs on every lookup forever.
            let dirs: Vec<InodeNo> = inner.inodes.keys().copied().collect();
            for dino in dirs {
                let dead: Vec<String> = inner.inodes[&dino]
                    .dentries
                    .iter()
                    .filter(|&(_, &(child, _))| !inner.inodes.contains_key(&child))
                    .map(|(n, _)| n.clone())
                    .collect();
                for name in dead {
                    let del = LogEntry::DentryDel { name };
                    let mut dummy = PageAllocator::new(0, 0);
                    Self::apply_entry(
                        inner.inodes.get_mut(&dino).expect("listed"),
                        &del,
                        &mut dummy,
                        false,
                    );
                    fs.append_log(&mut inner, dino, &[del])?;
                }
            }
            for ino in orphans {
                fs.destroy_inode(&mut inner, ino)?;
            }
        }
        Ok(fs)
    }

    /// The device this file system runs on.
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// The device byte extents backing a file, in file order — the DAX
    /// mapping interface (paper §2.5: "memory mapping a file provides
    /// direct access to the physical storage"). Mux uses this to map its
    /// preallocated SCM cache file and bypass per-access file-system
    /// calls.
    pub fn file_device_extents(&self, ino: InodeNo) -> VfsResult<Vec<(u64, u64)>> {
        let inner = self.inner.lock();
        let inode = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
        if inode.attr.is_dir() {
            return Err(VfsError::IsDir);
        }
        Ok(inode
            .extents
            .iter()
            .map(|e| (e.value.0 * PAGE, e.len * PAGE))
            .collect())
    }

    fn now(&self) -> u64 {
        self.dev.clock().now_ns()
    }

    fn charge_sw(&self) {
        self.dev.clock().advance(self.opts.software_op_ns);
    }

    fn write_slot(&self, ino: InodeNo, slot: &InodeSlot) -> VfsResult<()> {
        let off = self.sb.inode_slot_off(ino);
        self.dev.write(off, &slot.encode())?;
        self.dev.flush_range(off, InodeSlot::SIZE as u64);
        Ok(())
    }

    /// Walks an inode's committed log, applying entries to `inode` and
    /// reserving every page the log references in `alloc`.
    fn replay_log(dev: &Device, inode: &mut Inode, alloc: &mut PageAllocator) -> VfsResult<()> {
        let slot = inode.slot;
        if slot.log_head == 0 {
            return Ok(());
        }
        let mut page = slot.log_head;
        let mut off = LOG_DATA_START;
        let mut page_raw = vec![0u8; PAGE as usize];
        dev.read(page * PAGE, &mut page_raw)?;
        alloc.reserve(page);
        inode.log_pages.push(page);
        loop {
            let at_tail = page == slot.tail_page && off >= slot.tail_off;
            if at_tail {
                break;
            }
            match LogEntry::decode(&page_raw[off as usize..])? {
                Some((entry, n)) => {
                    Self::apply_entry(inode, &entry, alloc, true);
                    off += n as u32;
                }
                None => {
                    // End of page: follow the chain.
                    let next = u64::from_le_bytes(page_raw[0..8].try_into().expect("8 bytes"));
                    if next == 0 || page == slot.tail_page {
                        break;
                    }
                    page = next;
                    off = LOG_DATA_START;
                    dev.read(page * PAGE, &mut page_raw)?;
                    alloc.reserve(page);
                    inode.log_pages.push(page);
                }
            }
        }
        Ok(())
    }

    /// Applies one log entry to in-memory state. With `reserve`, data pages
    /// are also reserved in the allocator (mount-time replay).
    fn apply_entry(inode: &mut Inode, entry: &LogEntry, alloc: &mut PageAllocator, reserve: bool) {
        match entry {
            LogEntry::Write {
                file_page,
                n_pages,
                data_page,
                new_size,
                mtime_ns,
            } => {
                if reserve {
                    for p in *data_page..*data_page + *n_pages {
                        alloc.reserve(p);
                    }
                    // Pages the new run displaces become free again.
                    for e in inode.extents.overlapping(*file_page, *n_pages) {
                        alloc.free_run(e.value.0, e.len);
                        inode.dead_entries += 1;
                    }
                }
                inode
                    .extents
                    .insert(*file_page, *n_pages, Linear(*data_page));
                inode.attr.size = inode.attr.size.max(*new_size);
                inode.attr.mtime_ns = *mtime_ns;
                inode.live_entries += 1;
            }
            LogEntry::Attr {
                size,
                mode,
                uid,
                gid,
                atime_ns,
                mtime_ns,
                ctime_ns,
            } => {
                inode.attr.size = *size;
                inode.attr.mode = *mode;
                inode.attr.uid = *uid;
                inode.attr.gid = *gid;
                inode.attr.atime_ns = *atime_ns;
                inode.attr.mtime_ns = *mtime_ns;
                inode.attr.ctime_ns = *ctime_ns;
                inode.live_entries += 1;
                inode.dead_entries += 1; // supersedes any earlier Attr
            }
            LogEntry::Unmap { file_page, n_pages } => {
                if reserve {
                    for e in inode.extents.overlapping(*file_page, *n_pages) {
                        alloc.free_run(e.value.0, e.len);
                        inode.dead_entries += 1;
                    }
                }
                inode.extents.remove(*file_page, *n_pages);
                inode.live_entries += 1;
            }
            LogEntry::DentryAdd {
                child_ino,
                is_dir,
                name,
            } => {
                inode.dentries.insert(name.clone(), (*child_ino, *is_dir));
                inode.live_entries += 1;
            }
            LogEntry::DentryDel { name } => {
                inode.dentries.remove(name);
                inode.live_entries += 1;
                inode.dead_entries += 2; // the add and the del
            }
        }
    }

    /// Appends `entries` to an inode's log and commits them with a single
    /// atomic tail update. This is the NOVA commit protocol: data first,
    /// entries next, tail last, with flushes between the steps.
    fn append_log(&self, inner: &mut Inner, ino: InodeNo, entries: &[LogEntry]) -> VfsResult<()> {
        let inode = inner.inodes.get_mut(&ino).ok_or(VfsError::NotFound)?;
        let mut slot = inode.slot;
        let mut new_log_pages: Vec<u64> = Vec::new();
        if slot.log_head == 0 {
            let p = inner.alloc.alloc_one()?;
            let inode = inner.inodes.get_mut(&ino).expect("present");
            // Initialize the page header (next = 0).
            self.dev.write(p * PAGE, &0u64.to_le_bytes())?;
            slot.log_head = p;
            slot.tail_page = p;
            slot.tail_off = LOG_DATA_START;
            new_log_pages.push(p);
            inode.log_pages.push(p);
        }
        for entry in entries {
            let enc = entry.encode();
            let need_chain = {
                !fits_in_page(
                    // Recompute: tail may have moved.
                    slot.tail_off,
                    enc.len() as u32,
                )
            };
            if need_chain {
                let p = inner.alloc.alloc_one()?;
                // Terminate the old page (type 0 marker) and link it.
                self.dev
                    .write(slot.tail_page * PAGE + u64::from(slot.tail_off), &[0u8])?;
                self.dev.write(p * PAGE, &0u64.to_le_bytes())?;
                self.dev.write(slot.tail_page * PAGE, &p.to_le_bytes())?;
                self.dev.flush_range(slot.tail_page * PAGE, PAGE);
                slot.tail_page = p;
                slot.tail_off = LOG_DATA_START;
                new_log_pages.push(p);
                inner
                    .inodes
                    .get_mut(&ino)
                    .expect("present")
                    .log_pages
                    .push(p);
            }
            let at = slot.tail_page * PAGE + u64::from(slot.tail_off);
            self.dev.write(at, &enc)?;
            self.dev.flush_range(at, enc.len() as u64);
            slot.tail_off += enc.len() as u32;
        }
        // Commit: atomic tail (and possibly head) update.
        self.write_slot(ino, &slot)?;
        let inode = inner.inodes.get_mut(&ino).expect("present");
        inode.slot = slot;
        Ok(())
    }

    /// Frees an inode's data pages, log pages and slot.
    fn destroy_inode(&self, inner: &mut Inner, ino: InodeNo) -> VfsResult<()> {
        let inode = inner.inodes.remove(&ino).ok_or(VfsError::NotFound)?;
        for e in inode.extents.iter() {
            inner.alloc.free_run(e.value.0, e.len);
        }
        for p in inode.log_pages {
            inner.alloc.free_run(p, 1);
        }
        self.write_slot(ino, &InodeSlot::default())?;
        Ok(())
    }

    fn alloc_ino(&self, inner: &mut Inner) -> VfsResult<InodeNo> {
        let limit = FIRST_INO + self.sb.n_inodes;
        let start = inner.next_ino_hint.max(FIRST_INO + 1);
        for candidate in (start..limit).chain(FIRST_INO + 1..start) {
            if !inner.inodes.contains_key(&candidate) {
                inner.next_ino_hint = candidate + 1;
                return Ok(candidate);
            }
        }
        Err(VfsError::NoSpace)
    }

    /// Rewrites an inode's log compactly (NOVA's log cleaner), freeing the
    /// superseded pages. Called opportunistically after mutations.
    fn clean_log(&self, inner: &mut Inner, ino: InodeNo) -> VfsResult<()> {
        let inode = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
        let now = self.now();
        let mut fresh: Vec<LogEntry> = Vec::new();
        let a = inode.attr;
        fresh.push(LogEntry::Attr {
            size: a.size,
            mode: a.mode,
            uid: a.uid,
            gid: a.gid,
            atime_ns: a.atime_ns,
            mtime_ns: a.mtime_ns,
            ctime_ns: now,
        });
        for e in inode.extents.iter() {
            fresh.push(LogEntry::Write {
                file_page: e.start,
                n_pages: e.len,
                data_page: e.value.0,
                new_size: a.size,
                mtime_ns: a.mtime_ns,
            });
        }
        for (name, (child, is_dir)) in &inode.dentries {
            fresh.push(LogEntry::DentryAdd {
                child_ino: *child,
                is_dir: *is_dir,
                name: name.clone(),
            });
        }
        let old_pages = inode.log_pages.clone();
        // Build the new chain, then swing the slot atomically.
        {
            let inode = inner.inodes.get_mut(&ino).expect("present");
            inode.slot.log_head = 0;
            inode.slot.tail_page = 0;
            inode.slot.tail_off = 0;
            inode.log_pages.clear();
            inode.live_entries = 0;
            inode.dead_entries = 0;
        }
        self.append_log(inner, ino, &fresh)?;
        for p in old_pages {
            inner.alloc.free_run(p, 1);
        }
        Ok(())
    }

    /// Reads a whole file page (or zeros for holes) into `buf`.
    fn read_page(&self, inode: &Inode, file_page: u64, buf: &mut [u8]) -> VfsResult<()> {
        debug_assert_eq!(buf.len() as u64, PAGE);
        match inode.extents.get(file_page) {
            Some(Linear(dp)) => {
                self.dev.read(dp * PAGE, buf)?;
            }
            None => buf.fill(0),
        }
        Ok(())
    }
}

impl FileSystem for NovaFs {
    fn fs_name(&self) -> &str {
        "novafs"
    }

    fn lookup(&self, parent: InodeNo, name: &str) -> VfsResult<FileAttr> {
        self.charge_sw();
        let inner = self.inner.lock();
        let dir = inner.inodes.get(&parent).ok_or(VfsError::NotFound)?;
        if !dir.attr.is_dir() {
            return Err(VfsError::NotDir);
        }
        let &(child, _) = dir.dentries.get(name).ok_or(VfsError::NotFound)?;
        inner
            .inodes
            .get(&child)
            .map(|i| i.attr)
            .ok_or(VfsError::Stale)
    }

    fn getattr(&self, ino: InodeNo) -> VfsResult<FileAttr> {
        self.charge_sw();
        let inner = self.inner.lock();
        inner
            .inodes
            .get(&ino)
            .map(|i| i.attr)
            .ok_or(VfsError::NotFound)
    }

    fn setattr(&self, ino: InodeNo, set: &SetAttr) -> VfsResult<FileAttr> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        let inode = inner.inodes.get_mut(&ino).ok_or(VfsError::NotFound)?;
        let mut attr = inode.attr;
        let mut entries: Vec<LogEntry> = Vec::new();
        if let Some(new_size) = set.size {
            if attr.is_dir() {
                return Err(VfsError::IsDir);
            }
            if new_size < attr.size {
                // Shrink: unmap whole pages past the end, zero the tail of
                // the boundary page so a later extension reads zeros.
                let first_dead_page = new_size.div_ceil(PAGE);
                let last_page = attr.size.div_ceil(PAGE);
                if last_page > first_dead_page {
                    entries.push(LogEntry::Unmap {
                        file_page: first_dead_page,
                        n_pages: last_page - first_dead_page,
                    });
                }
                if new_size % PAGE != 0 {
                    if let Some(Linear(dp)) = inode.extents.get(new_size / PAGE) {
                        let in_page = new_size % PAGE;
                        let zeros = vec![0u8; (PAGE - in_page) as usize];
                        self.dev.write(dp * PAGE + in_page, &zeros)?;
                        self.dev.flush_range(dp * PAGE + in_page, PAGE - in_page);
                    }
                }
            }
            attr.size = new_size;
            attr.mtime_ns = now;
        }
        if let Some(m) = set.mode {
            attr.mode = m;
        }
        if let Some(u) = set.uid {
            attr.uid = u;
        }
        if let Some(g) = set.gid {
            attr.gid = g;
        }
        if let Some(t) = set.atime_ns {
            attr.atime_ns = t;
        }
        if let Some(t) = set.mtime_ns {
            attr.mtime_ns = t;
        }
        attr.ctime_ns = now;
        entries.push(LogEntry::Attr {
            size: attr.size,
            mode: attr.mode,
            uid: attr.uid,
            gid: attr.gid,
            atime_ns: attr.atime_ns,
            mtime_ns: attr.mtime_ns,
            ctime_ns: attr.ctime_ns,
        });
        // Apply in memory (frees pages for shrink), then persist.
        let mut staged = inode.clone();
        for e in &entries {
            Self::apply_entry(&mut staged, e, &mut inner.alloc, true);
        }
        staged.attr = attr;
        staged.attr.blocks_bytes = staged.extents.covered() * PAGE;
        *inner.inodes.get_mut(&ino).expect("present") = staged;
        self.append_log(&mut inner, ino, &entries)?;
        Ok(inner.inodes[&ino].attr)
    }

    fn create(
        &self,
        parent: InodeNo,
        name: &str,
        kind: FileType,
        mode: u32,
    ) -> VfsResult<FileAttr> {
        if name.is_empty() || name.contains('/') {
            return Err(VfsError::InvalidArgument("bad name".into()));
        }
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        {
            let dir = inner.inodes.get(&parent).ok_or(VfsError::NotFound)?;
            if !dir.attr.is_dir() {
                return Err(VfsError::NotDir);
            }
            if dir.dentries.contains_key(name) {
                return Err(VfsError::Exists);
            }
        }
        let ino = self.alloc_ino(&mut inner)?;
        let is_dir = kind == FileType::Directory;
        let slot = InodeSlot {
            valid: true,
            kind_dir: is_dir,
            ..Default::default()
        };
        // Child slot first (crash here leaks an orphan that mount GC
        // reclaims), then the parent dentry commit.
        self.write_slot(ino, &slot)?;
        let mut attr = FileAttr::new(ino, kind, mode, now);
        if is_dir {
            attr.nlink = 2;
        }
        inner.inodes.insert(ino, Inode::new(attr, slot));
        let add = LogEntry::DentryAdd {
            child_ino: ino,
            is_dir,
            name: name.to_string(),
        };
        let mut staged_alloc_dummy = PageAllocator::new(0, 0);
        Self::apply_entry(
            inner.inodes.get_mut(&parent).expect("checked"),
            &add,
            &mut staged_alloc_dummy,
            false,
        );
        self.append_log(&mut inner, parent, &[add])?;
        Ok(attr)
    }

    fn unlink(&self, parent: InodeNo, name: &str) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let child = {
            let dir = inner.inodes.get(&parent).ok_or(VfsError::NotFound)?;
            if !dir.attr.is_dir() {
                return Err(VfsError::NotDir);
            }
            let &(child, _) = dir.dentries.get(name).ok_or(VfsError::NotFound)?;
            child
        };
        if let Some(c) = inner.inodes.get(&child) {
            if c.attr.is_dir() && !c.dentries.is_empty() {
                return Err(VfsError::NotEmpty);
            }
        }
        let del = LogEntry::DentryDel {
            name: name.to_string(),
        };
        let mut dummy = PageAllocator::new(0, 0);
        Self::apply_entry(
            inner.inodes.get_mut(&parent).expect("checked"),
            &del,
            &mut dummy,
            false,
        );
        self.append_log(&mut inner, parent, &[del])?;
        // Dentry removal is the commit point; now reclaim the child (which
        // a dangling dentry — a half-durable create — never had).
        if inner.inodes.contains_key(&child) {
            self.destroy_inode(&mut inner, child)?;
        }
        if inner.inodes[&parent].wants_cleaning() {
            self.clean_log(&mut inner, parent)?;
        }
        Ok(())
    }

    fn rename(
        &self,
        parent: InodeNo,
        name: &str,
        new_parent: InodeNo,
        new_name: &str,
    ) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let (child, is_dir) = {
            let dir = inner.inodes.get(&parent).ok_or(VfsError::NotFound)?;
            *dir.dentries.get(name).ok_or(VfsError::NotFound)?
        };
        // Replacing an existing destination?
        let replaced = {
            let ndir = inner.inodes.get(&new_parent).ok_or(VfsError::NotFound)?;
            if !ndir.attr.is_dir() {
                return Err(VfsError::NotDir);
            }
            match ndir.dentries.get(new_name) {
                Some(&(existing, ex_dir)) => {
                    if ex_dir {
                        let exi = inner.inodes.get(&existing).ok_or(VfsError::Stale)?;
                        if !exi.dentries.is_empty() {
                            return Err(VfsError::NotEmpty);
                        }
                    }
                    Some(existing)
                }
                None => None,
            }
        };
        // Add to the new parent first, then remove from the old: a crash
        // between the two leaves the file reachable from both names (never
        // lost). Real NOVA uses a small journal here; we document the
        // weaker-but-safe ordering instead.
        let add = LogEntry::DentryAdd {
            child_ino: child,
            is_dir,
            name: new_name.to_string(),
        };
        let mut dummy = PageAllocator::new(0, 0);
        Self::apply_entry(
            inner.inodes.get_mut(&new_parent).expect("checked"),
            &add,
            &mut dummy,
            false,
        );
        self.append_log(&mut inner, new_parent, &[add])?;
        let del = LogEntry::DentryDel {
            name: name.to_string(),
        };
        Self::apply_entry(
            inner.inodes.get_mut(&parent).expect("checked"),
            &del,
            &mut dummy,
            false,
        );
        self.append_log(&mut inner, parent, &[del])?;
        if let Some(existing) = replaced {
            if existing != child {
                self.destroy_inode(&mut inner, existing)?;
            }
        }
        Ok(())
    }

    fn readdir(&self, ino: InodeNo) -> VfsResult<Vec<DirEntry>> {
        self.charge_sw();
        let inner = self.inner.lock();
        let dir = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
        if !dir.attr.is_dir() {
            return Err(VfsError::NotDir);
        }
        Ok(dir
            .dentries
            .iter()
            .map(|(name, &(child, is_dir))| DirEntry {
                name: name.clone(),
                ino: child,
                kind: if is_dir {
                    FileType::Directory
                } else {
                    FileType::Regular
                },
            })
            .collect())
    }

    fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> VfsResult<usize> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        let inode = inner.inodes.get_mut(&ino).ok_or(VfsError::NotFound)?;
        if inode.attr.is_dir() {
            return Err(VfsError::IsDir);
        }
        if off >= inode.attr.size {
            return Ok(0);
        }
        let n = buf.len().min((inode.attr.size - off) as usize);
        // Read extent-by-extent straight from PM (DAX); holes read zeros.
        let mut done = 0usize;
        while done < n {
            let pos = off + done as u64;
            let page = pos / PAGE;
            let in_page = pos % PAGE;
            let chunk = ((PAGE - in_page) as usize).min(n - done);
            match inode.extents.get(page) {
                Some(Linear(dp)) => {
                    self.dev
                        .read(dp * PAGE + in_page, &mut buf[done..done + chunk])?;
                }
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
        }
        inode.attr.atime_ns = now; // relatime-style, DRAM only
        Ok(n)
    }

    fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> VfsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        {
            let inode = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
            if inode.attr.is_dir() {
                return Err(VfsError::IsDir);
            }
        }
        let len = data.len() as u64;
        let first_page = off / PAGE;
        let last_page = (off + len - 1) / PAGE;
        let n_pages = last_page - first_page + 1;
        let new_size = {
            let inode = &inner.inodes[&ino];
            inode.attr.size.max(off + len)
        };
        // Copy-on-write: allocate fresh pages, merge partial head/tail
        // content, write via DAX, flush, then commit log entries.
        let runs = inner.alloc.alloc(n_pages)?;
        let mut entries: Vec<LogEntry> = Vec::with_capacity(runs.len());
        let mut run_file_page = first_page;
        for (dp_start, run_len) in &runs {
            let mut blob = vec![0u8; (*run_len * PAGE) as usize];
            for i in 0..*run_len {
                let fp = run_file_page + i;
                let page_buf = &mut blob[(i * PAGE) as usize..((i + 1) * PAGE) as usize];
                let page_start_byte = fp * PAGE;
                let page_end_byte = page_start_byte + PAGE;
                let w_start = off.max(page_start_byte);
                let w_end = (off + len).min(page_end_byte);
                let full_overwrite = w_start == page_start_byte && w_end == page_end_byte;
                if !full_overwrite {
                    let inode = &inner.inodes[&ino];
                    self.read_page(inode, fp, page_buf)?;
                }
                page_buf[(w_start - page_start_byte) as usize..(w_end - page_start_byte) as usize]
                    .copy_from_slice(&data[(w_start - off) as usize..(w_end - off) as usize]);
            }
            self.dev.write(dp_start * PAGE, &blob)?;
            self.dev.flush_range(dp_start * PAGE, *run_len * PAGE);
            entries.push(LogEntry::Write {
                file_page: run_file_page,
                n_pages: *run_len,
                data_page: *dp_start,
                new_size,
                mtime_ns: now,
            });
            run_file_page += run_len;
        }
        // Free the pages this write displaces and apply to memory.
        {
            let mut displaced: Vec<(u64, u64)> = Vec::new();
            let inode = inner.inodes.get_mut(&ino).expect("present");
            for e in inode.extents.overlapping(first_page, n_pages) {
                displaced.push((e.value.0, e.len));
                inode.dead_entries += 1;
            }
            for e in &entries {
                if let LogEntry::Write {
                    file_page,
                    n_pages,
                    data_page,
                    ..
                } = e
                {
                    inode
                        .extents
                        .insert(*file_page, *n_pages, Linear(*data_page));
                    inode.live_entries += 1;
                }
            }
            inode.attr.size = new_size;
            inode.attr.mtime_ns = now;
            inode.attr.blocks_bytes = inode.extents.covered() * PAGE;
            for (s, l) in displaced {
                inner.alloc.free_run(s, l);
            }
        }
        self.append_log(&mut inner, ino, &entries)?;
        if inner.inodes[&ino].wants_cleaning() {
            self.clean_log(&mut inner, ino)?;
        }
        Ok(data.len())
    }

    fn punch_hole(&self, ino: InodeNo, off: u64, len: u64) -> VfsResult<()> {
        if len == 0 {
            return Ok(());
        }
        self.charge_sw();
        let mut inner = self.inner.lock();
        {
            let inode = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
            if inode.attr.is_dir() {
                return Err(VfsError::IsDir);
            }
        }
        let end = off + len;
        let first_full = off.div_ceil(PAGE);
        let last_full = end / PAGE; // exclusive
                                    // Zero partial edges in place.
        let zero_edge = |byte_off: u64, byte_len: u64, inner: &mut Inner| -> VfsResult<()> {
            if byte_len == 0 {
                return Ok(());
            }
            let inode = &inner.inodes[&ino];
            if let Some(Linear(dp)) = inode.extents.get(byte_off / PAGE) {
                let in_page = byte_off % PAGE;
                let zeros = vec![0u8; byte_len as usize];
                self.dev.write(dp * PAGE + in_page, &zeros)?;
                self.dev.flush_range(dp * PAGE + in_page, byte_len);
            }
            Ok(())
        };
        let head_end = end.min(first_full * PAGE);
        if off < head_end {
            zero_edge(off, head_end - off, &mut inner)?;
        }
        let tail_start = (last_full * PAGE).max(off);
        if tail_start < end && tail_start >= head_end {
            zero_edge(tail_start, end - tail_start, &mut inner)?;
        }
        if last_full > first_full {
            let unmap = LogEntry::Unmap {
                file_page: first_full,
                n_pages: last_full - first_full,
            };
            {
                let mut displaced: Vec<(u64, u64)> = Vec::new();
                let inode = inner.inodes.get_mut(&ino).expect("present");
                for e in inode
                    .extents
                    .overlapping(first_full, last_full - first_full)
                {
                    displaced.push((e.value.0, e.len));
                    inode.dead_entries += 1;
                }
                inode.extents.remove(first_full, last_full - first_full);
                inode.live_entries += 1;
                inode.attr.blocks_bytes = inode.extents.covered() * PAGE;
                for (s, l) in displaced {
                    inner.alloc.free_run(s, l);
                }
            }
            self.append_log(&mut inner, ino, &[unmap])?;
        }
        Ok(())
    }

    fn next_data(&self, ino: InodeNo, off: u64) -> VfsResult<Option<(u64, u64)>> {
        self.charge_sw();
        let inner = self.inner.lock();
        let inode = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
        let size = inode.attr.size;
        if off >= size {
            return Ok(None);
        }
        match inode.extents.next_mapped(off / PAGE) {
            Some(e) => {
                let start = (e.start * PAGE).max(off);
                let end = ((e.start + e.len) * PAGE).min(size);
                if start >= size {
                    return Ok(None);
                }
                Ok(Some((start, end - start)))
            }
            None => Ok(None),
        }
    }

    fn fsync(&self, ino: InodeNo) -> VfsResult<()> {
        // NOVA commits synchronously: every mutation is already durable.
        self.charge_sw();
        let inner = self.inner.lock();
        if !inner.inodes.contains_key(&ino) {
            return Err(VfsError::NotFound);
        }
        Ok(())
    }

    fn sync(&self) -> VfsResult<()> {
        self.charge_sw();
        Ok(())
    }

    fn statfs(&self) -> VfsResult<StatFs> {
        let inner = self.inner.lock();
        Ok(StatFs {
            total_bytes: inner.alloc.total_pages() * PAGE,
            free_bytes: inner.alloc.free_pages() * PAGE,
            inodes: inner.inodes.len() as u64,
            block_size: PAGE as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{pmem, VirtualClock};
    use tvfs::ROOT_INO;

    fn fresh_fs() -> NovaFs {
        let dev = Device::with_profile(pmem(), 256 << 20, VirtualClock::new());
        NovaFs::format(dev, NovaOptions::default()).unwrap()
    }

    fn mk_file(fs: &NovaFs, name: &str) -> FileAttr {
        fs.create(ROOT_INO, name, FileType::Regular, 0o644).unwrap()
    }

    #[test]
    fn create_lookup_getattr() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "f");
        assert_eq!(fs.lookup(ROOT_INO, "f").unwrap().ino, a.ino);
        assert_eq!(fs.getattr(a.ino).unwrap().size, 0);
        assert_eq!(fs.lookup(ROOT_INO, "nope").unwrap_err(), VfsError::NotFound);
    }

    #[test]
    fn duplicate_create_rejected() {
        let fs = fresh_fs();
        mk_file(&fs, "f");
        assert_eq!(
            fs.create(ROOT_INO, "f", FileType::Regular, 0o644)
                .unwrap_err(),
            VfsError::Exists
        );
    }

    #[test]
    fn write_read_roundtrip_page_spanning() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "f");
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        assert_eq!(fs.write(a.ino, 100, &data).unwrap(), data.len());
        let mut buf = vec![0u8; data.len()];
        assert_eq!(fs.read(a.ino, 100, &mut buf).unwrap(), data.len());
        assert_eq!(buf, data);
        // Size is off + len.
        assert_eq!(fs.getattr(a.ino).unwrap().size, 100 + data.len() as u64);
    }

    #[test]
    fn sparse_write_reads_zero_holes() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "f");
        fs.write(a.ino, 100 * PAGE, b"end").unwrap();
        let mut buf = vec![0xAAu8; 16];
        fs.read(a.ino, 50 * PAGE, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; 16]);
        // Allocated bytes far less than logical size.
        let attr = fs.getattr(a.ino).unwrap();
        assert_eq!(attr.size, 100 * PAGE + 3);
        assert_eq!(attr.blocks_bytes, PAGE);
    }

    #[test]
    fn overwrite_is_cow_and_frees_old_pages() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "f");
        let before = fs.statfs().unwrap().free_bytes;
        fs.write(a.ino, 0, &vec![1u8; 4096 * 4]).unwrap();
        fs.write(a.ino, 0, &vec![2u8; 4096 * 4]).unwrap();
        fs.write(a.ino, 0, &vec![3u8; 4096 * 4]).unwrap();
        let mut buf = vec![0u8; 4096 * 4];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 3));
        let after = fs.statfs().unwrap().free_bytes;
        // Only 4 data pages + O(1) log pages consumed, not 12 pages.
        assert!(
            before - after <= 6 * PAGE,
            "leaked {} bytes",
            before - after
        );
    }

    #[test]
    fn partial_page_overwrite_preserves_rest() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "f");
        fs.write(a.ino, 0, &vec![7u8; 4096]).unwrap();
        fs.write(a.ino, 1000, b"XYZ").unwrap();
        let mut buf = vec![0u8; 4096];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert_eq!(buf[999], 7);
        assert_eq!(&buf[1000..1003], b"XYZ");
        assert_eq!(buf[1003], 7);
    }

    #[test]
    fn read_past_eof_returns_zero_len() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "f");
        fs.write(a.ino, 0, b"abc").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(fs.read(a.ino, 3, &mut buf).unwrap(), 0);
        assert_eq!(fs.read(a.ino, 100, &mut buf).unwrap(), 0);
        // Short read at EOF.
        assert_eq!(fs.read(a.ino, 1, &mut buf).unwrap(), 2);
    }

    #[test]
    fn truncate_shrink_then_extend_reads_zeros() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "f");
        fs.write(a.ino, 0, &vec![9u8; 8192]).unwrap();
        fs.setattr(a.ino, &SetAttr::truncate(1000)).unwrap();
        assert_eq!(fs.getattr(a.ino).unwrap().size, 1000);
        fs.setattr(a.ino, &SetAttr::truncate(8192)).unwrap();
        let mut buf = vec![0u8; 8192];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert!(buf[..1000].iter().all(|&b| b == 9));
        assert!(
            buf[1000..].iter().all(|&b| b == 0),
            "stale bytes after re-extend"
        );
    }

    #[test]
    fn punch_hole_zeroes_and_deallocates() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "f");
        fs.write(a.ino, 0, &vec![5u8; 4 * 4096]).unwrap();
        let blocks_before = fs.getattr(a.ino).unwrap().blocks_bytes;
        fs.punch_hole(a.ino, 4096, 2 * 4096).unwrap();
        let mut buf = vec![0xFFu8; 4 * 4096];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert!(buf[..4096].iter().all(|&b| b == 5));
        assert!(buf[4096..3 * 4096].iter().all(|&b| b == 0));
        assert!(buf[3 * 4096..].iter().all(|&b| b == 5));
        assert_eq!(
            fs.getattr(a.ino).unwrap().blocks_bytes,
            blocks_before - 2 * PAGE
        );
        // Size unchanged.
        assert_eq!(fs.getattr(a.ino).unwrap().size, 4 * 4096);
    }

    #[test]
    fn punch_hole_unaligned_edges() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "f");
        fs.write(a.ino, 0, &vec![5u8; 3 * 4096]).unwrap();
        fs.punch_hole(a.ino, 100, 4096 + 200).unwrap();
        let mut buf = vec![0u8; 3 * 4096];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert!(buf[..100].iter().all(|&b| b == 5));
        assert!(buf[100..100 + 4096 + 200].iter().all(|&b| b == 0));
        assert!(buf[100 + 4096 + 200..].iter().all(|&b| b == 5));
    }

    #[test]
    fn next_data_finds_extents() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "f");
        fs.write(a.ino, 10 * PAGE, &vec![1u8; 4096]).unwrap();
        let (start, len) = fs.next_data(a.ino, 0).unwrap().unwrap();
        assert_eq!(start, 10 * PAGE);
        assert_eq!(len, PAGE);
        assert_eq!(fs.next_data(a.ino, 11 * PAGE).unwrap(), None);
    }

    #[test]
    fn mkdir_and_nested_files() {
        let fs = fresh_fs();
        let d = fs
            .create(ROOT_INO, "dir", FileType::Directory, 0o755)
            .unwrap();
        let f = fs.create(d.ino, "inner", FileType::Regular, 0o644).unwrap();
        assert_eq!(fs.lookup(d.ino, "inner").unwrap().ino, f.ino);
        let names: Vec<String> = fs
            .readdir(ROOT_INO)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["dir"]);
    }

    #[test]
    fn unlink_nonempty_dir_rejected() {
        let fs = fresh_fs();
        let d = fs
            .create(ROOT_INO, "dir", FileType::Directory, 0o755)
            .unwrap();
        fs.create(d.ino, "f", FileType::Regular, 0o644).unwrap();
        assert_eq!(fs.unlink(ROOT_INO, "dir").unwrap_err(), VfsError::NotEmpty);
        fs.unlink(d.ino, "f").unwrap();
        fs.unlink(ROOT_INO, "dir").unwrap();
    }

    #[test]
    fn unlink_frees_space() {
        let fs = fresh_fs();
        // Warm the root directory's log so its page allocation does not
        // perturb the measurement.
        mk_file(&fs, "warm");
        fs.unlink(ROOT_INO, "warm").unwrap();
        let before = fs.statfs().unwrap().free_bytes;
        let a = mk_file(&fs, "f");
        fs.write(a.ino, 0, &vec![1u8; 1 << 20]).unwrap();
        assert!(fs.statfs().unwrap().free_bytes < before);
        fs.unlink(ROOT_INO, "f").unwrap();
        assert_eq!(fs.statfs().unwrap().free_bytes, before);
    }

    #[test]
    fn rename_moves_and_replaces() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "a");
        fs.write(a.ino, 0, b"AAA").unwrap();
        let b = mk_file(&fs, "b");
        fs.write(b.ino, 0, b"BBB").unwrap();
        fs.rename(ROOT_INO, "a", ROOT_INO, "b").unwrap();
        assert_eq!(fs.lookup(ROOT_INO, "a").unwrap_err(), VfsError::NotFound);
        let got = fs.lookup(ROOT_INO, "b").unwrap();
        assert_eq!(got.ino, a.ino);
        let mut buf = [0u8; 3];
        fs.read(got.ino, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"AAA");
    }

    #[test]
    fn remount_recovers_files_and_dirs() {
        let clock = VirtualClock::new();
        let dev = Device::with_profile(pmem(), 256 << 20, clock);
        let data: Vec<u8> = (0..20_000).map(|i| (i % 241) as u8).collect();
        let ino;
        {
            let fs = NovaFs::format(dev.clone(), NovaOptions::default()).unwrap();
            let d = fs
                .create(ROOT_INO, "dir", FileType::Directory, 0o755)
                .unwrap();
            let f = fs.create(d.ino, "file", FileType::Regular, 0o640).unwrap();
            ino = f.ino;
            fs.write(f.ino, 123, &data).unwrap();
        }
        let fs2 = NovaFs::mount(dev, NovaOptions::default()).unwrap();
        let d = fs2.lookup(ROOT_INO, "dir").unwrap();
        let f = fs2.lookup(d.ino, "file").unwrap();
        assert_eq!(f.ino, ino);
        assert_eq!(f.size, 123 + data.len() as u64);
        let mut buf = vec![0u8; data.len()];
        fs2.read(f.ino, 123, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn crash_uncommitted_write_is_invisible_but_old_data_survives() {
        let clock = VirtualClock::new();
        let dev = Device::with_profile(pmem(), 256 << 20, clock);
        let ino;
        {
            let fs = NovaFs::format(dev.clone(), NovaOptions::default()).unwrap();
            let f = mk_file(&fs, "f");
            ino = f.ino;
            fs.write(f.ino, 0, &vec![1u8; 8192]).unwrap();
            // Everything NOVA does is synchronous, so this is durable.
        }
        dev.crash();
        let fs2 = NovaFs::mount(dev, NovaOptions::default()).unwrap();
        let f = fs2.lookup(ROOT_INO, "f").unwrap();
        assert_eq!(f.ino, ino);
        assert_eq!(f.size, 8192);
        let mut buf = vec![0u8; 8192];
        fs2.read(f.ino, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
    }

    #[test]
    fn remount_reclaims_allocator_correctly() {
        let dev = Device::with_profile(pmem(), 64 << 20, VirtualClock::new());
        let free_after_write;
        {
            let fs = NovaFs::format(dev.clone(), NovaOptions::default()).unwrap();
            let f = mk_file(&fs, "f");
            fs.write(f.ino, 0, &vec![1u8; 1 << 20]).unwrap();
            free_after_write = fs.statfs().unwrap().free_bytes;
        }
        let fs2 = NovaFs::mount(dev, NovaOptions::default()).unwrap();
        assert_eq!(fs2.statfs().unwrap().free_bytes, free_after_write);
        // And the recovered file is still writable without corruption.
        let f = fs2.lookup(ROOT_INO, "f").unwrap();
        fs2.write(f.ino, 0, &vec![2u8; 4096]).unwrap();
        let mut buf = vec![0u8; 8192];
        fs2.read(f.ino, 0, &mut buf).unwrap();
        assert!(buf[..4096].iter().all(|&b| b == 2));
        assert!(buf[4096..].iter().all(|&b| b == 1));
    }

    #[test]
    fn log_cleaning_bounds_log_growth() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "f");
        // Hammer the same page; without cleaning the log would hold
        // hundreds of entries and pages.
        for i in 0..500u32 {
            fs.write(a.ino, 0, &i.to_le_bytes()).unwrap();
        }
        let inner = fs.inner.lock();
        let inode = &inner.inodes[&a.ino];
        assert!(
            inode.log_pages.len() < 10,
            "log should be cleaned, has {} pages",
            inode.log_pages.len()
        );
        drop(inner);
        let mut buf = [0u8; 4];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf), 499);
    }

    #[test]
    fn out_of_space_reports_nospace() {
        let dev = Device::with_profile(pmem(), 2 << 20, VirtualClock::new());
        let fs = NovaFs::format(
            dev,
            NovaOptions {
                n_inodes: 16,
                ..Default::default()
            },
        )
        .unwrap();
        let a = mk_file(&fs, "f");
        let big = vec![0u8; 4 << 20];
        assert_eq!(fs.write(a.ino, 0, &big).unwrap_err(), VfsError::NoSpace);
    }

    #[test]
    fn fsync_is_noop_but_validates_ino() {
        let fs = fresh_fs();
        let a = mk_file(&fs, "f");
        fs.fsync(a.ino).unwrap();
        assert_eq!(fs.fsync(999).unwrap_err(), VfsError::NotFound);
    }

    #[test]
    fn mount_gc_reclaims_orphan_inodes() {
        let dev = Device::with_profile(pmem(), 64 << 20, VirtualClock::new());
        {
            let fs = NovaFs::format(dev.clone(), NovaOptions::default()).unwrap();
            mk_file(&fs, "keep");
            // Simulate the crash window in create(): a valid child slot
            // whose parent dentry never committed.
            let slot = InodeSlot {
                valid: true,
                kind_dir: false,
                ..Default::default()
            };
            fs.write_slot(77, &slot).unwrap();
        }
        let fs2 = NovaFs::mount(dev, NovaOptions::default()).unwrap();
        assert!(fs2.lookup(ROOT_INO, "keep").is_ok());
        assert!(fs2.getattr(77).is_err(), "orphan inode must be GC'd");
    }
}
