//! In-DRAM inode state — a cache of the on-device log.

use std::collections::BTreeMap;

use tvfs::{FileAttr, Linear, RangeMap};

use crate::layout::InodeSlot;

/// In-memory representation of one inode.
///
/// Everything here is reconstructible from the log; see
/// [`crate::NovaFs::mount`].
#[derive(Debug, Clone)]
pub struct Inode {
    /// Cached attributes (atime is maintained lazily, in DRAM only, as with
    /// `relatime`).
    pub attr: FileAttr,
    /// The persistent slot (log head/tail pointers).
    pub slot: InodeSlot,
    /// File page → device page map.
    pub extents: RangeMap<Linear>,
    /// Directory entries (`name → (ino, is_dir)`), directories only.
    pub dentries: BTreeMap<String, (u64, bool)>,
    /// Committed log entries still contributing state.
    pub live_entries: u64,
    /// Committed log entries superseded by later ones (cleaning heuristic).
    pub dead_entries: u64,
    /// Log pages owned by this inode, for cleaning and deletion.
    pub log_pages: Vec<u64>,
}

impl Inode {
    /// Fresh in-memory inode from attributes and slot.
    pub fn new(attr: FileAttr, slot: InodeSlot) -> Self {
        Inode {
            attr,
            slot,
            extents: RangeMap::new(),
            dentries: BTreeMap::new(),
            live_entries: 0,
            dead_entries: 0,
            log_pages: Vec::new(),
        }
    }

    /// Whether the log-cleaning threshold is met.
    pub fn wants_cleaning(&self) -> bool {
        self.dead_entries > 64 && self.dead_entries > self.live_entries
    }
}
