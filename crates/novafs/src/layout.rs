//! On-device layout constants and codecs.
//!
//! ```text
//! page 0              superblock
//! pages 1..=IT        inode table (INODE_SLOT bytes per inode)
//! pages IT+1..        log pages and data pages, allocated on demand
//! ```

use bytes::{Buf, BufMut};
use tvfs::{VfsError, VfsResult};

/// File-system page size.
pub const PAGE: u64 = 4096;

/// Superblock magic ("NOVAFSIM").
pub const MAGIC: u64 = 0x4e4f_5641_4653_494d;

/// Bytes per inode-table slot.
pub const INODE_SLOT: u64 = 64;

/// Inode numbers start at the VFS root constant.
pub const FIRST_INO: u64 = tvfs::ROOT_INO;

/// Fixed fields of the superblock (page 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Magic number, [`MAGIC`].
    pub magic: u64,
    /// Total device capacity this FS was formatted with.
    pub capacity: u64,
    /// Number of inode slots in the inode table.
    pub n_inodes: u64,
}

impl Superblock {
    /// Serialized size in bytes.
    pub const SIZE: usize = 24;

    /// Encodes into a buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::SIZE);
        b.put_u64_le(self.magic);
        b.put_u64_le(self.capacity);
        b.put_u64_le(self.n_inodes);
        b
    }

    /// Decodes, validating the magic.
    pub fn decode(mut raw: &[u8]) -> VfsResult<Self> {
        if raw.len() < Self::SIZE {
            return Err(VfsError::Io("short superblock".into()));
        }
        let sb = Superblock {
            magic: raw.get_u64_le(),
            capacity: raw.get_u64_le(),
            n_inodes: raw.get_u64_le(),
        };
        if sb.magic != MAGIC {
            return Err(VfsError::Io("bad novafs magic".into()));
        }
        Ok(sb)
    }

    /// Number of pages the inode table occupies.
    pub fn inode_table_pages(&self) -> u64 {
        (self.n_inodes * INODE_SLOT).div_ceil(PAGE)
    }

    /// First page available to the allocator (after superblock + table).
    pub fn first_free_page(&self) -> u64 {
        1 + self.inode_table_pages()
    }

    /// Device offset of inode slot `ino`.
    pub fn inode_slot_off(&self, ino: u64) -> u64 {
        PAGE + (ino - FIRST_INO) * INODE_SLOT
    }
}

/// Persistent inode-table slot: existence plus the log-head/tail pointers.
///
/// The `(tail_page, tail_off)` pair is the commit point of the whole inode:
/// log entries at or past the tail are not part of the file system state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InodeSlot {
    /// Slot holds a live inode.
    pub valid: bool,
    /// 0 = regular file, 1 = directory.
    pub kind_dir: bool,
    /// First log page (0 = no log yet).
    pub log_head: u64,
    /// Page containing the committed log tail.
    pub tail_page: u64,
    /// Byte offset of the tail within `tail_page`.
    pub tail_off: u32,
}

impl InodeSlot {
    /// Serialized size (fits in [`INODE_SLOT`]).
    pub const SIZE: usize = 32;

    /// Encodes the slot.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::SIZE);
        b.put_u8(self.valid as u8);
        b.put_u8(self.kind_dir as u8);
        b.put_u16_le(0);
        b.put_u32_le(self.tail_off);
        b.put_u64_le(self.log_head);
        b.put_u64_le(self.tail_page);
        b.put_u64_le(0); // reserved
        b
    }

    /// Decodes a slot.
    pub fn decode(mut raw: &[u8]) -> VfsResult<Self> {
        if raw.len() < Self::SIZE {
            return Err(VfsError::Io("short inode slot".into()));
        }
        let valid = raw.get_u8() != 0;
        let kind_dir = raw.get_u8() != 0;
        raw.get_u16_le();
        let tail_off = raw.get_u32_le();
        let log_head = raw.get_u64_le();
        let tail_page = raw.get_u64_le();
        Ok(InodeSlot {
            valid,
            kind_dir,
            log_head,
            tail_page,
            tail_off,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock {
            magic: MAGIC,
            capacity: 1 << 30,
            n_inodes: 4096,
        };
        let enc = sb.encode();
        assert_eq!(Superblock::decode(&enc).unwrap(), sb);
    }

    #[test]
    fn superblock_bad_magic_rejected() {
        let sb = Superblock {
            magic: 0xdead,
            capacity: 1,
            n_inodes: 1,
        };
        assert!(Superblock::decode(&sb.encode()).is_err());
    }

    #[test]
    fn inode_table_sizing() {
        let sb = Superblock {
            magic: MAGIC,
            capacity: 1 << 30,
            n_inodes: 4096,
        };
        // 4096 inodes * 64 B = 64 pages.
        assert_eq!(sb.inode_table_pages(), 64);
        assert_eq!(sb.first_free_page(), 65);
        assert_eq!(sb.inode_slot_off(FIRST_INO), PAGE);
        assert_eq!(sb.inode_slot_off(FIRST_INO + 2), PAGE + 128);
    }

    #[test]
    fn inode_slot_roundtrip() {
        let s = InodeSlot {
            valid: true,
            kind_dir: true,
            log_head: 77,
            tail_page: 78,
            tail_off: 1234,
        };
        assert_eq!(InodeSlot::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn empty_slot_decodes_invalid() {
        let raw = [0u8; InodeSlot::SIZE];
        assert!(!InodeSlot::decode(&raw).unwrap().valid);
    }
}
