//! `novafs` — a NOVA-like log-structured file system for persistent memory.
//!
//! Models the design of NOVA (Xu & Swanson, FAST '16), the file system the
//! paper mounts on its Optane PMem tier. The properties the paper leans on
//! are reproduced faithfully:
//!
//! * **Per-inode logs.** Every inode owns a chain of log pages; data and
//!   metadata updates append log entries. There is no central journal, so
//!   there is no double write of data — the contrast with Strata's
//!   log-then-digest design that §3.1 of the paper measures.
//! * **DAX data path.** File data is written directly to persistent-memory
//!   pages (copy-on-write), then persisted with cache-line flushes
//!   ([`simdev::Device::flush_range`], the CLFLUSH model), then committed by
//!   an 8-byte atomic log-tail update.
//! * **Recovery by log replay.** Mounting an existing device rebuilds all
//!   in-DRAM indexes (extent maps, the free-page allocator, directories) by
//!   scanning the inode table and walking each log up to its committed
//!   tail. Entries past the tail — e.g. half-written before a crash — are
//!   ignored, giving atomic operations.
//!
//! In-DRAM state (extent maps, allocator) is a cache of the log; the log on
//! the device is the single source of truth.

mod fs;
mod inode;
mod layout;
mod log;
mod palloc;

pub use fs::{NovaFs, NovaOptions};
pub use layout::PAGE;
