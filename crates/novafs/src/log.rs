//! Per-inode log entries and the log-page chain.
//!
//! A log is a chain of pages. Each page starts with an 8-byte `next` page
//! pointer; entries follow. Entries are self-delimiting (`[type u8]
//! [len u16] [payload]`); type 0 marks end-of-page padding. The committed
//! region of a log is everything from `(head, 8)` up to the inode slot's
//! `(tail_page, tail_off)` — entries written but not yet covered by a tail
//! update are invisible, which is what makes operations atomic across a
//! crash.

use bytes::{Buf, BufMut};
use tvfs::{VfsError, VfsResult};

use crate::layout::PAGE;

/// Byte offset of the first entry in a log page (after the `next` pointer).
pub const LOG_DATA_START: u32 = 8;

/// Maximum payload any entry may have (names bound this).
#[allow(dead_code)]
pub const MAX_ENTRY: usize = 512;

/// One committed, durable log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEntry {
    /// A data write: `n_pages` file pages starting at `file_page` now live
    /// in device pages starting at `data_page`.
    Write {
        /// First file page covered.
        file_page: u64,
        /// Run length in pages.
        n_pages: u64,
        /// First device page holding the data.
        data_page: u64,
        /// New logical file size after this write.
        new_size: u64,
        /// Modification timestamp.
        mtime_ns: u64,
    },
    /// Explicit attribute update.
    Attr {
        /// New logical size.
        size: u64,
        /// Permission bits.
        mode: u32,
        /// Owner.
        uid: u32,
        /// Group.
        gid: u32,
        /// Access time.
        atime_ns: u64,
        /// Modification time.
        mtime_ns: u64,
        /// Change time.
        ctime_ns: u64,
    },
    /// Deallocate `[file_page, file_page + n_pages)` (hole punch or
    /// truncate tail).
    Unmap {
        /// First file page unmapped.
        file_page: u64,
        /// Run length in pages.
        n_pages: u64,
    },
    /// Directory entry added: `name` → `child_ino`.
    DentryAdd {
        /// Inode the new entry points at.
        child_ino: u64,
        /// The child is a directory.
        is_dir: bool,
        /// Entry name.
        name: String,
    },
    /// Directory entry removed.
    DentryDel {
        /// Entry name.
        name: String,
    },
}

const T_WRITE: u8 = 1;
const T_ATTR: u8 = 2;
const T_UNMAP: u8 = 3;
const T_DADD: u8 = 4;
const T_DDEL: u8 = 5;

impl LogEntry {
    /// Serializes to `[type][len u16][payload]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            LogEntry::Write {
                file_page,
                n_pages,
                data_page,
                new_size,
                mtime_ns,
            } => {
                p.put_u64_le(*file_page);
                p.put_u64_le(*n_pages);
                p.put_u64_le(*data_page);
                p.put_u64_le(*new_size);
                p.put_u64_le(*mtime_ns);
            }
            LogEntry::Attr {
                size,
                mode,
                uid,
                gid,
                atime_ns,
                mtime_ns,
                ctime_ns,
            } => {
                p.put_u64_le(*size);
                p.put_u32_le(*mode);
                p.put_u32_le(*uid);
                p.put_u32_le(*gid);
                p.put_u64_le(*atime_ns);
                p.put_u64_le(*mtime_ns);
                p.put_u64_le(*ctime_ns);
            }
            LogEntry::Unmap { file_page, n_pages } => {
                p.put_u64_le(*file_page);
                p.put_u64_le(*n_pages);
            }
            LogEntry::DentryAdd {
                child_ino,
                is_dir,
                name,
            } => {
                p.put_u64_le(*child_ino);
                p.put_u8(*is_dir as u8);
                p.put_u16_le(name.len() as u16);
                p.extend_from_slice(name.as_bytes());
            }
            LogEntry::DentryDel { name } => {
                p.put_u16_le(name.len() as u16);
                p.extend_from_slice(name.as_bytes());
            }
        }
        let ty = match self {
            LogEntry::Write { .. } => T_WRITE,
            LogEntry::Attr { .. } => T_ATTR,
            LogEntry::Unmap { .. } => T_UNMAP,
            LogEntry::DentryAdd { .. } => T_DADD,
            LogEntry::DentryDel { .. } => T_DDEL,
        };
        let mut out = Vec::with_capacity(3 + p.len());
        out.put_u8(ty);
        out.put_u16_le(p.len() as u16);
        out.extend_from_slice(&p);
        out
    }

    /// Decodes one entry from the front of `raw`, returning it and the
    /// bytes consumed. Returns `Ok(None)` on an end-of-page marker
    /// (type 0).
    pub fn decode(raw: &[u8]) -> VfsResult<Option<(LogEntry, usize)>> {
        if raw.len() < 3 {
            return Ok(None);
        }
        let mut r = raw;
        let ty = r.get_u8();
        if ty == 0 {
            return Ok(None);
        }
        let len = r.get_u16_le() as usize;
        if r.len() < len {
            return Err(VfsError::Io("truncated log entry".into()));
        }
        let mut p = &r[..len];
        let entry = match ty {
            T_WRITE => LogEntry::Write {
                file_page: p.get_u64_le(),
                n_pages: p.get_u64_le(),
                data_page: p.get_u64_le(),
                new_size: p.get_u64_le(),
                mtime_ns: p.get_u64_le(),
            },
            T_ATTR => LogEntry::Attr {
                size: p.get_u64_le(),
                mode: p.get_u32_le(),
                uid: p.get_u32_le(),
                gid: p.get_u32_le(),
                atime_ns: p.get_u64_le(),
                mtime_ns: p.get_u64_le(),
                ctime_ns: p.get_u64_le(),
            },
            T_UNMAP => LogEntry::Unmap {
                file_page: p.get_u64_le(),
                n_pages: p.get_u64_le(),
            },
            T_DADD => {
                let child_ino = p.get_u64_le();
                let is_dir = p.get_u8() != 0;
                let nlen = p.get_u16_le() as usize;
                let name = String::from_utf8(p[..nlen].to_vec())
                    .map_err(|_| VfsError::Io("bad dentry name".into()))?;
                LogEntry::DentryAdd {
                    child_ino,
                    is_dir,
                    name,
                }
            }
            T_DDEL => {
                let nlen = p.get_u16_le() as usize;
                let name = String::from_utf8(p[..nlen].to_vec())
                    .map_err(|_| VfsError::Io("bad dentry name".into()))?;
                LogEntry::DentryDel { name }
            }
            other => return Err(VfsError::Io(format!("unknown log entry type {other}"))),
        };
        Ok(Some((entry, 3 + len)))
    }

    /// Encoded size in bytes.
    #[allow(dead_code)]
    pub fn encoded_len(&self) -> u32 {
        self.encode().len() as u32
    }
}

/// Whether an entry of `len` bytes fits in a page at offset `off`.
pub fn fits_in_page(off: u32, len: u32) -> bool {
    u64::from(off) + u64::from(len) <= PAGE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<LogEntry> {
        vec![
            LogEntry::Write {
                file_page: 3,
                n_pages: 2,
                data_page: 99,
                new_size: 20_000,
                mtime_ns: 123,
            },
            LogEntry::Attr {
                size: 5,
                mode: 0o644,
                uid: 1,
                gid: 2,
                atime_ns: 10,
                mtime_ns: 20,
                ctime_ns: 30,
            },
            LogEntry::Unmap {
                file_page: 1,
                n_pages: 7,
            },
            LogEntry::DentryAdd {
                child_ino: 42,
                is_dir: true,
                name: "subdir".into(),
            },
            LogEntry::DentryDel {
                name: "gone.txt".into(),
            },
        ]
    }

    #[test]
    fn entries_roundtrip() {
        for e in samples() {
            let enc = e.encode();
            let (dec, n) = LogEntry::decode(&enc).unwrap().unwrap();
            assert_eq!(dec, e);
            assert_eq!(n, enc.len());
        }
    }

    #[test]
    fn sequential_entries_decode_in_order() {
        let mut buf = Vec::new();
        for e in samples() {
            buf.extend_from_slice(&e.encode());
        }
        let mut off = 0;
        let mut got = Vec::new();
        while let Some((e, n)) = LogEntry::decode(&buf[off..]).unwrap() {
            got.push(e);
            off += n;
        }
        assert_eq!(got, samples());
    }

    #[test]
    fn zero_type_is_end_marker() {
        let buf = [0u8; 16];
        assert_eq!(LogEntry::decode(&buf).unwrap(), None);
    }

    #[test]
    fn truncated_entry_is_error() {
        let enc = samples()[0].encode();
        assert!(LogEntry::decode(&enc[..enc.len() - 2]).is_err());
    }

    #[test]
    fn unknown_type_is_error() {
        let mut buf = vec![200u8];
        buf.put_u16_le(0);
        assert!(LogEntry::decode(&buf).is_err());
    }

    #[test]
    fn fits_in_page_boundary() {
        assert!(fits_in_page(8, (PAGE - 8) as u32));
        assert!(!fits_in_page(8, (PAGE - 7) as u32));
    }
}
