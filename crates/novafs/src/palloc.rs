//! In-DRAM page allocator.
//!
//! NOVA keeps its allocator in DRAM and rebuilds it during recovery by
//! scanning the logs; we do the same. Allocation state is therefore never
//! written to the device.

use std::collections::BTreeSet;

use tvfs::{VfsError, VfsResult};

/// Free-page allocator over a page range `[first, end)`.
#[derive(Debug)]
pub struct PageAllocator {
    free: BTreeSet<u64>,
    total: u64,
}

impl PageAllocator {
    /// Creates an allocator with all pages in `[first, end)` free.
    pub fn new(first: u64, end: u64) -> Self {
        PageAllocator {
            free: (first..end).collect(),
            total: end.saturating_sub(first),
        }
    }

    /// Marks `page` as in use (during recovery replay).
    pub fn reserve(&mut self, page: u64) {
        self.free.remove(&page);
    }

    /// Allocates `n` pages, contiguous if possible, otherwise any pages.
    /// Returns runs of `(start, len)`.
    pub fn alloc(&mut self, n: u64) -> VfsResult<Vec<(u64, u64)>> {
        if (self.free.len() as u64) < n {
            return Err(VfsError::NoSpace);
        }
        // Single-page fast path: lowest free page, no contiguity scan.
        if n == 1 {
            let p = *self.free.iter().next().expect("checked non-empty");
            self.free.remove(&p);
            return Ok(vec![(p, 1)]);
        }
        // First-fit scan for a contiguous run.
        if let Some(start) = self.find_contiguous(n) {
            for p in start..start + n {
                self.free.remove(&p);
            }
            return Ok(vec![(start, n)]);
        }
        // Fragmented: take pages in address order, coalescing runs.
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for _ in 0..n {
            let p = *self.free.iter().next().expect("checked above");
            self.free.remove(&p);
            match runs.last_mut() {
                Some((s, l)) if *s + *l == p => *l += 1,
                _ => runs.push((p, 1)),
            }
        }
        Ok(runs)
    }

    /// Allocates exactly one page.
    pub fn alloc_one(&mut self) -> VfsResult<u64> {
        Ok(self.alloc(1)?[0].0)
    }

    fn find_contiguous(&self, n: u64) -> Option<u64> {
        let mut run_start = None;
        let mut run_len = 0u64;
        for &p in &self.free {
            match run_start {
                Some(s) if s + run_len == p => {
                    run_len += 1;
                }
                _ => {
                    run_start = Some(p);
                    run_len = 1;
                }
            }
            if run_len == n {
                return Some(run_start.unwrap() + run_len - n);
            }
        }
        None
    }

    /// Returns pages to the free pool.
    pub fn free_run(&mut self, start: u64, len: u64) {
        for p in start..start + len {
            self.free.insert(p);
        }
    }

    /// Number of free pages.
    pub fn free_pages(&self) -> u64 {
        self.free.len() as u64
    }

    /// Total pages managed.
    pub fn total_pages(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_contiguous_when_possible() {
        let mut a = PageAllocator::new(10, 100);
        let runs = a.alloc(5).unwrap();
        assert_eq!(runs, vec![(10, 5)]);
        assert_eq!(a.free_pages(), 85);
    }

    #[test]
    fn alloc_fragmented_coalesces_runs() {
        let mut a = PageAllocator::new(0, 10);
        // Occupy evens: 0,2,4,6,8 → frees are 1,3,5,7,9.
        for p in [0, 2, 4, 6, 8] {
            a.reserve(p);
        }
        let runs = a.alloc(3).unwrap();
        assert_eq!(runs, vec![(1, 1), (3, 1), (5, 1)]);
    }

    #[test]
    fn exhaustion_is_nospace() {
        let mut a = PageAllocator::new(0, 4);
        a.alloc(4).unwrap();
        assert_eq!(a.alloc(1).unwrap_err(), VfsError::NoSpace);
    }

    #[test]
    fn free_returns_pages() {
        let mut a = PageAllocator::new(0, 4);
        let runs = a.alloc(4).unwrap();
        assert_eq!(a.free_pages(), 0);
        for (s, l) in runs {
            a.free_run(s, l);
        }
        assert_eq!(a.free_pages(), 4);
    }

    #[test]
    fn reserve_prevents_allocation() {
        let mut a = PageAllocator::new(0, 3);
        a.reserve(0);
        a.reserve(1);
        let runs = a.alloc(1).unwrap();
        assert_eq!(runs, vec![(2, 1)]);
    }

    #[test]
    fn contiguous_search_spans_gap_correctly() {
        let mut a = PageAllocator::new(0, 20);
        a.reserve(5); // free: 0..5, 6..20
        let runs = a.alloc(10).unwrap();
        assert_eq!(runs, vec![(6, 10)]);
    }
}
