//! The virtual clock all simulated components charge time against.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Virtual nanoseconds charged by *this* thread via any clock's
    /// [`VirtualClock::advance`]. The global clock sums all threads; this
    /// ledger lets a multi-threaded harness recover each worker's own
    /// service-time total and model N independent cores (wall-clock on
    /// ideal hardware = max over workers, not the global sum).
    static CHARGED_NS: Cell<u64> = const { Cell::new(0) };
}

/// A monotonically advancing virtual clock measured in nanoseconds.
///
/// Every simulated operation — a device transfer, a file-system software
/// path, a Mux dispatch — advances the clock by its service time. Single
/// driver threads therefore observe `elapsed = sum of service times`, which
/// is what the reproduction harness uses to compute latency and throughput
/// deterministically.
///
/// The clock is cheap to clone ([`Arc`] inside) and safe to share across
/// threads; concurrent tests advance it without coordination, trading exact
/// physical meaning for linearizable accounting.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now_ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Advances the clock by `ns` and returns the new time. The charge is
    /// also recorded in the calling thread's ledger (see
    /// [`VirtualClock::thread_charged_ns`]).
    pub fn advance(&self, ns: u64) -> u64 {
        CHARGED_NS.with(|c| c.set(c.get() + ns));
        self.now_ns.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Total virtual nanoseconds the calling thread has charged (against
    /// any clock) since the last [`VirtualClock::take_thread_charged_ns`].
    pub fn thread_charged_ns() -> u64 {
        CHARGED_NS.with(|c| c.get())
    }

    /// Returns and resets the calling thread's charge ledger. Workload
    /// engines call this at worker start and read
    /// [`VirtualClock::thread_charged_ns`] at the end to get that worker's
    /// service-time total in isolation.
    pub fn take_thread_charged_ns() -> u64 {
        CHARGED_NS.with(|c| c.replace(0))
    }

    /// Measures the virtual time elapsed while `f` runs.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> (R, u64) {
        let start = self.now_ns();
        let out = f();
        (out, self.now_ns().saturating_sub(start))
    }

    /// Resets the clock to zero.
    ///
    /// Only the benchmark harness calls this, between runs; components must
    /// never assume time moves backwards during a run.
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now_ns(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now_ns(), 15);
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now_ns(), 42);
    }

    #[test]
    fn time_measures_elapsed() {
        let c = VirtualClock::new();
        let (val, dt) = c.time(|| {
            c.advance(100);
            7
        });
        assert_eq!(val, 7);
        assert_eq!(dt, 100);
    }

    #[test]
    fn reset_zeroes() {
        let c = VirtualClock::new();
        c.advance(99);
        c.reset();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn thread_ledger_tracks_per_thread_charges() {
        let c = VirtualClock::new();
        VirtualClock::take_thread_charged_ns();
        c.advance(30);
        let c2 = c.clone();
        let other = std::thread::spawn(move || {
            VirtualClock::take_thread_charged_ns();
            c2.advance(70);
            VirtualClock::thread_charged_ns()
        })
        .join()
        .unwrap();
        assert_eq!(other, 70, "spawned thread sees only its own charges");
        assert_eq!(VirtualClock::thread_charged_ns(), 30);
        assert_eq!(c.now_ns(), 100, "global clock sums all threads");
        assert_eq!(VirtualClock::take_thread_charged_ns(), 30);
        assert_eq!(VirtualClock::thread_charged_ns(), 0);
    }

    #[test]
    fn concurrent_advances_all_counted() {
        let c = VirtualClock::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now_ns(), 8000);
    }
}
