//! Deterministic crash-point injection shared across a set of devices.
//!
//! A [`CrashPlan`] models whole-machine power loss at a precise point in the
//! device-operation stream. Every *mutating* device operation (`write`,
//! `flush`, `flush_range`) on a device carrying the plan increments a shared
//! counter; the operation that brings the counter to the plan's crash point
//! `k` "loses power":
//!
//! - the tripping device immediately rolls back its volatile write cache to
//!   the last-flushed image (exactly what [`crate::Device::crash`] does),
//! - if the tripping operation is a write and the plan has a
//!   [torn-tail](CrashPlan::with_torn_tail) configured, a deterministic
//!   prefix of that write — aligned to the configured sector boundary —
//!   still lands durably, modeling a torn sector write,
//! - the tripping operation and every subsequent read/write on any device
//!   sharing the plan fails with a "simulated power loss" I/O error, and
//!   subsequent flushes silently persist nothing.
//!
//! Because the plan is shared (cloned) across all devices of a stack, power
//! is lost machine-wide at one instant, and because the counter advances
//! only with device operations — never wall-clock time — replaying the same
//! workload with the same plan is fully deterministic. A *probe* run with a
//! plan whose crash point is unreachably large counts the total number of
//! mutating operations (`ops_seen`), which a harness then enumerates as
//! crash points `k = 1..=N`.

use std::sync::Arc;

use parking_lot::Mutex;

/// Torn-write configuration for the operation that trips the crash.
#[derive(Debug, Clone, Copy)]
pub struct TornTail {
    /// Sector boundary (bytes) the surviving prefix is aligned to. Must be
    /// non-zero; `1` allows arbitrary byte tears.
    pub boundary: u64,
    /// Seed for the deterministic choice of how much of the final write
    /// survives.
    pub seed: u64,
}

#[derive(Debug)]
struct State {
    /// Mutating operations observed so far across all carrying devices.
    counted: u64,
    /// Power has been lost.
    tripped: bool,
}

#[derive(Debug)]
struct Core {
    crash_at: u64,
    tear: Option<TornTail>,
    state: Mutex<State>,
}

/// A shared crash point: "lose power on the `k`-th mutating device
/// operation". Clone the plan onto every device of a stack (via
/// [`crate::Device::set_crash_plan`]) so they fail together.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    core: Arc<Core>,
}

/// What a device should do for the current mutating operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanVerdict {
    /// Before the crash point: run normally.
    Run,
    /// This operation trips the crash. For a write of length `len`, carries
    /// the number of leading bytes that still persist (the torn tail);
    /// `0` for non-write operations or plans without tearing.
    Trip { keep: u64 },
    /// After the crash point: power is off.
    Off,
}

impl CrashPlan {
    /// A plan that loses power on the `crash_at`-th mutating operation
    /// (1-based). `crash_at == 0` never trips, like [`CrashPlan::probe`].
    pub fn new(crash_at: u64) -> Self {
        Self::build(crash_at, None)
    }

    /// Like [`CrashPlan::new`], but the write that trips the crash keeps a
    /// deterministic, `boundary`-aligned prefix (a torn sector write).
    pub fn with_torn_tail(crash_at: u64, boundary: u64, seed: u64) -> Self {
        assert!(boundary > 0, "torn-tail boundary must be non-zero");
        Self::build(crash_at, Some(TornTail { boundary, seed }))
    }

    /// A plan that never trips, used to count a workload's mutating
    /// operations via [`CrashPlan::ops_seen`].
    pub fn probe() -> Self {
        Self::build(u64::MAX, None)
    }

    fn build(crash_at: u64, tear: Option<TornTail>) -> Self {
        Self {
            core: Arc::new(Core {
                crash_at,
                tear,
                state: Mutex::new(State {
                    counted: 0,
                    tripped: false,
                }),
            }),
        }
    }

    /// Mutating operations observed so far.
    pub fn ops_seen(&self) -> u64 {
        self.core.state.lock().counted
    }

    /// Whether the crash point has been reached.
    pub fn tripped(&self) -> bool {
        self.core.state.lock().tripped
    }

    /// Whether reads should fail (power is off). Reads do not advance the
    /// operation counter.
    pub(crate) fn power_off(&self) -> bool {
        self.core.state.lock().tripped
    }

    /// Accounts one mutating operation and says what the device should do.
    /// `write_len` is `Some(len)` for writes, `None` for flushes.
    pub(crate) fn tick_mutation(&self, write_len: Option<u64>) -> PlanVerdict {
        let mut st = self.core.state.lock();
        if st.tripped {
            return PlanVerdict::Off;
        }
        st.counted += 1;
        if st.counted != self.core.crash_at {
            return PlanVerdict::Run;
        }
        st.tripped = true;
        let keep = match (write_len, self.core.tear) {
            (Some(len), Some(t)) => {
                // Deterministic pick among the boundary-aligned prefixes of
                // [0, len], like Device::crash does per undo record.
                let units = len / t.boundary + 1;
                let h = t
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(self.core.crash_at)
                    .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                ((h % units) * t.boundary).min(len)
            }
            _ => 0,
        };
        PlanVerdict::Trip { keep }
    }
}
