//! The simulated device: a RAM-backed byte store with virtual timing,
//! a volatile write cache, and crash/fault injection.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::crashplan::PlanVerdict;
use crate::{CrashPlan, DeviceProfile, DeviceStats, FaultMode, VirtualClock, SIM_PAGE};

/// Errors a device can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevError {
    /// Access beyond the device capacity.
    OutOfBounds {
        /// Requested offset.
        off: u64,
        /// Requested length.
        len: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// Injected or modelled I/O failure.
    Io(String),
}

impl fmt::Display for DevError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DevError::OutOfBounds { off, len, capacity } => {
                write!(f, "access [{off}, {off}+{len}) beyond capacity {capacity}")
            }
            DevError::Io(msg) => write!(f, "device I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DevError {}

/// Construction parameters for a [`Device`].
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Timing model.
    pub profile: DeviceProfile,
    /// Capacity in bytes.
    pub capacity: u64,
    /// When `true`, unflushed writes are undo-logged so [`Device::crash`]
    /// can discard them. Benchmarks that never crash disable this to avoid
    /// unbounded undo growth.
    pub track_durability: bool,
}

struct Inner {
    pages: HashMap<u64, Box<[u8; SIM_PAGE]>>,
    /// End offset of the last access, for the sequentiality/seek model.
    last_end: u64,
    fault: FaultMode,
    /// Undo records for unflushed writes, oldest first.
    undo: Vec<UndoRecord>,
    /// Machine-wide crash point this device participates in, if any.
    plan: Option<CrashPlan>,
}

struct UndoRecord {
    off: u64,
    /// Content of `[off, off+new_len)` before the write (zero-extended).
    old: Vec<u8>,
}

/// A simulated storage device.
///
/// Cloneable handle (`Arc` inside); all methods are thread-safe. Every data
/// operation charges virtual time on the shared [`VirtualClock`] according
/// to the device's [`DeviceProfile`] and records [`DeviceStats`].
#[derive(Clone)]
pub struct Device {
    shared: Arc<Shared>,
}

struct Shared {
    profile: DeviceProfile,
    capacity: u64,
    clock: VirtualClock,
    stats: DeviceStats,
    track_durability: bool,
    inner: Mutex<Inner>,
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("profile", &self.shared.profile.name)
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl Device {
    /// Creates a device with the given configuration, charging time to
    /// `clock`.
    pub fn new(config: DeviceConfig, clock: VirtualClock) -> Self {
        Self {
            shared: Arc::new(Shared {
                profile: config.profile,
                capacity: config.capacity,
                clock,
                stats: DeviceStats::default(),
                track_durability: config.track_durability,
                inner: Mutex::new(Inner {
                    pages: HashMap::new(),
                    last_end: 0,
                    fault: FaultMode::None,
                    undo: Vec::new(),
                    plan: None,
                }),
            }),
        }
    }

    /// Convenience constructor with durability tracking enabled.
    pub fn with_profile(profile: DeviceProfile, capacity: u64, clock: VirtualClock) -> Self {
        Self::new(
            DeviceConfig {
                profile,
                capacity,
                track_durability: true,
            },
            clock,
        )
    }

    /// The device's timing profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.shared.profile
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.shared.capacity
    }

    /// The clock this device charges.
    pub fn clock(&self) -> &VirtualClock {
        &self.shared.clock
    }

    /// Operation statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.shared.stats
    }

    /// Sets the fault-injection mode.
    pub fn set_fault_mode(&self, mode: FaultMode) {
        self.shared.inner.lock().fault = mode;
    }

    /// Attaches (or with `None`, detaches) a [`CrashPlan`]. Clone the same
    /// plan onto every device of a stack so a crash point takes all of them
    /// down at the same instant; detaching models powering back on.
    pub fn set_crash_plan(&self, plan: Option<CrashPlan>) {
        self.shared.inner.lock().plan = plan;
    }

    fn check_bounds(&self, off: u64, len: u64) -> Result<(), DevError> {
        if off
            .checked_add(len)
            .is_none_or(|end| end > self.shared.capacity)
        {
            return Err(DevError::OutOfBounds {
                off,
                len,
                capacity: self.shared.capacity,
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at `off` into `buf`, returning the virtual
    /// service time in nanoseconds. Unwritten regions read as zeros.
    pub fn read(&self, off: u64, buf: &mut [u8]) -> Result<u64, DevError> {
        self.check_bounds(off, buf.len() as u64)?;
        let mut inner = self.shared.inner.lock();
        if inner.plan.as_ref().is_some_and(|p| p.power_off()) {
            return Err(DevError::Io("simulated power loss".into()));
        }
        if inner.fault.tick_should_fail() {
            return Err(DevError::Io("injected fail-stop".into()));
        }
        let p = &self.shared.profile;
        if p.seek_ns > 0 && off != inner.last_end {
            self.shared.stats.on_seek();
        }
        let ns = p.read_cost(off, buf.len() as u64, inner.last_end);
        // Bit rot fires before the data leaves the device: a single stored
        // bit inside the range being read flips — persistently, with no
        // undo record (media decay is durable) — and the corrupted bytes
        // are served as if nothing happened.
        if let Some((delta, mask)) = inner.fault.tick_bit_rot(buf.len() as u64) {
            let mut byte = [0u8; 1];
            Self::copy_out(&inner.pages, off + delta, &mut byte);
            byte[0] ^= mask;
            Self::copy_in(&mut inner.pages, off + delta, &byte);
            self.shared.stats.on_corruption();
        }
        Self::copy_out(&inner.pages, off, buf);
        inner.last_end = off + buf.len() as u64;
        drop(inner);
        self.shared.clock.advance(ns);
        self.shared.stats.on_read(buf.len() as u64, ns);
        Ok(ns)
    }

    /// Writes `data` at `off`, returning the virtual service time.
    ///
    /// The write lands in the volatile write cache: it is readable
    /// immediately but only survives [`Device::crash`] once flushed.
    pub fn write(&self, off: u64, data: &[u8]) -> Result<u64, DevError> {
        self.check_bounds(off, data.len() as u64)?;
        let mut inner = self.shared.inner.lock();
        if let Some(plan) = inner.plan.clone() {
            match plan.tick_mutation(Some(data.len() as u64)) {
                PlanVerdict::Run => {}
                PlanVerdict::Trip { keep } => {
                    // Power loss mid-write: the write cache is lost, but a
                    // deterministic sector-aligned prefix of this very write
                    // may still land (torn write). Apply it after rollback
                    // and without an undo record — it is durable.
                    Self::rollback(&mut inner, None);
                    if keep > 0 {
                        Self::copy_in(&mut inner.pages, off, &data[..keep as usize]);
                    }
                    return Err(DevError::Io("simulated power loss".into()));
                }
                PlanVerdict::Off => return Err(DevError::Io("simulated power loss".into())),
            }
        }
        if inner.fault.tick_should_fail() {
            return Err(DevError::Io("injected fail-stop".into()));
        }
        let p = &self.shared.profile;
        if p.seek_ns > 0 && off != inner.last_end {
            self.shared.stats.on_seek();
        }
        let ns = p.write_cost(off, data.len() as u64, inner.last_end);
        // Silent write corruption: a lost write is acknowledged but never
        // stored; a misdirected write is stored whole at the wrong
        // page-aligned offset (with normal durability semantics there),
        // leaving the intended range untouched. Neither returns an error.
        let lost = matches!(inner.fault, FaultMode::LostWrite);
        let landing = if lost {
            None
        } else {
            Some(
                inner
                    .fault
                    .tick_misdirect(off, data.len() as u64, self.shared.capacity)
                    .unwrap_or(off),
            )
        };
        if lost || landing != Some(off) {
            self.shared.stats.on_corruption();
        }
        if let Some(at) = landing {
            if self.shared.track_durability {
                let mut old = vec![0u8; data.len()];
                Self::copy_out(&inner.pages, at, &mut old);
                inner.undo.push(UndoRecord { off: at, old });
            }
            Self::copy_in(&mut inner.pages, at, data);
        }
        inner.last_end = off + data.len() as u64;
        drop(inner);
        self.shared.clock.advance(ns);
        self.shared.stats.on_write(data.len() as u64, ns);
        Ok(ns)
    }

    /// Persists all cached writes (a full persistence barrier).
    pub fn flush(&self) -> u64 {
        let mut inner = self.shared.inner.lock();
        if let Some(plan) = inner.plan.clone() {
            match plan.tick_mutation(None) {
                PlanVerdict::Run => {}
                PlanVerdict::Trip { .. } => {
                    Self::rollback(&mut inner, None);
                    return 0;
                }
                PlanVerdict::Off => return 0,
            }
        }
        inner.undo.clear();
        drop(inner);
        let ns = self.shared.profile.flush_ns;
        self.shared.clock.advance(ns);
        self.shared.stats.on_flush(ns);
        ns
    }

    /// Persists cached writes that overlap `[off, off+len)` — the CLWB/
    /// CLFLUSH path on byte-addressable devices.
    pub fn flush_range(&self, off: u64, len: u64) -> u64 {
        let mut inner = self.shared.inner.lock();
        if let Some(plan) = inner.plan.clone() {
            match plan.tick_mutation(None) {
                PlanVerdict::Run => {}
                PlanVerdict::Trip { .. } => {
                    Self::rollback(&mut inner, None);
                    return 0;
                }
                PlanVerdict::Off => return 0,
            }
        }
        inner
            .undo
            .retain(|r| r.off + r.old.len() as u64 <= off || r.off >= off + len);
        drop(inner);
        let ns = self.shared.profile.flush_ns;
        self.shared.clock.advance(ns);
        self.shared.stats.on_flush(ns);
        ns
    }

    /// Simulates a power failure: every unflushed write is rolled back (or,
    /// under [`FaultMode::TornWrites`], torn at a deterministic point).
    ///
    /// The device remains usable afterwards, as if powered back on.
    pub fn crash(&self) {
        let mut inner = self.shared.inner.lock();
        let torn_seed = match inner.fault {
            FaultMode::TornWrites { seed } => Some(seed),
            _ => None,
        };
        Self::rollback(&mut inner, torn_seed);
    }

    /// Restores the last-flushed image: rolls back every undo record
    /// (newest first so overlapping writes restore correctly), optionally
    /// keeping a deterministic torn prefix of each unflushed write.
    fn rollback(inner: &mut Inner, torn_seed: Option<u64>) {
        let undo = std::mem::take(&mut inner.undo);
        for (i, rec) in undo.iter().enumerate().rev() {
            let keep = match torn_seed {
                // Deterministic tear point in [0, len]: a prefix of the new
                // data survives, the rest rolls back.
                Some(seed) => {
                    let h = seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(i as u64)
                        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    (h % (rec.old.len() as u64 + 1)) as usize
                }
                None => 0,
            };
            if keep < rec.old.len() {
                Self::copy_in(&mut inner.pages, rec.off + keep as u64, &rec.old[keep..]);
            }
        }
        inner.last_end = 0;
    }

    /// Number of writes currently unpersisted (test aid).
    pub fn unflushed_writes(&self) -> usize {
        self.shared.inner.lock().undo.len()
    }

    fn copy_out(pages: &HashMap<u64, Box<[u8; SIM_PAGE]>>, off: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = off + done as u64;
            let page_no = cur / SIM_PAGE as u64;
            let in_page = (cur % SIM_PAGE as u64) as usize;
            let n = (SIM_PAGE - in_page).min(buf.len() - done);
            match pages.get(&page_no) {
                Some(p) => buf[done..done + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
        }
    }

    fn copy_in(pages: &mut HashMap<u64, Box<[u8; SIM_PAGE]>>, off: u64, data: &[u8]) {
        let mut done = 0usize;
        while done < data.len() {
            let cur = off + done as u64;
            let page_no = cur / SIM_PAGE as u64;
            let in_page = (cur % SIM_PAGE as u64) as usize;
            let n = (SIM_PAGE - in_page).min(data.len() - done);
            let page = pages
                .entry(page_no)
                .or_insert_with(|| Box::new([0u8; SIM_PAGE]));
            page[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hdd, nvme_ssd, pmem};

    fn pm_dev() -> Device {
        Device::with_profile(pmem(), 1 << 26, VirtualClock::new())
    }

    #[test]
    fn read_unwritten_returns_zeros() {
        let d = pm_dev();
        let mut buf = [0xFFu8; 64];
        d.read(1000, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let d = pm_dev();
        d.write(4090, b"hello world").unwrap(); // spans a page boundary
        let mut buf = [0u8; 11];
        d.read(4090, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn out_of_bounds_rejected() {
        let d = pm_dev();
        let cap = d.capacity();
        assert!(matches!(
            d.write(cap - 4, &[0u8; 8]),
            Err(DevError::OutOfBounds { .. })
        ));
        let mut b = [0u8; 8];
        assert!(d.read(cap, &mut b).is_err());
        // Overflowing offset must not panic.
        assert!(d.read(u64::MAX, &mut b).is_err());
    }

    #[test]
    fn clock_advances_on_io() {
        let d = pm_dev();
        let t0 = d.clock().now_ns();
        d.write(0, &[1u8; 4096]).unwrap();
        assert!(d.clock().now_ns() > t0);
    }

    #[test]
    fn stats_recorded() {
        let d = pm_dev();
        d.write(0, &[1u8; 100]).unwrap();
        let mut b = [0u8; 50];
        d.read(0, &mut b).unwrap();
        d.flush();
        let s = d.stats().snapshot();
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_read, 50);
        assert_eq!(s.flushes, 1);
        assert!(s.busy_ns > 0);
    }

    #[test]
    fn crash_discards_unflushed() {
        let d = pm_dev();
        d.write(0, b"durable").unwrap();
        d.flush();
        d.write(0, b"ephemer").unwrap();
        d.crash();
        let mut b = [0u8; 7];
        d.read(0, &mut b).unwrap();
        assert_eq!(&b, b"durable");
    }

    #[test]
    fn crash_preserves_flushed_range() {
        let d = pm_dev();
        d.write(0, b"aaaa").unwrap();
        d.write(100, b"bbbb").unwrap();
        d.flush_range(0, 4);
        d.crash();
        let mut a = [0u8; 4];
        let mut b = [0u8; 4];
        d.read(0, &mut a).unwrap();
        d.read(100, &mut b).unwrap();
        assert_eq!(&a, b"aaaa");
        assert_eq!(b, [0u8; 4]);
    }

    #[test]
    fn crash_rolls_back_overlapping_writes_in_order() {
        let d = pm_dev();
        d.write(0, b"11111111").unwrap();
        d.flush();
        d.write(0, b"22222222").unwrap();
        d.write(4, b"3333").unwrap();
        d.crash();
        let mut b = [0u8; 8];
        d.read(0, &mut b).unwrap();
        assert_eq!(&b, b"11111111");
    }

    #[test]
    fn torn_writes_keep_prefix_only() {
        let d = pm_dev();
        d.write(0, b"old_old_old_old_").unwrap();
        d.flush();
        d.set_fault_mode(FaultMode::TornWrites { seed: 7 });
        d.write(0, b"new_new_new_new_").unwrap();
        d.crash();
        let mut b = [0u8; 16];
        d.read(0, &mut b).unwrap();
        // Some prefix is new, the suffix is old; the whole buffer must be a
        // valid tear of the two.
        let tear = (0..=16)
            .find(|&k| b[..k] == b"new_new_new_new_"[..k] && b[k..] == b"old_old_old_old_"[k..]);
        assert!(tear.is_some(), "buffer {b:?} is not a prefix-tear");
    }

    #[test]
    fn fail_stop_injects_errors() {
        let d = pm_dev();
        d.set_fault_mode(FaultMode::FailStop { remaining_ops: 1 });
        d.write(0, b"x").unwrap();
        assert!(matches!(d.write(0, b"y"), Err(DevError::Io(_))));
        // Reads fail too.
        let mut b = [0u8; 1];
        assert!(d.read(0, &mut b).is_err());
    }

    #[test]
    fn hdd_random_slower_than_sequential() {
        let clock = VirtualClock::new();
        let d = Device::with_profile(hdd(), 1 << 30, clock.clone());
        let data = vec![0u8; 4096];
        let t_start = clock.now_ns();
        for i in 0..16 {
            d.write(i * 4096, &data).unwrap();
        }
        let seq = clock.now_ns() - t_start;
        let t_start = clock.now_ns();
        for i in 0..16 {
            d.write(((i * 7919) % 1024) * (1 << 20), &data).unwrap();
        }
        let rand = clock.now_ns() - t_start;
        assert!(
            rand > seq * 5,
            "random {rand} should dwarf sequential {seq}"
        );
        assert!(d.stats().snapshot().seeks >= 16);
    }

    #[test]
    fn ssd_faster_than_hdd_random() {
        let clock = VirtualClock::new();
        let ssd = Device::with_profile(nvme_ssd(), 1 << 30, clock.clone());
        let hdd_dev = Device::with_profile(hdd(), 1 << 30, clock.clone());
        let data = vec![0u8; 4096];
        let ssd_ns = ssd.write(123 << 20, &data).unwrap();
        let hdd_ns = hdd_dev.write(123 << 20, &data).unwrap();
        assert!(hdd_ns > ssd_ns * 10);
    }

    #[test]
    fn untracked_device_keeps_writes_on_crash() {
        let d = Device::new(
            DeviceConfig {
                profile: pmem(),
                capacity: 1 << 20,
                track_durability: false,
            },
            VirtualClock::new(),
        );
        d.write(0, b"stay").unwrap();
        d.crash();
        let mut b = [0u8; 4];
        d.read(0, &mut b).unwrap();
        assert_eq!(&b, b"stay");
        assert_eq!(d.unflushed_writes(), 0);
    }

    #[test]
    fn crash_plan_probe_counts_mutations_only() {
        let d = pm_dev();
        let plan = CrashPlan::probe();
        d.set_crash_plan(Some(plan.clone()));
        d.write(0, b"a").unwrap();
        let mut b = [0u8; 1];
        d.read(0, &mut b).unwrap(); // reads don't count
        d.flush();
        d.flush_range(0, 1);
        assert_eq!(plan.ops_seen(), 3);
        assert!(!plan.tripped());
    }

    #[test]
    fn crash_plan_trips_at_k_and_loses_unflushed() {
        let d = pm_dev();
        d.write(0, b"durable").unwrap();
        d.flush();
        // Ops so far don't count: the plan attaches now.
        let plan = CrashPlan::new(2);
        d.set_crash_plan(Some(plan.clone()));
        d.write(0, b"ephemr1").unwrap(); // op 1: lands, unflushed
        let err = d.write(0, b"ephemr2").unwrap_err(); // op 2: trips
        assert!(matches!(err, DevError::Io(_)));
        assert!(plan.tripped());
        // Power is off: everything fails, flush persists nothing.
        assert!(d.write(100, b"x").is_err());
        let mut b = [0u8; 7];
        assert!(d.read(0, &mut b).is_err());
        assert_eq!(d.flush(), 0);
        // Power back on: the flushed image survived, the rest rolled back.
        d.set_crash_plan(None);
        d.read(0, &mut b).unwrap();
        assert_eq!(&b, b"durable");
    }

    #[test]
    fn crash_plan_is_shared_across_devices() {
        let clock = VirtualClock::new();
        let d1 = Device::with_profile(pmem(), 1 << 20, clock.clone());
        let d2 = Device::with_profile(pmem(), 1 << 20, clock);
        let plan = CrashPlan::new(2);
        d1.set_crash_plan(Some(plan.clone()));
        d2.set_crash_plan(Some(plan));
        d1.write(0, b"x").unwrap(); // op 1 on d1
        assert!(d2.write(0, b"y").is_err()); // op 2 on d2 trips both
        assert!(d1.write(4, b"z").is_err()); // d1 is dead too
    }

    #[test]
    fn crash_plan_flush_at_trip_persists_nothing() {
        let d = pm_dev();
        d.write(0, b"old").unwrap();
        d.flush();
        let plan = CrashPlan::new(2);
        d.set_crash_plan(Some(plan));
        d.write(0, b"new").unwrap(); // op 1
        assert_eq!(d.flush(), 0); // op 2: power dies during the barrier
        d.set_crash_plan(None);
        let mut b = [0u8; 3];
        d.read(0, &mut b).unwrap();
        assert_eq!(&b, b"old");
        assert_eq!(d.unflushed_writes(), 0);
    }

    #[test]
    fn crash_plan_torn_tail_keeps_aligned_prefix() {
        // Scan seeds until one yields a strictly partial tear, proving the
        // prefix mechanism works and stays boundary-aligned.
        let mut saw_partial = false;
        for seed in 0..32 {
            let d = pm_dev();
            d.write(0, &[b'o'; 1024]).unwrap();
            d.flush();
            let plan = CrashPlan::with_torn_tail(1, 256, seed);
            d.set_crash_plan(Some(plan));
            assert!(d.write(0, &[b'n'; 1024]).is_err());
            d.set_crash_plan(None);
            let mut b = [0u8; 1024];
            d.read(0, &mut b).unwrap();
            let keep = b.iter().take_while(|&&c| c == b'n').count();
            assert_eq!(keep % 256, 0, "tear not sector-aligned: {keep}");
            assert!(b[keep..].iter().all(|&c| c == b'o'));
            if keep > 0 && keep < 1024 {
                saw_partial = true;
            }
        }
        assert!(saw_partial, "no seed produced a partial tear");
    }

    #[test]
    fn bit_rot_flips_one_stored_bit_and_persists() {
        let d = pm_dev();
        let data = [0xAAu8; 512];
        d.write(0, &data).unwrap();
        d.flush();
        d.set_fault_mode(FaultMode::BitRot { period: 1, seed: 9 });
        let mut got = [0u8; 512];
        d.read(0, &mut got).unwrap(); // no error: the device lies
        let flipped: u32 = got
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit rots per firing read");
        // The rot is in the store, not the transfer: a healthy re-read
        // sees the same corrupted image, and so does a post-crash read
        // (the flip is durable media decay, not an unflushed write).
        d.set_fault_mode(FaultMode::None);
        let mut again = [0u8; 512];
        d.read(0, &mut again).unwrap();
        assert_eq!(got, again);
        d.crash();
        d.read(0, &mut again).unwrap();
        assert_eq!(got, again);
        assert_eq!(d.stats().snapshot().corruptions, 1);
    }

    #[test]
    fn bit_rot_same_seed_same_damage() {
        let mk = || {
            let d = pm_dev();
            d.write(0, &[0x55u8; 4096]).unwrap();
            d.flush();
            d.set_fault_mode(FaultMode::BitRot {
                period: 2,
                seed: 77,
            });
            let mut b = vec![0u8; 4096];
            for _ in 0..8 {
                d.read(0, &mut b).unwrap();
            }
            b
        };
        assert_eq!(mk(), mk(), "identical seeds must rot identically");
    }

    #[test]
    fn lost_write_acks_but_persists_nothing() {
        let d = pm_dev();
        d.write(0, b"original").unwrap();
        d.flush();
        d.set_fault_mode(FaultMode::LostWrite);
        let ns = d.write(0, b"vanished").unwrap();
        assert!(ns > 0, "the lie still charges service time");
        assert_eq!(d.unflushed_writes(), 0, "nothing reached the write cache");
        let mut b = [0u8; 8];
        d.read(0, &mut b).unwrap();
        assert_eq!(&b, b"original");
        assert_eq!(d.stats().snapshot().corruptions, 1);
    }

    #[test]
    fn misdirected_write_lands_whole_on_a_wrong_page() {
        let d = pm_dev();
        d.write(0, &[1u8; 4096]).unwrap();
        d.flush();
        d.set_fault_mode(FaultMode::MisdirectedWrite { seed: 13 });
        d.write(0, &[2u8; 4096]).unwrap();
        d.set_fault_mode(FaultMode::None);
        // The intended page silently kept its old content...
        let mut b = vec![0u8; 4096];
        d.read(0, &mut b).unwrap();
        assert!(b.iter().all(|&x| x == 1), "intended range must be stale");
        // ...and the payload landed whole on some other page.
        let cap = d.capacity();
        let found = (1..cap / SIM_PAGE as u64).any(|p| {
            let mut q = vec![0u8; 4096];
            d.read(p * SIM_PAGE as u64, &mut q).unwrap();
            q.iter().all(|&x| x == 2)
        });
        assert!(found, "misdirected payload not found anywhere");
        assert_eq!(d.stats().snapshot().corruptions, 1);
    }

    #[test]
    fn misdirected_write_respects_crash_semantics() {
        // The stray landing obeys the same volatility rules as any write:
        // unflushed, it rolls back on crash.
        let d = pm_dev();
        d.flush();
        d.set_fault_mode(FaultMode::MisdirectedWrite { seed: 13 });
        d.write(0, &[2u8; 4096]).unwrap();
        d.set_fault_mode(FaultMode::None);
        assert_eq!(d.unflushed_writes(), 1);
        d.crash();
        let cap = d.capacity();
        for p in 0..cap / SIM_PAGE as u64 {
            let mut q = vec![0u8; 4096];
            d.read(p * SIM_PAGE as u64, &mut q).unwrap();
            assert!(q.iter().all(|&x| x == 0), "stray write survived the crash");
        }
    }

    #[test]
    fn silent_write_modes_still_count_as_crash_plan_mutations() {
        // A lost or misdirected write is still a command the device
        // received: crash enumeration must count it.
        let d = pm_dev();
        let plan = CrashPlan::probe();
        d.set_crash_plan(Some(plan.clone()));
        d.set_fault_mode(FaultMode::LostWrite);
        d.write(0, b"a").unwrap();
        d.set_fault_mode(FaultMode::MisdirectedWrite { seed: 1 });
        d.write(0, b"b").unwrap();
        assert_eq!(plan.ops_seen(), 2);
    }

    #[test]
    fn concurrent_writers_disjoint_ranges() {
        let d = pm_dev();
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let d = d.clone();
                std::thread::spawn(move || {
                    let data = vec![i as u8 + 1; 1024];
                    for j in 0..32 {
                        d.write(i * (1 << 20) + j * 1024, &data).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4u64 {
            let mut b = vec![0u8; 1024];
            d.read(i * (1 << 20), &mut b).unwrap();
            assert!(b.iter().all(|&x| x == i as u8 + 1));
        }
    }
}
