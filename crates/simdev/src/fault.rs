//! Fault-injection modes for crash-consistency and error-path testing.

/// How a device misbehaves.
///
/// Set via [`crate::Device::set_fault_mode`]. `FailStop` exercises error
/// handling in the file systems; `TornWrites` makes [`crate::Device::crash`]
/// persist only a prefix of each unflushed write, exercising recovery code
/// against partially persisted state. The three *silent* modes — `BitRot`,
/// `LostWrite`, `MisdirectedWrite` — never return an error: the device lies,
/// which is exactly what end-to-end checksums exist to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// Healthy device.
    #[default]
    None,
    /// Every I/O after the next `remaining_ops` operations fails with
    /// [`crate::DevError::Io`].
    FailStop {
        /// Operations left before the device starts failing.
        remaining_ops: u64,
    },
    /// On [`crate::Device::crash`], each unflushed write survives only up to
    /// a deterministic prefix length derived from `seed` (possibly zero
    /// bytes), modelling torn sector writes.
    TornWrites {
        /// Seed for the deterministic tear points.
        seed: u64,
    },
    /// Transient errors: on average one in `period` operations fails with
    /// [`crate::DevError::Io`] and the rest succeed, modelling a flaky
    /// link/controller that a bounded retry can beat. The failure pattern
    /// is a deterministic function of `seed`, which evolves per operation.
    Intermittent {
        /// Mean operations per failure (must be ≥ 1; 1 = every op fails).
        period: u64,
        /// Current PRNG state; advances on every operation.
        seed: u64,
    },
    /// Silent bit rot: roughly one in `period` *reads* flips a single
    /// deterministically chosen bit of the **stored** data inside the range
    /// being read, then serves the corrupted bytes as if nothing happened.
    /// The flip is media decay, not a transfer error: it persists across
    /// further reads, [`crate::Device::flush`] and [`crate::Device::crash`].
    BitRot {
        /// Mean reads per flipped bit (must be ≥ 1; 1 = every read rots).
        period: u64,
        /// Current PRNG state; advances on every read.
        seed: u64,
    },
    /// Lost writes: every write is acknowledged (and charged virtual time)
    /// but nothing reaches the store — the classic firmware dropped-write
    /// bug. Reads and flushes behave normally and report no error.
    LostWrite,
    /// Misdirected writes: each write persists at a deterministic wrong
    /// page-aligned offset derived from `seed`, clobbering an innocent
    /// bystander while the intended range silently keeps its old content.
    MisdirectedWrite {
        /// Current PRNG state; advances on every write.
        seed: u64,
    },
}

/// One splitmix64 step: advances `seed` in place and returns the mixed
/// output — deterministic, uniform enough for 1-in-period fault processes.
fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultMode {
    /// Returns `true` if the device should reject I/O right now, decrementing
    /// the fail-stop countdown as a side effect.
    pub(crate) fn tick_should_fail(&mut self) -> bool {
        match self {
            FaultMode::FailStop { remaining_ops } => {
                if *remaining_ops == 0 {
                    true
                } else {
                    *remaining_ops -= 1;
                    false
                }
            }
            FaultMode::Intermittent { period, seed } => {
                let z = splitmix64(seed);
                z.is_multiple_of((*period).max(1))
            }
            _ => false,
        }
    }

    /// Under [`FaultMode::BitRot`], decides whether this read (of `len`
    /// bytes) rots a bit, and if so where: `Some((byte_offset, bit_mask))`
    /// with `byte_offset < len`. Advances the PRNG on every read.
    pub(crate) fn tick_bit_rot(&mut self, len: u64) -> Option<(u64, u8)> {
        let FaultMode::BitRot { period, seed } = self else {
            return None;
        };
        if len == 0 {
            return None;
        }
        let fire = splitmix64(seed).is_multiple_of((*period).max(1));
        if !fire {
            return None;
        }
        // A second step decorrelates the flip position from the firing
        // decision (the low bits of one output decide both otherwise).
        let z = splitmix64(seed);
        Some((z % len, 1u8 << ((z >> 32) & 7)))
    }

    /// Under [`FaultMode::MisdirectedWrite`], picks the wrong page-aligned
    /// landing offset for a write of `len` bytes intended for `off` on a
    /// device of `capacity` bytes. `None` means the write lands where it
    /// should (mode inactive, or no other page fits it).
    pub(crate) fn tick_misdirect(&mut self, off: u64, len: u64, capacity: u64) -> Option<u64> {
        let FaultMode::MisdirectedWrite { seed } = self else {
            return None;
        };
        let page = crate::SIM_PAGE as u64;
        if len > capacity {
            return None;
        }
        // Page-aligned slots where the whole write still fits.
        let slots = (capacity - len) / page + 1;
        if slots < 2 {
            return None;
        }
        let intended = off / page;
        let mut slot = splitmix64(seed) % slots;
        if slot == intended {
            slot = (slot + 1) % slots;
        }
        Some(slot * page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let mut m = FaultMode::None;
        for _ in 0..100 {
            assert!(!m.tick_should_fail());
        }
    }

    #[test]
    fn fail_stop_counts_down() {
        let mut m = FaultMode::FailStop { remaining_ops: 2 };
        assert!(!m.tick_should_fail());
        assert!(!m.tick_should_fail());
        assert!(m.tick_should_fail());
        assert!(m.tick_should_fail());
    }

    #[test]
    fn intermittent_is_deterministic() {
        let mut a = FaultMode::Intermittent {
            period: 5,
            seed: 42,
        };
        let mut b = FaultMode::Intermittent {
            period: 5,
            seed: 42,
        };
        for _ in 0..1000 {
            assert_eq!(a.tick_should_fail(), b.tick_should_fail());
        }
    }

    #[test]
    fn intermittent_failure_rate_near_one_in_period() {
        let mut m = FaultMode::Intermittent {
            period: 10,
            seed: 7,
        };
        let failures = (0..10_000).filter(|_| m.tick_should_fail()).count();
        // Mean is 1000; accept a generous band around it.
        assert!(
            (500..2000).contains(&failures),
            "failure rate off: {failures}/10000"
        );
    }

    #[test]
    fn intermittent_recovers_between_failures() {
        // Unlike FailStop, failures must not latch: successes follow failures.
        let mut m = FaultMode::Intermittent { period: 4, seed: 1 };
        let outcomes: Vec<bool> = (0..64).map(|_| m.tick_should_fail()).collect();
        let first_fail = outcomes
            .iter()
            .position(|&f| f)
            .expect("no failure in 64 ops");
        assert!(
            outcomes[first_fail..].iter().any(|&f| !f),
            "intermittent mode latched into permanent failure"
        );
    }

    #[test]
    fn intermittent_period_one_always_fails() {
        let mut m = FaultMode::Intermittent { period: 1, seed: 9 };
        for _ in 0..32 {
            assert!(m.tick_should_fail());
        }
    }

    #[test]
    fn silent_modes_never_report_errors() {
        for mut m in [
            FaultMode::BitRot { period: 1, seed: 3 },
            FaultMode::LostWrite,
            FaultMode::MisdirectedWrite { seed: 3 },
        ] {
            for _ in 0..64 {
                assert!(!m.tick_should_fail(), "{m:?} must stay silent");
            }
        }
    }

    #[test]
    fn bit_rot_is_deterministic_and_in_range() {
        let mut a = FaultMode::BitRot { period: 3, seed: 7 };
        let mut b = FaultMode::BitRot { period: 3, seed: 7 };
        let mut fired = 0;
        for _ in 0..1000 {
            let ra = a.tick_bit_rot(4096);
            assert_eq!(ra, b.tick_bit_rot(4096));
            if let Some((off, mask)) = ra {
                fired += 1;
                assert!(off < 4096);
                assert_eq!(mask.count_ones(), 1, "exactly one bit flips");
            }
        }
        // Mean is ~333; accept a generous band.
        assert!((150..650).contains(&fired), "rot rate off: {fired}/1000");
    }

    #[test]
    fn bit_rot_different_seeds_diverge() {
        let mut a = FaultMode::BitRot { period: 1, seed: 1 };
        let mut b = FaultMode::BitRot { period: 1, seed: 2 };
        let hits_a: Vec<_> = (0..32).map(|_| a.tick_bit_rot(1 << 20)).collect();
        let hits_b: Vec<_> = (0..32).map(|_| b.tick_bit_rot(1 << 20)).collect();
        assert_ne!(hits_a, hits_b);
    }

    #[test]
    fn bit_rot_period_one_rots_every_read_and_zero_len_never() {
        let mut m = FaultMode::BitRot { period: 1, seed: 5 };
        for _ in 0..16 {
            assert!(m.tick_bit_rot(64).is_some());
        }
        assert!(m.tick_bit_rot(0).is_none());
    }

    #[test]
    fn misdirect_is_deterministic_aligned_and_never_intended() {
        let cap = 64 * crate::SIM_PAGE as u64;
        let mut a = FaultMode::MisdirectedWrite { seed: 11 };
        let mut b = FaultMode::MisdirectedWrite { seed: 11 };
        for i in 0..200u64 {
            let off = (i % 32) * crate::SIM_PAGE as u64;
            let wrong = a.tick_misdirect(off, 512, cap);
            assert_eq!(wrong, b.tick_misdirect(off, 512, cap));
            let w = wrong.expect("always misdirects when another page fits");
            assert_eq!(w % crate::SIM_PAGE as u64, 0, "landing not page-aligned");
            assert_ne!(
                w / crate::SIM_PAGE as u64,
                off / crate::SIM_PAGE as u64,
                "landed on the intended page"
            );
            assert!(w + 512 <= cap);
        }
    }

    #[test]
    fn misdirect_declines_when_no_other_page_fits() {
        let page = crate::SIM_PAGE as u64;
        let mut m = FaultMode::MisdirectedWrite { seed: 1 };
        // Single-page device: nowhere else to land.
        assert_eq!(m.tick_misdirect(0, 512, page), None);
        // Write longer than the device: decline rather than overflow.
        assert_eq!(m.tick_misdirect(0, 3 * page, 2 * page), None);
    }
}
