//! Fault-injection modes for crash-consistency and error-path testing.

/// How a device misbehaves.
///
/// Set via [`crate::Device::set_fault_mode`]. `FailStop` exercises error
/// handling in the file systems; `TornWrites` makes [`crate::Device::crash`]
/// persist only a prefix of each unflushed write, exercising recovery code
/// against partially persisted state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// Healthy device.
    #[default]
    None,
    /// Every I/O after the next `remaining_ops` operations fails with
    /// [`crate::DevError::Io`].
    FailStop {
        /// Operations left before the device starts failing.
        remaining_ops: u64,
    },
    /// On [`crate::Device::crash`], each unflushed write survives only up to
    /// a deterministic prefix length derived from `seed` (possibly zero
    /// bytes), modelling torn sector writes.
    TornWrites {
        /// Seed for the deterministic tear points.
        seed: u64,
    },
}

impl FaultMode {
    /// Returns `true` if the device should reject I/O right now, decrementing
    /// the fail-stop countdown as a side effect.
    pub(crate) fn tick_should_fail(&mut self) -> bool {
        match self {
            FaultMode::FailStop { remaining_ops } => {
                if *remaining_ops == 0 {
                    true
                } else {
                    *remaining_ops -= 1;
                    false
                }
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let mut m = FaultMode::None;
        for _ in 0..100 {
            assert!(!m.tick_should_fail());
        }
    }

    #[test]
    fn fail_stop_counts_down() {
        let mut m = FaultMode::FailStop { remaining_ops: 2 };
        assert!(!m.tick_should_fail());
        assert!(!m.tick_should_fail());
        assert!(m.tick_should_fail());
        assert!(m.tick_should_fail());
    }
}
