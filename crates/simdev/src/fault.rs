//! Fault-injection modes for crash-consistency and error-path testing.

/// How a device misbehaves.
///
/// Set via [`crate::Device::set_fault_mode`]. `FailStop` exercises error
/// handling in the file systems; `TornWrites` makes [`crate::Device::crash`]
/// persist only a prefix of each unflushed write, exercising recovery code
/// against partially persisted state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// Healthy device.
    #[default]
    None,
    /// Every I/O after the next `remaining_ops` operations fails with
    /// [`crate::DevError::Io`].
    FailStop {
        /// Operations left before the device starts failing.
        remaining_ops: u64,
    },
    /// On [`crate::Device::crash`], each unflushed write survives only up to
    /// a deterministic prefix length derived from `seed` (possibly zero
    /// bytes), modelling torn sector writes.
    TornWrites {
        /// Seed for the deterministic tear points.
        seed: u64,
    },
    /// Transient errors: on average one in `period` operations fails with
    /// [`crate::DevError::Io`] and the rest succeed, modelling a flaky
    /// link/controller that a bounded retry can beat. The failure pattern
    /// is a deterministic function of `seed`, which evolves per operation.
    Intermittent {
        /// Mean operations per failure (must be ≥ 1; 1 = every op fails).
        period: u64,
        /// Current PRNG state; advances on every operation.
        seed: u64,
    },
}

impl FaultMode {
    /// Returns `true` if the device should reject I/O right now, decrementing
    /// the fail-stop countdown as a side effect.
    pub(crate) fn tick_should_fail(&mut self) -> bool {
        match self {
            FaultMode::FailStop { remaining_ops } => {
                if *remaining_ops == 0 {
                    true
                } else {
                    *remaining_ops -= 1;
                    false
                }
            }
            FaultMode::Intermittent { period, seed } => {
                // splitmix64 step: deterministic, uniform enough for a
                // 1-in-period failure process.
                *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                z % (*period).max(1) == 0
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let mut m = FaultMode::None;
        for _ in 0..100 {
            assert!(!m.tick_should_fail());
        }
    }

    #[test]
    fn fail_stop_counts_down() {
        let mut m = FaultMode::FailStop { remaining_ops: 2 };
        assert!(!m.tick_should_fail());
        assert!(!m.tick_should_fail());
        assert!(m.tick_should_fail());
        assert!(m.tick_should_fail());
    }

    #[test]
    fn intermittent_is_deterministic() {
        let mut a = FaultMode::Intermittent {
            period: 5,
            seed: 42,
        };
        let mut b = FaultMode::Intermittent {
            period: 5,
            seed: 42,
        };
        for _ in 0..1000 {
            assert_eq!(a.tick_should_fail(), b.tick_should_fail());
        }
    }

    #[test]
    fn intermittent_failure_rate_near_one_in_period() {
        let mut m = FaultMode::Intermittent {
            period: 10,
            seed: 7,
        };
        let failures = (0..10_000).filter(|_| m.tick_should_fail()).count();
        // Mean is 1000; accept a generous band around it.
        assert!(
            (500..2000).contains(&failures),
            "failure rate off: {failures}/10000"
        );
    }

    #[test]
    fn intermittent_recovers_between_failures() {
        // Unlike FailStop, failures must not latch: successes follow failures.
        let mut m = FaultMode::Intermittent { period: 4, seed: 1 };
        let outcomes: Vec<bool> = (0..64).map(|_| m.tick_should_fail()).collect();
        let first_fail = outcomes
            .iter()
            .position(|&f| f)
            .expect("no failure in 64 ops");
        assert!(
            outcomes[first_fail..].iter().any(|&f| !f),
            "intermittent mode latched into permanent failure"
        );
    }

    #[test]
    fn intermittent_period_one_always_fails() {
        let mut m = FaultMode::Intermittent { period: 1, seed: 9 };
        for _ in 0..32 {
            assert!(m.tick_should_fail());
        }
    }
}
