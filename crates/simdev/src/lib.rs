//! Simulated storage devices with deterministic virtual-time accounting.
//!
//! This crate is the hardware substrate for the Mux reproduction. The paper
//! evaluates on Intel Optane PMem 200 (persistent memory), an Optane SSD DC
//! P4800X and a Seagate Exos X18 HDD; none of those are available here, so
//! each is replaced by a [`Device`]: a RAM-backed byte store that charges a
//! deterministic *virtual* service time per operation, computed from a
//! [`DeviceProfile`] (fixed latency, bandwidth, seek model, queue submission
//! cost).
//!
//! Virtual time is accounted on a shared [`VirtualClock`]. Benchmarks derive
//! throughput and latency from virtual nanoseconds, which makes every
//! experiment deterministic and laptop-scale while preserving the *shape* of
//! the paper's results (orderings and ratios between systems).
//!
//! Crash behaviour is modelled too: writes land in a volatile write cache
//! until [`Device::flush`] (or a byte-granular [`Device::flush_range`])
//! persists them, and [`Device::crash`] discards (or tears, under
//! [`FaultMode::TornWrites`]) everything unpersisted, so the file-system
//! crates' recovery paths are exercised against genuinely lost writes.

mod clock;
mod crashplan;
mod device;
mod fault;
mod profile;
mod stats;

pub use clock::VirtualClock;
pub use crashplan::{CrashPlan, TornTail};
pub use device::{DevError, Device, DeviceConfig};
pub use fault::FaultMode;
pub use profile::{cxl_ssd, hdd, nvme_ssd, pmem, DeviceClass, DeviceProfile};
pub use stats::DeviceStats;

/// Simulation page size used by the backing store (not an access-granularity
/// constraint; byte-addressable profiles may read or write any range).
pub const SIM_PAGE: usize = 4096;
