//! Performance profiles for the device classes in the paper's hierarchy.

use serde::{Deserialize, Serialize};

/// Broad class of a storage device, as seen by tiering policies.
///
/// The ordering (`Pmem < CxlSsd < Ssd < Hdd`) reflects the storage hierarchy:
/// lower values are faster tiers. Policies use this for default
/// promote/demote directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Byte-addressable persistent memory (Optane PMem 200 in the paper).
    Pmem,
    /// CXL-attached flash with load/store access; an extensibility demo tier.
    CxlSsd,
    /// NVMe block SSD (Optane SSD DC P4800X in the paper).
    Ssd,
    /// Rotational disk (Seagate Exos X18 in the paper).
    Hdd,
}

impl DeviceClass {
    /// Short lowercase label used in reports and mount names.
    pub fn label(self) -> &'static str {
        match self {
            DeviceClass::Pmem => "pm",
            DeviceClass::CxlSsd => "cxl",
            DeviceClass::Ssd => "ssd",
            DeviceClass::Hdd => "hdd",
        }
    }

    /// Whether the device is accessed with load/store semantics (DAX-able).
    pub fn byte_addressable(self) -> bool {
        matches!(self, DeviceClass::Pmem | DeviceClass::CxlSsd)
    }
}

/// Timing model for one device.
///
/// Service time of an access of `len` bytes at offset `off`:
///
/// ```text
/// t = queue_submit_ns                       (command submission, 0 for DAX)
///   + read|write_latency_ns                 (media access setup)
///   + seek_ns (HDD only, when off is not sequential w.r.t. the last access)
///   + len * 1e9 / read|write_bw_bps         (transfer)
/// ```
///
/// Flushes charge `flush_ns` per call (a CLFLUSH+fence on PM, a FLUSH/FUA
/// command on block devices).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable model name, e.g. `"optane-pmem-200"`.
    pub name: String,
    /// Device class (drives policy defaults and DAX availability).
    pub class: DeviceClass,
    /// Fixed media latency added to every read.
    pub read_latency_ns: u64,
    /// Fixed media latency added to every write.
    pub write_latency_ns: u64,
    /// Sustained read bandwidth in bytes/second.
    pub read_bw_bps: u64,
    /// Sustained write bandwidth in bytes/second.
    pub write_bw_bps: u64,
    /// Average seek + rotational delay, charged on non-sequential access.
    /// Zero for solid-state devices.
    pub seek_ns: u64,
    /// Command submission/completion overhead (doorbell, interrupt). Zero
    /// for load/store devices.
    pub queue_submit_ns: u64,
    /// Cost of one persistence barrier (flush).
    pub flush_ns: u64,
    /// Natural access granularity in bytes: 1 for byte-addressable devices,
    /// the sector/page size for block devices. Sub-granule accesses are
    /// charged as a full granule transfer.
    pub access_granularity: u32,
}

impl DeviceProfile {
    /// Service time for reading `len` bytes at `off`, given the previous
    /// access end `last_end` (for the seek model).
    pub fn read_cost(&self, off: u64, len: u64, last_end: u64) -> u64 {
        self.xfer_cost(off, len, last_end, self.read_latency_ns, self.read_bw_bps)
    }

    /// Service time for writing `len` bytes at `off`.
    pub fn write_cost(&self, off: u64, len: u64, last_end: u64) -> u64 {
        self.xfer_cost(off, len, last_end, self.write_latency_ns, self.write_bw_bps)
    }

    fn xfer_cost(&self, off: u64, len: u64, last_end: u64, fixed: u64, bw: u64) -> u64 {
        let gran = u64::from(self.access_granularity.max(1));
        // Sub-granule and misaligned accesses transfer whole granules.
        let first = off / gran * gran;
        let last = (off + len.max(1)).div_ceil(gran) * gran;
        let moved = last - first;
        let mut t = self.queue_submit_ns + fixed;
        if self.seek_ns > 0 && off != last_end {
            t += self.seek_ns;
        }
        t + moved.saturating_mul(1_000_000_000) / bw.max(1)
    }
}

/// Intel Optane PMem 200-like persistent memory profile.
///
/// ~170 ns load latency, byte-granular, ~8.6 GB/s read and ~3.0 GB/s write
/// per DIMM, cheap cache-line flushes.
pub fn pmem() -> DeviceProfile {
    DeviceProfile {
        name: "optane-pmem-200".into(),
        class: DeviceClass::Pmem,
        read_latency_ns: 170,
        write_latency_ns: 90,
        read_bw_bps: 8_600_000_000,
        write_bw_bps: 3_000_000_000,
        seek_ns: 0,
        queue_submit_ns: 0,
        flush_ns: 120,
        access_granularity: 1,
    }
}

/// Intel Optane SSD DC P4800X-like NVMe profile.
///
/// ~10 µs per 4 KiB command, ~2.4 GB/s read / ~2.0 GB/s write, block
/// granular with NVMe submission cost.
pub fn nvme_ssd() -> DeviceProfile {
    DeviceProfile {
        name: "optane-ssd-p4800x".into(),
        class: DeviceClass::Ssd,
        read_latency_ns: 10_000,
        write_latency_ns: 10_000,
        read_bw_bps: 2_400_000_000,
        write_bw_bps: 2_000_000_000,
        seek_ns: 0,
        queue_submit_ns: 1_500,
        flush_ns: 15_000,
        access_granularity: 4096,
    }
}

/// Seagate Exos X18-like 7200 rpm SATA HDD profile.
///
/// ~4.16 ms average seek + half-rotation, ~270 MB/s streaming transfer.
pub fn hdd() -> DeviceProfile {
    DeviceProfile {
        name: "exos-x18".into(),
        class: DeviceClass::Hdd,
        read_latency_ns: 60_000,
        write_latency_ns: 60_000,
        read_bw_bps: 270_000_000,
        write_bw_bps: 270_000_000,
        seek_ns: 8_330_000,
        queue_submit_ns: 5_000,
        flush_ns: 1_000_000,
        access_granularity: 4096,
    }
}

/// CXL-attached SSD profile (Samsung CMM-style), used by the extensibility
/// example to demonstrate adding a fourth tier at runtime.
pub fn cxl_ssd() -> DeviceProfile {
    DeviceProfile {
        name: "cxl-ssd".into(),
        class: DeviceClass::CxlSsd,
        read_latency_ns: 600,
        write_latency_ns: 900,
        read_bw_bps: 5_000_000_000,
        write_bw_bps: 2_500_000_000,
        seek_ns: 0,
        queue_submit_ns: 0,
        flush_ns: 400,
        access_granularity: 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ordering_matches_hierarchy() {
        assert!(DeviceClass::Pmem < DeviceClass::CxlSsd);
        assert!(DeviceClass::CxlSsd < DeviceClass::Ssd);
        assert!(DeviceClass::Ssd < DeviceClass::Hdd);
    }

    #[test]
    fn byte_addressability() {
        assert!(DeviceClass::Pmem.byte_addressable());
        assert!(DeviceClass::CxlSsd.byte_addressable());
        assert!(!DeviceClass::Ssd.byte_addressable());
        assert!(!DeviceClass::Hdd.byte_addressable());
    }

    #[test]
    fn pmem_single_byte_read_is_cheap() {
        let p = pmem();
        let t = p.read_cost(123, 1, 0);
        // Fixed latency plus a one-byte transfer: well under a microsecond.
        assert!(t >= p.read_latency_ns);
        assert!(t < 1_000, "pmem 1B read should be <1us, got {t}ns");
    }

    #[test]
    fn ssd_charges_full_block_for_one_byte() {
        let p = nvme_ssd();
        let one = p.read_cost(5, 1, 0);
        let full = p.read_cost(4096, 4096, 0);
        // Both move one 4 KiB block.
        assert_eq!(one, full);
        assert!(one > 10_000);
    }

    #[test]
    fn hdd_seek_charged_only_on_discontinuity() {
        let p = hdd();
        let seq = p.read_cost(8192, 4096, 8192);
        let rand = p.read_cost(1 << 30, 4096, 8192);
        assert!(rand > seq + p.seek_ns / 2);
        assert_eq!(rand - seq, p.seek_ns);
    }

    #[test]
    fn misaligned_access_spans_two_blocks() {
        let p = nvme_ssd();
        let aligned = p.read_cost(0, 4096, 0);
        let misaligned = p.read_cost(4000, 200, 0);
        // 4000..4200 touches two 4 KiB granules.
        assert!(misaligned > aligned);
    }

    #[test]
    fn bandwidth_term_scales_with_length() {
        let p = pmem();
        let small = p.write_cost(0, 4096, 0);
        let big = p.write_cost(0, 4 << 20, 0);
        assert!(big > small * 100);
    }

    #[test]
    fn sequential_hdd_throughput_near_streaming_rate() {
        let p = hdd();
        // 64 MiB sequential in 1 MiB chunks.
        let chunk = 1u64 << 20;
        let mut t = 0;
        let mut off = 0;
        for _ in 0..64 {
            t += p.write_cost(off, chunk, off);
            off += chunk;
        }
        let bytes = 64.0 * chunk as f64;
        let mbps = bytes / (t as f64 / 1e9) / 1e6;
        assert!(
            (200.0..=275.0).contains(&mbps),
            "expected ~270 MB/s streaming, got {mbps:.1}"
        );
    }
}
