//! Per-device operation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative statistics for one device.
///
/// All fields are atomics so devices can be shared across threads; readers
/// take a consistent-enough snapshot via [`DeviceStats::snapshot`].
#[derive(Debug, Default)]
pub struct DeviceStats {
    /// Number of read operations.
    pub reads: AtomicU64,
    /// Number of write operations.
    pub writes: AtomicU64,
    /// Number of flush (persistence barrier) operations.
    pub flushes: AtomicU64,
    /// Total bytes read.
    pub bytes_read: AtomicU64,
    /// Total bytes written.
    pub bytes_written: AtomicU64,
    /// Seeks charged by the HDD model.
    pub seeks: AtomicU64,
    /// Silent corruptions injected by the fault layer: bits rotted, writes
    /// lost, writes misdirected. The caller saw no error for any of these —
    /// this counter is the ground truth integrity checkers are measured
    /// against.
    pub corruptions: AtomicU64,
    /// Total virtual nanoseconds this device was busy.
    pub busy_ns: AtomicU64,
    /// Busy nanoseconds attributable to reads (service-time attribution;
    /// `read_busy_ns + write_busy_ns + flush_busy_ns == busy_ns`).
    pub read_busy_ns: AtomicU64,
    /// Busy nanoseconds attributable to writes.
    pub write_busy_ns: AtomicU64,
    /// Busy nanoseconds attributable to flushes.
    pub flush_busy_ns: AtomicU64,
}

/// A plain-old-data copy of [`DeviceStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Number of flush operations.
    pub flushes: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Seeks charged by the HDD model.
    pub seeks: u64,
    /// Silent corruptions injected by the fault layer.
    pub corruptions: u64,
    /// Total virtual nanoseconds busy.
    pub busy_ns: u64,
    /// Busy nanoseconds attributable to reads.
    pub read_busy_ns: u64,
    /// Busy nanoseconds attributable to writes.
    pub write_busy_ns: u64,
    /// Busy nanoseconds attributable to flushes.
    pub flush_busy_ns: u64,
}

impl DeviceStats {
    /// Records a read of `bytes` taking `ns` of device time.
    pub fn on_read(&self, bytes: u64, ns: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        self.read_busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records a write of `bytes` taking `ns` of device time.
    pub fn on_write(&self, bytes: u64, ns: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        self.write_busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records a flush taking `ns`.
    pub fn on_flush(&self, ns: u64) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        self.flush_busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one seek.
    pub fn on_seek(&self) {
        self.seeks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one silently injected corruption (rot / lost / misdirect).
    pub fn on_corruption(&self) {
        self.corruptions.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            read_busy_ns: self.read_busy_ns.load(Ordering::Relaxed),
            write_busy_ns: self.write_busy_ns.load(Ordering::Relaxed),
            flush_busy_ns: self.flush_busy_ns.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
        self.corruptions.store(0, Ordering::Relaxed);
        self.busy_ns.store(0, Ordering::Relaxed);
        self.read_busy_ns.store(0, Ordering::Relaxed);
        self.write_busy_ns.store(0, Ordering::Relaxed);
        self.flush_busy_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DeviceStats::default();
        s.on_read(100, 10);
        s.on_read(50, 5);
        s.on_write(200, 20);
        s.on_flush(3);
        s.on_seek();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.bytes_read, 150);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.bytes_written, 200);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.seeks, 1);
        assert_eq!(snap.busy_ns, 38);
        assert_eq!(snap.read_busy_ns, 15);
        assert_eq!(snap.write_busy_ns, 20);
        assert_eq!(snap.flush_busy_ns, 3);
        assert_eq!(
            snap.read_busy_ns + snap.write_busy_ns + snap.flush_busy_ns,
            snap.busy_ns,
            "per-op attribution partitions total busy time"
        );
    }

    #[test]
    fn reset_clears_everything() {
        let s = DeviceStats::default();
        s.on_write(1, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
