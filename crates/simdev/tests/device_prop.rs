//! Property tests: the simulated device behaves like a flat byte array
//! with write-cache crash semantics.

use proptest::prelude::*;
use simdev::{Device, DeviceConfig, VirtualClock};

const CAP: u64 = 1 << 16;

#[derive(Debug, Clone)]
enum Op {
    Write { off: u64, len: u64, fill: u8 },
    Read { off: u64, len: u64 },
    Flush,
    FlushRange { off: u64, len: u64 },
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..CAP - 1, 1..512u64, any::<u8>()).prop_map(|(off, len, fill)| Op::Write {
            off,
            len,
            fill
        }),
        3 => (0..CAP, 1..512u64).prop_map(|(off, len)| Op::Read { off, len }),
        1 => Just(Op::Flush),
        1 => (0..CAP - 1, 1..512u64).prop_map(|(off, len)| Op::FlushRange { off, len }),
        1 => Just(Op::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn device_matches_model_with_crash_semantics(
        ops in proptest::collection::vec(op_strategy(), 1..48)
    ) {
        let dev = Device::new(
            DeviceConfig {
                profile: simdev::pmem(),
                capacity: CAP,
                track_durability: true,
            },
            VirtualClock::new(),
        );
        // Two models: current (volatile view) and persisted.
        let mut cur = vec![0u8; CAP as usize];
        let mut durable = vec![0u8; CAP as usize];
        // Unflushed ranges (for crash rollback): keep it simple by
        // re-deriving durable state only at flush points.
        for op in &ops {
            match *op {
                Op::Write { off, len, fill } => {
                    let len = len.min(CAP - off);
                    dev.write(off, &vec![fill; len as usize]).unwrap();
                    cur[off as usize..(off + len) as usize].fill(fill);
                }
                Op::Read { off, len } => {
                    let len = len.min(CAP.saturating_sub(off));
                    if len == 0 {
                        continue;
                    }
                    let mut buf = vec![0u8; len as usize];
                    dev.read(off, &mut buf).unwrap();
                    prop_assert_eq!(&buf[..], &cur[off as usize..(off + len) as usize]);
                }
                Op::Flush => {
                    dev.flush();
                    durable.copy_from_slice(&cur);
                }
                Op::FlushRange { off, len } => {
                    let len = len.min(CAP - off);
                    dev.flush_range(off, len);
                    // Byte-precise range persistence is only guaranteed for
                    // writes fully inside the range; model conservatively by
                    // persisting exactly that range's current content only
                    // when no partially-overlapping unflushed write exists.
                    // To keep the model exact, fall back to checking reads
                    // only (handled by `cur`); durability of the range is
                    // checked via the full-flush and crash cases.
                    let _ = len;
                }
                Op::Crash => {
                    dev.crash();
                    // Everything unflushed rolls back… except ranges that
                    // were flush_range'd, which we conservatively do not
                    // model — so resynchronize `cur` from the device
                    // itself and only assert it never contains bytes that
                    // are neither durable nor currently-written values.
                    let mut now = vec![0u8; CAP as usize];
                    dev.read(0, &mut now).unwrap();
                    for i in 0..CAP as usize {
                        prop_assert!(
                            now[i] == durable[i] || now[i] == cur[i],
                            "byte {} is {} but must be durable({}) or last-written({})",
                            i, now[i], durable[i], cur[i]
                        );
                    }
                    cur = now.clone();
                    durable = now;
                }
            }
        }
    }

    #[test]
    fn untracked_device_is_a_plain_byte_array(
        ops in proptest::collection::vec(op_strategy(), 1..48)
    ) {
        let dev = Device::new(
            DeviceConfig {
                profile: simdev::nvme_ssd(),
                capacity: CAP,
                track_durability: false,
            },
            VirtualClock::new(),
        );
        let mut model = vec![0u8; CAP as usize];
        for op in &ops {
            match *op {
                Op::Write { off, len, fill } => {
                    let len = len.min(CAP - off);
                    dev.write(off, &vec![fill; len as usize]).unwrap();
                    model[off as usize..(off + len) as usize].fill(fill);
                }
                Op::Crash => dev.crash(), // no-op for data: nothing tracked
                Op::Flush => {
                    dev.flush();
                }
                Op::FlushRange { off, len } => {
                    dev.flush_range(off, len.min(CAP - off));
                }
                Op::Read { off, len } => {
                    let len = len.min(CAP.saturating_sub(off));
                    if len == 0 {
                        continue;
                    }
                    let mut buf = vec![0u8; len as usize];
                    dev.read(off, &mut buf).unwrap();
                    prop_assert_eq!(&buf[..], &model[off as usize..(off + len) as usize]);
                }
            }
        }
        // Final full comparison.
        let mut now = vec![0u8; CAP as usize];
        dev.read(0, &mut now).unwrap();
        prop_assert_eq!(now, model);
    }
}
