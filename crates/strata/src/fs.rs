//! The Strata-like file system: log-structured writes, digestion, static
//! eviction routing.

use std::collections::{BTreeMap, HashMap};

use parking_lot::Mutex;
use simdev::{Device, DeviceClass};
use tvfs::{
    DirEntry, FileAttr, FileSystem, FileType, InodeNo, RangeMap, Segmentable, SetAttr, StatFs,
    VfsError, VfsResult, ROOT_INO,
};

use crate::log::UpdateLog;

/// Block size of the shared areas.
pub const BLOCK: u64 = 4096;

/// Device index within the hierarchy.
pub const PM: usize = 0;
/// SSD index.
pub const SSD: usize = 1;
/// HDD index.
pub const HDD: usize = 2;

/// A block location: device index + block number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loc {
    /// Device index (PM/SSD/HDD).
    pub dev: usize,
    /// Block number on that device.
    pub block: u64,
}

impl Segmentable for Loc {
    fn advance(&self, delta: u64) -> Self {
        Loc {
            dev: self.dev,
            block: self.block + delta,
        }
    }

    fn can_append(&self, len: u64, other: &Self) -> bool {
        self.dev == other.dev && self.block + len == other.block
    }
}

/// Digest-coalescing tag: identifies which log entry's bytes win for a
/// byte range (overlay semantics come from `RangeMap::insert` overwrite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CoalesceTag(u64);

impl Segmentable for CoalesceTag {
    fn advance(&self, _delta: u64) -> Self {
        *self
    }

    fn can_append(&self, _len: u64, other: &Self) -> bool {
        self == other
    }
}

/// Collects full-block shared-area writes during a digest pass and submits
/// them per device in block order with contiguous runs merged — the
/// batching the digest thread performs before hitting the devices.
#[derive(Debug, Default)]
struct WriteBatch {
    per_dev: [Vec<(u64, Vec<u8>)>; 3],
}

impl WriteBatch {
    fn push(&mut self, dev: usize, block: u64, data: Vec<u8>) {
        debug_assert_eq!(data.len() as u64 % BLOCK, 0);
        self.per_dev[dev].push((block, data));
    }

    fn flush(&mut self, devs: &[Device; 3]) -> VfsResult<()> {
        for (dev, list) in self.per_dev.iter_mut().enumerate() {
            if list.is_empty() {
                continue;
            }
            list.sort_by_key(|(b, _)| *b);
            let mut i = 0usize;
            while i < list.len() {
                let start = list[i].0;
                let mut blob: Vec<u8> = Vec::new();
                let mut next = start;
                while i < list.len() && list[i].0 == next {
                    next += list[i].1.len() as u64 / BLOCK;
                    blob.extend_from_slice(&list[i].1);
                    i += 1;
                }
                devs[dev].write(start * BLOCK, &blob)?;
            }
            list.clear();
        }
        Ok(())
    }
}

/// Tunables for [`StrataFs`].
#[derive(Debug, Clone)]
pub struct StrataOptions {
    /// Update-log region size on PM.
    pub log_bytes: u64,
    /// Log utilization that triggers digestion.
    pub digest_threshold: f64,
    /// LibFS software-path cost per operation (virtual ns).
    pub software_op_ns: u64,
    /// KernFS cost per digested log entry (virtual ns).
    pub digest_entry_ns: u64,
    /// Shared-area utilization that triggers eviction.
    pub high_watermark: f64,
    /// Eviction target utilization.
    pub low_watermark: f64,
    /// Blocks moved per migration/eviction chunk. Strata moves data at
    /// digest granularity through its extent tree, far below the device's
    /// optimal transfer size — one of the reasons Mux's bulk copies beat
    /// it in Figure 3a.
    pub migrate_chunk_blocks: u64,
    /// Virtual ns of extent-tree surgery per migrated chunk: the tree is
    /// partially locked, entries are unhooked, relocated and rehooked —
    /// "the file extent tree ... has to be partially locked during
    /// block-level data migration" (§3.1).
    pub migrate_chunk_ns: u64,
}

impl Default for StrataOptions {
    fn default() -> Self {
        StrataOptions {
            log_bytes: 16 << 20,
            digest_threshold: 0.75,
            software_op_ns: 700,
            digest_entry_ns: 250,
            high_watermark: 0.90,
            low_watermark: 0.70,
            migrate_chunk_blocks: 3,
            migrate_chunk_ns: 3_400,
        }
    }
}

/// A minimal per-device block free list.
#[derive(Debug)]
struct BlockAlloc {
    free: BTreeMap<u64, u64>,
    free_blocks: u64,
    total: u64,
}

impl BlockAlloc {
    fn new(start: u64, end: u64) -> Self {
        let mut free = BTreeMap::new();
        if end > start {
            free.insert(start, end - start);
        }
        BlockAlloc {
            free,
            free_blocks: end.saturating_sub(start),
            total: end.saturating_sub(start),
        }
    }

    fn alloc(&mut self, want: u64) -> Option<(u64, u64)> {
        let (&s, &l) = self
            .free
            .iter()
            .find(|(_, &l)| l >= want)
            .or_else(|| self.free.iter().max_by_key(|(_, &l)| l))?;
        let take = l.min(want);
        self.free.remove(&s);
        if take < l {
            self.free.insert(s + take, l - take);
        }
        self.free_blocks -= take;
        Some((s, take))
    }

    fn free_run(&mut self, start: u64, len: u64) {
        self.free_blocks += len;
        let mut start = start;
        let mut len = len;
        if let Some((&s, &l)) = self.free.range(..start).next_back() {
            if s + l == start {
                self.free.remove(&s);
                start = s;
                len += l;
            }
        }
        if let Some((&s, &l)) = self.free.range(start + len..).next() {
            if start + len == s {
                self.free.remove(&s);
                len += l;
            }
        }
        self.free.insert(start, len);
    }

    fn utilization(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        1.0 - self.free_blocks as f64 / self.total as f64
    }
}

struct SFile {
    attr: FileAttr,
    extents: RangeMap<Loc>,
    last_access_ns: u64,
}

struct SDir {
    attr: FileAttr,
    entries: BTreeMap<String, InodeNo>,
}

struct Inner {
    log: UpdateLog,
    alloc: [BlockAlloc; 3],
    files: HashMap<InodeNo, SFile>,
    dirs: HashMap<InodeNo, SDir>,
    next_ino: InodeNo,
    /// Forced digestion target (benchmark knob); `None` = PM shared area.
    placement_target: Option<usize>,
}

/// The monolithic tiered file system.
pub struct StrataFs {
    devs: [Device; 3],
    opts: StrataOptions,
    inner: Mutex<Inner>,
}

impl StrataFs {
    /// Builds Strata over the three devices of the paper's hierarchy.
    pub fn new(pm: Device, ssd: Device, hdd: Device, opts: StrataOptions) -> Self {
        let log_blocks = opts.log_bytes.div_ceil(BLOCK);
        let pm_blocks = pm.capacity() / BLOCK;
        let ssd_blocks = ssd.capacity() / BLOCK;
        let hdd_blocks = hdd.capacity() / BLOCK;
        let mut dirs = HashMap::new();
        let mut attr = FileAttr::new(ROOT_INO, FileType::Directory, 0o755, 0);
        attr.nlink = 2;
        dirs.insert(
            ROOT_INO,
            SDir {
                attr,
                entries: BTreeMap::new(),
            },
        );
        StrataFs {
            inner: Mutex::new(Inner {
                log: UpdateLog::new(0, opts.log_bytes),
                alloc: [
                    BlockAlloc::new(log_blocks, pm_blocks),
                    BlockAlloc::new(0, ssd_blocks),
                    BlockAlloc::new(0, hdd_blocks),
                ],
                files: HashMap::new(),
                dirs,
                next_ino: ROOT_INO + 1,
                placement_target: None,
            }),
            devs: [pm, ssd, hdd],
            opts,
        }
    }

    /// Devices, for statistics in benchmarks.
    pub fn devices(&self) -> &[Device; 3] {
        &self.devs
    }

    /// Forces digestion to place data on one device (benchmark knob that
    /// models "the I/O request is always directed to the target devices").
    pub fn set_placement_target(&self, dev: Option<usize>) {
        self.inner.lock().placement_target = dev;
    }

    fn charge_sw(&self) {
        self.devs[PM].clock().advance(self.opts.software_op_ns);
    }

    fn now(&self) -> u64 {
        self.devs[PM].clock().now_ns()
    }

    /// Digests every log entry into the shared areas. The per-file extent
    /// tree is effectively locked for the whole pass (we hold the global
    /// lock), which is the coarse-locking behaviour §3.1 calls out.
    ///
    /// Entries are coalesced per file before applying (adjacent and
    /// overlapping ranges merge, later data wins), as the real digest
    /// does; each merged range then becomes bulk shared-area writes.
    fn digest(&self, inner: &mut Inner) -> VfsResult<()> {
        let n = inner.log.len();
        if n == 0 {
            return Ok(());
        }
        // Coalesce: per file, overlay entries in append order.
        let mut per_file: HashMap<InodeNo, RangeMap<CoalesceTag>> = HashMap::new();
        let mut payloads: Vec<(u64, Vec<u8>)> = Vec::with_capacity(n);
        for i in 0..n {
            let entry = inner.log.read_entry(&self.devs[PM], i)?;
            self.devs[PM].clock().advance(self.opts.digest_entry_ns);
            let map = per_file.entry(entry.ino).or_insert_with(RangeMap::new);
            map.insert(entry.off, entry.data.len() as u64, CoalesceTag(i as u64));
            payloads.push((entry.off, entry.data));
        }
        let target = inner.placement_target.unwrap_or(PM);
        let mut batch = WriteBatch::default();
        for (ino, map) in per_file {
            // Build merged byte runs; within each run, materialize the
            // winning bytes, then apply as one bulk write.
            let mut run_start: Option<u64> = None;
            let mut run_data: Vec<u8> = Vec::new();
            let flush_run = |inner: &mut Inner,
                             batch: &mut WriteBatch,
                             start: Option<u64>,
                             data: &mut Vec<u8>|
             -> VfsResult<()> {
                if let Some(s) = start {
                    if !data.is_empty() {
                        self.apply_to_shared(inner, ino, s, data, target, Some(batch))?;
                        data.clear();
                    }
                }
                Ok(())
            };
            for e in map.iter() {
                let (entry_off, ref bytes) = payloads[e.value.0 as usize];
                let piece =
                    &bytes[(e.start - entry_off) as usize..(e.start - entry_off + e.len) as usize];
                match run_start {
                    Some(s) if s + run_data.len() as u64 == e.start => {
                        run_data.extend_from_slice(piece);
                    }
                    _ => {
                        flush_run(inner, &mut batch, run_start, &mut run_data)?;
                        run_start = Some(e.start);
                        run_data.extend_from_slice(piece);
                    }
                }
            }
            flush_run(inner, &mut batch, run_start, &mut run_data)?;
        }
        batch.flush(&self.devs)?;
        inner.log.truncate();
        // Space pressure on PM? Evict via the static paths.
        self.maybe_evict(inner)?;
        Ok(())
    }

    /// Writes bytes into the shared area of `target`, allocating blocks
    /// for unmapped ranges in bulk (one device command per contiguous
    /// run) and read-modify-writing partial blocks.
    fn apply_to_shared(
        &self,
        inner: &mut Inner,
        ino: InodeNo,
        off: u64,
        data: &[u8],
        target: usize,
        mut batch: Option<&mut WriteBatch>,
    ) -> VfsResult<()> {
        if data.is_empty() {
            return Ok(());
        }
        if !inner.files.contains_key(&ino) {
            return Err(VfsError::NotFound);
        }
        let end = off + data.len() as u64;
        let first = off / BLOCK;
        let last = (end - 1) / BLOCK;
        let mut pg = first;
        while pg <= last {
            // Find a homogeneous stretch: same current placement state.
            let cur = inner.files[&ino].extents.get(pg);
            let mut stretch = 1u64;
            while pg + stretch <= last {
                let nxt = inner.files[&ino].extents.get(pg + stretch);
                let same = match (cur, nxt) {
                    (Some(a), Some(b)) => a.dev == b.dev && b.block == a.block + stretch,
                    (None, None) => true,
                    _ => false,
                };
                if !same {
                    break;
                }
                stretch += 1;
            }
            // Materialize the stretch's bytes (RMW partial head/tail).
            let s_start = (pg * BLOCK).max(off);
            let s_end = ((pg + stretch) * BLOCK).min(end);
            let mut blob = vec![0u8; (stretch * BLOCK) as usize];
            let head_partial = s_start > pg * BLOCK;
            let tail_partial = s_end < (pg + stretch) * BLOCK;
            if head_partial || tail_partial {
                if let Some(loc) = cur {
                    // Preserve existing block content around the write.
                    self.devs[loc.dev].read(loc.block * BLOCK, &mut blob[..BLOCK as usize])?;
                    if stretch > 1 {
                        let tail_loc = loc.advance(stretch - 1);
                        self.devs[tail_loc.dev].read(
                            tail_loc.block * BLOCK,
                            &mut blob[((stretch - 1) * BLOCK) as usize..],
                        )?;
                    }
                }
            }
            blob[(s_start - pg * BLOCK) as usize..(s_end - pg * BLOCK) as usize]
                .copy_from_slice(&data[(s_start - off) as usize..(s_end - off) as usize]);
            let full_blocks = !head_partial && !tail_partial;
            match cur {
                Some(loc) if loc.dev == target => {
                    // In-place bulk overwrite.
                    if let (true, Some(b)) = (full_blocks, batch.as_deref_mut()) {
                        b.push(target, loc.block, blob.clone());
                    } else {
                        self.devs[target].write(loc.block * BLOCK, &blob)?;
                    }
                }
                other => {
                    // (Re)allocate on the target and write in bulk runs.
                    if let Some(old) = other {
                        inner.alloc[old.dev].free_run(old.block, stretch);
                    }
                    let mut placed = 0u64;
                    while placed < stretch {
                        let (s, got) = inner.alloc[target]
                            .alloc(stretch - placed)
                            .ok_or(VfsError::NoSpace)?;
                        let piece =
                            &blob[(placed * BLOCK) as usize..((placed + got) * BLOCK) as usize];
                        if let (true, Some(b)) = (full_blocks, batch.as_deref_mut()) {
                            b.push(target, s, piece.to_vec());
                        } else {
                            self.devs[target].write(s * BLOCK, piece)?;
                        }
                        let f = inner.files.get_mut(&ino).expect("checked");
                        f.extents.insert(
                            pg + placed,
                            got,
                            Loc {
                                dev: target,
                                block: s,
                            },
                        );
                        placed += got;
                    }
                }
            }
            pg += stretch;
        }
        let f = inner.files.get_mut(&ino).expect("checked");
        f.attr.blocks_bytes = f.extents.covered() * BLOCK;
        Ok(())
    }

    /// Evicts cold data when PM crosses the high watermark. Only the wired
    /// paths exist: PM→SSD, then PM→HDD when the SSD is also full.
    fn maybe_evict(&self, inner: &mut Inner) -> VfsResult<()> {
        if inner.alloc[PM].utilization() <= self.opts.high_watermark {
            return Ok(());
        }
        let want_free = ((self.opts.high_watermark - self.opts.low_watermark)
            * inner.alloc[PM].total as f64) as u64;
        // Coldest files first.
        let mut order: Vec<(u64, InodeNo)> = inner
            .files
            .iter()
            .map(|(&i, f)| (f.last_access_ns, i))
            .collect();
        order.sort_unstable();
        let mut freed = 0u64;
        for (_, ino) in order {
            if freed >= want_free {
                break;
            }
            let target = if inner.alloc[SSD].utilization() < self.opts.high_watermark {
                SSD
            } else {
                HDD
            };
            freed += self.move_file_blocks(inner, ino, PM, target, u64::MAX)?;
        }
        Ok(())
    }

    /// Moves up to `max_blocks` of `ino`'s blocks from `from` to `to`
    /// under the global lock (the extent tree stays locked throughout).
    fn move_file_blocks(
        &self,
        inner: &mut Inner,
        ino: InodeNo,
        from: usize,
        to: usize,
        max_blocks: u64,
    ) -> VfsResult<u64> {
        let victims: Vec<(u64, u64, Loc)> = {
            let Some(f) = inner.files.get(&ino) else {
                return Ok(0);
            };
            f.extents
                .iter()
                .filter(|e| e.value.dev == from)
                .map(|e| (e.start, e.len, e.value))
                .take(1024)
                .collect()
        };
        let chunk = self.opts.migrate_chunk_blocks.max(1);
        let mut moved = 0u64;
        for (pg, len, loc) in victims {
            if moved >= max_blocks {
                break;
            }
            let n = len.min(max_blocks - moved);
            // Strata moves at digest-chunk granularity: each chunk is a
            // separate read + allocate + write round trip.
            let mut done = 0u64;
            while done < n {
                let piece = chunk.min(n - done);
                self.devs[PM].clock().advance(self.opts.migrate_chunk_ns);
                let mut buf = vec![0u8; (piece * BLOCK) as usize];
                self.devs[from].read((loc.block + done) * BLOCK, &mut buf)?;
                let mut placed = 0u64;
                while placed < piece {
                    let (s, got) = inner.alloc[to]
                        .alloc(piece - placed)
                        .ok_or(VfsError::NoSpace)?;
                    self.devs[to].write(
                        s * BLOCK,
                        &buf[(placed * BLOCK) as usize..((placed + got) * BLOCK) as usize],
                    )?;
                    let f = inner.files.get_mut(&ino).expect("checked");
                    f.extents
                        .insert(pg + done + placed, got, Loc { dev: to, block: s });
                    placed += got;
                }
                done += piece;
            }
            inner.alloc[from].free_run(loc.block, n);
            moved += n;
        }
        Ok(moved)
    }

    /// Explicit data migration between device classes — the Figure 3a
    /// experiment. Strata's wiring supports **PM→SSD and PM→HDD only**;
    /// every other pair returns [`VfsError::NotSupported`].
    pub fn migrate(&self, from: DeviceClass, to: DeviceClass, max_blocks: u64) -> VfsResult<u64> {
        let (from, to) = match (from, to) {
            (DeviceClass::Pmem, DeviceClass::Ssd) => (PM, SSD),
            (DeviceClass::Pmem, DeviceClass::Hdd) => (PM, HDD),
            _ => return Err(VfsError::NotSupported),
        };
        let mut inner = self.inner.lock();
        // Digest first so log-resident data is in the shared area.
        self.digest(&mut inner)?;
        let inos: Vec<InodeNo> = inner.files.keys().copied().collect();
        let mut moved = 0u64;
        for ino in inos {
            if moved >= max_blocks {
                break;
            }
            moved += self.move_file_blocks(&mut inner, ino, from, to, max_blocks - moved)?;
        }
        Ok(moved)
    }

    /// Forces a full digest (benchmarks call this to drain the log).
    pub fn force_digest(&self) -> VfsResult<()> {
        let mut inner = self.inner.lock();
        self.digest(&mut inner)
    }
}

impl FileSystem for StrataFs {
    fn fs_name(&self) -> &str {
        "strata"
    }

    fn lookup(&self, parent: InodeNo, name: &str) -> VfsResult<FileAttr> {
        self.charge_sw();
        let inner = self.inner.lock();
        let dir = inner.dirs.get(&parent).ok_or(VfsError::NotDir)?;
        let &ino = dir.entries.get(name).ok_or(VfsError::NotFound)?;
        inner
            .files
            .get(&ino)
            .map(|f| f.attr)
            .or_else(|| inner.dirs.get(&ino).map(|d| d.attr))
            .ok_or(VfsError::Stale)
    }

    fn getattr(&self, ino: InodeNo) -> VfsResult<FileAttr> {
        self.charge_sw();
        let inner = self.inner.lock();
        inner
            .files
            .get(&ino)
            .map(|f| f.attr)
            .or_else(|| inner.dirs.get(&ino).map(|d| d.attr))
            .ok_or(VfsError::NotFound)
    }

    fn setattr(&self, ino: InodeNo, set: &SetAttr) -> VfsResult<FileAttr> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        if let Some(new_size) = set.size {
            // Truncation interacts with the log: digest first for
            // simplicity (Strata defers; we keep semantics clean).
            self.digest(&mut inner)?;
            let f = inner.files.get_mut(&ino).ok_or(VfsError::NotFound)?;
            if new_size < f.attr.size {
                let first_dead = new_size.div_ceil(BLOCK);
                let freed: Vec<(u64, u64, Loc)> = f
                    .extents
                    .iter()
                    .filter(|e| e.start >= first_dead)
                    .map(|e| (e.start, e.len, e.value))
                    .collect();
                let end = f.attr.size.div_ceil(BLOCK).max(first_dead);
                f.extents.remove(first_dead, end - first_dead);
                if new_size % BLOCK != 0 {
                    if let Some(loc) = f.extents.get(new_size / BLOCK) {
                        let in_pg = new_size % BLOCK;
                        let zeros = vec![0u8; (BLOCK - in_pg) as usize];
                        self.devs[loc.dev].write(loc.block * BLOCK + in_pg, &zeros)?;
                    }
                }
                for (_, len, loc) in freed {
                    inner.alloc[loc.dev].free_run(loc.block, len);
                }
            }
            let f = inner.files.get_mut(&ino).expect("checked");
            f.attr.size = new_size;
            f.attr.blocks_bytes = f.extents.covered() * BLOCK;
        }
        let attr = {
            let inner = &mut *inner;
            let a = if let Some(f) = inner.files.get_mut(&ino) {
                &mut f.attr
            } else if let Some(d) = inner.dirs.get_mut(&ino) {
                &mut d.attr
            } else {
                return Err(VfsError::NotFound);
            };
            if let Some(m) = set.mode {
                a.mode = m;
            }
            if let Some(u) = set.uid {
                a.uid = u;
            }
            if let Some(g) = set.gid {
                a.gid = g;
            }
            if let Some(t) = set.atime_ns {
                a.atime_ns = t;
            }
            if let Some(t) = set.mtime_ns {
                a.mtime_ns = t;
            }
            *a
        };
        Ok(attr)
    }

    fn create(
        &self,
        parent: InodeNo,
        name: &str,
        kind: FileType,
        mode: u32,
    ) -> VfsResult<FileAttr> {
        if name.is_empty() || name.contains('/') {
            return Err(VfsError::InvalidArgument("bad name".into()));
        }
        self.charge_sw();
        let mut inner = self.inner.lock();
        if !inner.dirs.contains_key(&parent) {
            return Err(VfsError::NotDir);
        }
        if inner.dirs[&parent].entries.contains_key(name) {
            return Err(VfsError::Exists);
        }
        let ino = inner.next_ino;
        inner.next_ino += 1;
        let now = self.now();
        let mut attr = FileAttr::new(ino, kind, mode, now);
        match kind {
            FileType::Regular => {
                inner.files.insert(
                    ino,
                    SFile {
                        attr,
                        extents: RangeMap::new(),
                        last_access_ns: now,
                    },
                );
            }
            FileType::Directory => {
                attr.nlink = 2;
                inner.dirs.insert(
                    ino,
                    SDir {
                        attr,
                        entries: BTreeMap::new(),
                    },
                );
            }
        }
        inner
            .dirs
            .get_mut(&parent)
            .expect("checked")
            .entries
            .insert(name.to_string(), ino);
        Ok(attr)
    }

    fn unlink(&self, parent: InodeNo, name: &str) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let ino = {
            let dir = inner.dirs.get(&parent).ok_or(VfsError::NotDir)?;
            *dir.entries.get(name).ok_or(VfsError::NotFound)?
        };
        if let Some(d) = inner.dirs.get(&ino) {
            if !d.entries.is_empty() {
                return Err(VfsError::NotEmpty);
            }
        }
        inner
            .dirs
            .get_mut(&parent)
            .expect("checked")
            .entries
            .remove(name);
        inner.log.drop_file_entries(ino);
        if let Some(f) = inner.files.remove(&ino) {
            for e in f.extents.iter() {
                inner.alloc[e.value.dev].free_run(e.value.block, e.len);
            }
        }
        inner.dirs.remove(&ino);
        Ok(())
    }

    fn rename(
        &self,
        parent: InodeNo,
        name: &str,
        new_parent: InodeNo,
        new_name: &str,
    ) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let ino = {
            let dir = inner.dirs.get(&parent).ok_or(VfsError::NotDir)?;
            *dir.entries.get(name).ok_or(VfsError::NotFound)?
        };
        if let Some(&existing) = inner
            .dirs
            .get(&new_parent)
            .ok_or(VfsError::NotDir)?
            .entries
            .get(new_name)
        {
            if existing != ino {
                if let Some(d) = inner.dirs.get(&existing) {
                    if !d.entries.is_empty() {
                        return Err(VfsError::NotEmpty);
                    }
                }
                inner.log.drop_file_entries(existing);
                if let Some(f) = inner.files.remove(&existing) {
                    for e in f.extents.iter() {
                        inner.alloc[e.value.dev].free_run(e.value.block, e.len);
                    }
                }
                inner.dirs.remove(&existing);
            }
        }
        inner
            .dirs
            .get_mut(&parent)
            .expect("checked")
            .entries
            .remove(name);
        inner
            .dirs
            .get_mut(&new_parent)
            .expect("checked")
            .entries
            .insert(new_name.to_string(), ino);
        Ok(())
    }

    fn readdir(&self, ino: InodeNo) -> VfsResult<Vec<DirEntry>> {
        self.charge_sw();
        let inner = self.inner.lock();
        let dir = inner.dirs.get(&ino).ok_or(VfsError::NotDir)?;
        Ok(dir
            .entries
            .iter()
            .map(|(name, &child)| DirEntry {
                name: name.clone(),
                ino: child,
                kind: if inner.dirs.contains_key(&child) {
                    FileType::Directory
                } else {
                    FileType::Regular
                },
            })
            .collect())
    }

    fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> VfsResult<usize> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        let size = {
            let f = inner.files.get(&ino).ok_or(VfsError::NotFound)?;
            f.attr.size
        };
        if off >= size {
            return Ok(0);
        }
        let n = buf.len().min((size - off) as usize);
        // Shared-area content first.
        {
            let f = inner.files.get(&ino).expect("checked");
            let first = off / BLOCK;
            let last = (off + n as u64 - 1) / BLOCK;
            buf[..n].fill(0);
            for e in f.extents.overlapping(first, last - first + 1) {
                let seg_start = (e.start * BLOCK).max(off);
                let seg_end = ((e.start + e.len) * BLOCK).min(off + n as u64);
                let dev_off = e.value.block * BLOCK + (seg_start - e.start * BLOCK);
                self.devs[e.value.dev].read(
                    dev_off,
                    &mut buf[(seg_start - off) as usize..(seg_end - off) as usize],
                )?;
            }
        }
        // Overlay newer log data (append order = newest last).
        let overlaps = inner.log.overlaps(ino, off, n as u64);
        for (idx, s, l) in overlaps {
            let e = inner.log.read_entry(&self.devs[PM], idx)?;
            let src = (s - e.off) as usize;
            buf[(s - off) as usize..(s - off + l) as usize]
                .copy_from_slice(&e.data[src..src + l as usize]);
        }
        let f = inner.files.get_mut(&ino).expect("checked");
        f.attr.atime_ns = now;
        f.last_access_ns = now;
        Ok(n)
    }

    fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> VfsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        if !inner.files.contains_key(&ino) {
            return Err(VfsError::NotFound);
        }
        // Everything goes through the PM log first — Strata's design —
        // chunked if the write exceeds log capacity.
        let mut done = 0usize;
        while done < data.len() {
            let chunk = (data.len() - done).min((inner.log.capacity() / 2) as usize);
            let piece = &data[done..done + chunk];
            if !inner
                .log
                .append(&self.devs[PM], ino, off + done as u64, piece)?
            {
                self.digest(&mut inner)?;
                if !inner
                    .log
                    .append(&self.devs[PM], ino, off + done as u64, piece)?
                {
                    return Err(VfsError::NoSpace);
                }
            }
            done += chunk;
        }
        let f = inner.files.get_mut(&ino).expect("checked");
        f.attr.size = f.attr.size.max(off + data.len() as u64);
        f.attr.mtime_ns = now;
        f.last_access_ns = now;
        if inner.log.wants_digest(self.opts.digest_threshold) {
            self.digest(&mut inner)?;
        }
        Ok(data.len())
    }

    fn punch_hole(&self, ino: InodeNo, off: u64, len: u64) -> VfsResult<()> {
        if len == 0 {
            return Ok(());
        }
        self.charge_sw();
        let mut inner = self.inner.lock();
        self.digest(&mut inner)?;
        let f = inner.files.get_mut(&ino).ok_or(VfsError::NotFound)?;
        let end = off + len;
        let first_full = off.div_ceil(BLOCK);
        let last_full = end / BLOCK;
        // Zero partial edges in place.
        let zero = |f: &SFile, zoff: u64, zlen: u64| -> VfsResult<()> {
            if zlen == 0 {
                return Ok(());
            }
            if let Some(loc) = f.extents.get(zoff / BLOCK) {
                let zeros = vec![0u8; zlen as usize];
                self.devs[loc.dev].write(loc.block * BLOCK + zoff % BLOCK, &zeros)?;
            }
            Ok(())
        };
        let head_end = end.min(first_full * BLOCK);
        if off < head_end {
            zero(f, off, head_end - off)?;
        }
        let tail_start = (last_full * BLOCK).max(off);
        if tail_start < end && tail_start >= head_end {
            zero(f, tail_start, end - tail_start)?;
        }
        if last_full > first_full {
            let freed: Vec<(u64, u64, Loc)> = f
                .extents
                .overlapping(first_full, last_full - first_full)
                .iter()
                .map(|e| (e.start, e.len, e.value))
                .collect();
            f.extents.remove(first_full, last_full - first_full);
            f.attr.blocks_bytes = f.extents.covered() * BLOCK;
            for (_, l, loc) in freed {
                inner.alloc[loc.dev].free_run(loc.block, l);
            }
        }
        Ok(())
    }

    fn next_data(&self, ino: InodeNo, off: u64) -> VfsResult<Option<(u64, u64)>> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        self.digest(&mut inner)?; // log entries count as data
        let f = inner.files.get(&ino).ok_or(VfsError::NotFound)?;
        let size = f.attr.size;
        if off >= size {
            return Ok(None);
        }
        match f.extents.next_mapped(off / BLOCK) {
            Some(e) => {
                let start = (e.start * BLOCK).max(off);
                let end = ((e.start + e.len) * BLOCK).min(size);
                if start >= size {
                    return Ok(None);
                }
                Ok(Some((start, end - start)))
            }
            None => Ok(None),
        }
    }

    fn fsync(&self, ino: InodeNo) -> VfsResult<()> {
        self.charge_sw();
        let inner = self.inner.lock();
        if !inner.files.contains_key(&ino) && !inner.dirs.contains_key(&ino) {
            return Err(VfsError::NotFound);
        }
        // The log is synchronous; fsync is a flush barrier.
        drop(inner);
        self.devs[PM].flush();
        Ok(())
    }

    fn sync(&self) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        self.digest(&mut inner)?;
        drop(inner);
        for d in &self.devs {
            d.flush();
        }
        Ok(())
    }

    fn statfs(&self) -> VfsResult<StatFs> {
        let inner = self.inner.lock();
        let total: u64 = inner.alloc.iter().map(|a| a.total * BLOCK).sum();
        let free: u64 = inner.alloc.iter().map(|a| a.free_blocks * BLOCK).sum();
        Ok(StatFs {
            total_bytes: total,
            free_bytes: free,
            inodes: inner.files.len() as u64,
            block_size: BLOCK as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{hdd, nvme_ssd, pmem, VirtualClock};

    fn strata() -> StrataFs {
        let clock = VirtualClock::new();
        StrataFs::new(
            Device::with_profile(pmem(), 64 << 20, clock.clone()),
            Device::with_profile(nvme_ssd(), 256 << 20, clock.clone()),
            Device::with_profile(hdd(), 1 << 30, clock),
            StrataOptions {
                log_bytes: 4 << 20,
                ..Default::default()
            },
        )
    }

    fn mk(fs: &StrataFs, name: &str) -> FileAttr {
        fs.create(ROOT_INO, name, FileType::Regular, 0o644).unwrap()
    }

    #[test]
    fn write_read_through_log() {
        let fs = strata();
        let a = mk(&fs, "f");
        let data: Vec<u8> = (0..50_000).map(|i| (i % 251) as u8).collect();
        fs.write(a.ino, 123, &data).unwrap();
        // Data still in the log (no digest yet for small writes).
        let mut buf = vec![0u8; data.len()];
        assert_eq!(fs.read(a.ino, 123, &mut buf).unwrap(), data.len());
        assert_eq!(buf, data);
    }

    #[test]
    fn read_after_digest_hits_shared_area() {
        let fs = strata();
        let a = mk(&fs, "f");
        let data: Vec<u8> = (0..30_000).map(|i| (i % 241) as u8).collect();
        fs.write(a.ino, 0, &data).unwrap();
        fs.force_digest().unwrap();
        let mut buf = vec![0u8; data.len()];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert!(fs.getattr(a.ino).unwrap().blocks_bytes > 0);
    }

    #[test]
    fn log_overlays_shared_area() {
        let fs = strata();
        let a = mk(&fs, "f");
        fs.write(a.ino, 0, &vec![1u8; 8192]).unwrap();
        fs.force_digest().unwrap();
        fs.write(a.ino, 100, &[2u8; 50]).unwrap(); // in log only
        let mut buf = vec![0u8; 8192];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert_eq!(buf[99], 1);
        assert!(buf[100..150].iter().all(|&b| b == 2));
        assert_eq!(buf[150], 1);
    }

    #[test]
    fn writes_are_double_written_on_pm() {
        // The §3.1 observation: log + digest = write amplification on PM.
        let fs = strata();
        let a = mk(&fs, "f");
        let payload = 1 << 20;
        fs.write(a.ino, 0, &vec![1u8; payload]).unwrap();
        fs.force_digest().unwrap();
        let written = fs.devices()[PM].stats().snapshot().bytes_written;
        assert!(
            written >= 2 * payload as u64,
            "expected ≥2x amplification, got {written} for {payload}"
        );
    }

    #[test]
    fn migrate_supported_paths_only() {
        let fs = strata();
        let a = mk(&fs, "f");
        fs.write(a.ino, 0, &vec![1u8; 64 * 4096]).unwrap();
        fs.force_digest().unwrap();
        // PM→SSD works.
        let moved = fs
            .migrate(DeviceClass::Pmem, DeviceClass::Ssd, u64::MAX)
            .unwrap();
        assert_eq!(moved, 64);
        let mut buf = vec![0u8; 64 * 4096];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
        // SSD→HDD is not wired.
        assert_eq!(
            fs.migrate(DeviceClass::Ssd, DeviceClass::Hdd, 1)
                .unwrap_err(),
            VfsError::NotSupported
        );
        // Promotion is not wired either.
        assert_eq!(
            fs.migrate(DeviceClass::Ssd, DeviceClass::Pmem, 1)
                .unwrap_err(),
            VfsError::NotSupported
        );
        assert_eq!(
            fs.migrate(DeviceClass::Hdd, DeviceClass::Pmem, 1)
                .unwrap_err(),
            VfsError::NotSupported
        );
    }

    #[test]
    fn eviction_when_pm_fills() {
        let clock = VirtualClock::new();
        let fs = StrataFs::new(
            Device::with_profile(pmem(), 8 << 20, clock.clone()), // tiny PM
            Device::with_profile(nvme_ssd(), 256 << 20, clock.clone()),
            Device::with_profile(hdd(), 1 << 30, clock),
            StrataOptions {
                log_bytes: 1 << 20,
                ..Default::default()
            },
        );
        let a = mk(&fs, "big");
        // Write more than PM's shared area can hold.
        for i in 0..10u64 {
            fs.write(a.ino, i * (1 << 20), &vec![i as u8; 1 << 20])
                .unwrap();
        }
        fs.sync().unwrap();
        // Data must have spilled to the SSD.
        assert!(
            fs.devices()[SSD].stats().snapshot().bytes_written > 0,
            "eviction to SSD never happened"
        );
        // And everything still reads back correctly.
        for i in 0..10u64 {
            let mut buf = vec![0u8; 1 << 20];
            fs.read(a.ino, i * (1 << 20), &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == i as u8), "chunk {i} corrupted");
        }
    }

    #[test]
    fn placement_target_directs_digestion() {
        let fs = strata();
        fs.set_placement_target(Some(HDD));
        let a = mk(&fs, "f");
        fs.write(a.ino, 0, &vec![3u8; 256 * 1024]).unwrap();
        fs.force_digest().unwrap();
        assert!(fs.devices()[HDD].stats().snapshot().bytes_written > 0);
        let mut buf = vec![0u8; 256 * 1024];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 3));
    }

    #[test]
    fn namespace_ops() {
        let fs = strata();
        let d = fs
            .create(ROOT_INO, "d", FileType::Directory, 0o755)
            .unwrap();
        let f = fs.create(d.ino, "f", FileType::Regular, 0o644).unwrap();
        fs.write(f.ino, 0, b"x").unwrap();
        fs.rename(d.ino, "f", ROOT_INO, "g").unwrap();
        assert!(fs.lookup(ROOT_INO, "g").is_ok());
        fs.unlink(ROOT_INO, "g").unwrap();
        fs.unlink(ROOT_INO, "d").unwrap();
        assert!(fs.lookup(ROOT_INO, "g").is_err());
    }

    #[test]
    fn truncate_and_punch() {
        let fs = strata();
        let a = mk(&fs, "f");
        fs.write(a.ino, 0, &vec![9u8; 4 * 4096]).unwrap();
        fs.punch_hole(a.ino, 4096, 8192).unwrap();
        let mut buf = vec![0u8; 4 * 4096];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert!(buf[..4096].iter().all(|&b| b == 9));
        assert!(buf[4096..3 * 4096].iter().all(|&b| b == 0));
        fs.setattr(a.ino, &SetAttr::truncate(100)).unwrap();
        fs.setattr(a.ino, &SetAttr::truncate(4096)).unwrap();
        let mut buf = vec![0u8; 4096];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert!(buf[..100].iter().all(|&b| b == 9));
        assert!(buf[100..].iter().all(|&b| b == 0));
    }

    #[test]
    fn large_write_chunks_through_log() {
        let fs = strata(); // 4 MiB log
        let a = mk(&fs, "f");
        let data: Vec<u8> = (0..(10 << 20)).map(|i| (i % 239) as u8).collect();
        fs.write(a.ino, 0, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
    }
}
