//! `strata` — the monolithic tiered-file-system baseline (Strata,
//! SOSP '17), as characterized by the Mux paper's §3.1.
//!
//! This is the *contrast* system: it manages all three devices **directly
//! through device handles**, not through native file systems. The design
//! properties the paper measures against are reproduced:
//!
//! * **Log-then-digest writes.** Every write first lands in an update log
//!   on persistent memory (synchronously, with flushes), and a digest pass
//!   later moves it to its final blocks. On the PM tier this is a double
//!   write — "such logging is not necessary on persistent memory devices"
//!   is exactly the overhead NOVA (and therefore Mux) avoids.
//! * **Static routing.** Data movement paths are wired at build time:
//!   digestion targets PM's shared area; eviction supports PM→SSD and
//!   PM→HDD only. SSD→HDD demotion and *any* promotion are unsupported
//!   ("N/S" in Figure 3a) — requesting them returns
//!   [`tvfs::VfsError::NotSupported`].
//! * **Coarse extent-tree locking.** The per-file extent tree is locked
//!   for the whole digest/eviction of that file, stalling concurrent
//!   access to blocks that did not need to move; the stall is charged in
//!   virtual time.
//!
//! The namespace is kept in DRAM — this crate is a *performance and
//! extensibility* baseline for the paper's comparison, not a
//! crash-consistency study.

mod fs;
mod log;

pub use fs::{StrataFs, StrataOptions};
pub use log::{LogEntry, UpdateLog};
