//! The persistent-memory update log.
//!
//! Strata's LibFS appends every mutation to a per-process log in PM and
//! makes it durable with cache-line flushes; a digest pass later applies
//! log entries to the shared area. We model one global log region at the
//! front of the PM device.

use simdev::Device;
use tvfs::{VfsError, VfsResult};

/// One logged write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// File the write belongs to.
    pub ino: u64,
    /// Byte offset within the file.
    pub off: u64,
    /// Payload bytes (stored in the log region on PM).
    pub data: Vec<u8>,
}

/// The update log: a byte region on the PM device.
#[derive(Debug)]
pub struct UpdateLog {
    region_off: u64,
    region_len: u64,
    cursor: u64,
    /// In-DRAM index of live entries (offset into the region + lengths).
    entries: Vec<(u64, LogEntryMeta)>,
}

#[derive(Debug, Clone)]
struct LogEntryMeta {
    ino: u64,
    off: u64,
    len: u64,
}

const ENTRY_HEADER: u64 = 24;

impl UpdateLog {
    /// A log over `[region_off, region_off + region_len)` of the PM
    /// device.
    pub fn new(region_off: u64, region_len: u64) -> Self {
        UpdateLog {
            region_off,
            region_len,
            cursor: region_off,
            entries: Vec::new(),
        }
    }

    /// Bytes of log space in use.
    pub fn used(&self) -> u64 {
        self.cursor - self.region_off
    }

    /// Total log capacity.
    pub fn capacity(&self) -> u64 {
        self.region_len
    }

    /// Whether utilization crossed the digest threshold.
    pub fn wants_digest(&self, threshold: f64) -> bool {
        self.used() as f64 >= self.region_len as f64 * threshold
    }

    /// Number of undigested entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a write to the log: header + payload to PM, then a flush —
    /// the synchronous durability Strata's LibFS provides. Returns `false`
    /// if the log is full (caller must digest first).
    pub fn append(&mut self, pm: &Device, ino: u64, off: u64, data: &[u8]) -> VfsResult<bool> {
        let need = ENTRY_HEADER + data.len() as u64;
        if self.cursor + need > self.region_off + self.region_len {
            return Ok(false);
        }
        let mut header = Vec::with_capacity(ENTRY_HEADER as usize);
        header.extend_from_slice(&ino.to_le_bytes());
        header.extend_from_slice(&off.to_le_bytes());
        header.extend_from_slice(&(data.len() as u64).to_le_bytes());
        pm.write(self.cursor, &header)?;
        pm.write(self.cursor + ENTRY_HEADER, data)?;
        pm.flush_range(self.cursor, need);
        self.entries.push((
            self.cursor,
            LogEntryMeta {
                ino,
                off,
                len: data.len() as u64,
            },
        ));
        self.cursor += need;
        Ok(true)
    }

    /// Reads entry `i` back from PM (digest path).
    pub fn read_entry(&self, pm: &Device, i: usize) -> VfsResult<LogEntry> {
        let (pos, meta) = self
            .entries
            .get(i)
            .ok_or_else(|| VfsError::InvalidArgument("log entry index".into()))?;
        let mut data = vec![0u8; meta.len as usize];
        pm.read(pos + ENTRY_HEADER, &mut data)?;
        Ok(LogEntry {
            ino: meta.ino,
            off: meta.off,
            data,
        })
    }

    /// The most recent log data covering `[off, off+len)` of `ino`, as
    /// `(entry_index, overlap_start, overlap_len)` in append order —
    /// reads must overlay these over shared-area content.
    pub fn overlaps(&self, ino: u64, off: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let end = off + len;
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, (_, m))| {
                if m.ino != ino {
                    return None;
                }
                let s = m.off.max(off);
                let e = (m.off + m.len).min(end);
                (s < e).then(|| (i, s, e - s))
            })
            .collect()
    }

    /// Drops all entries (after a digest) and resets the cursor.
    pub fn truncate(&mut self) {
        self.entries.clear();
        self.cursor = self.region_off;
    }

    /// Drops entries of one file (after per-file digest), compacting by
    /// rewriting nothing — Strata reclaims log space only on full digest,
    /// which we model by keeping the cursor.
    pub fn drop_file_entries(&mut self, ino: u64) {
        self.entries.retain(|(_, m)| m.ino != ino);
    }

    /// Distinct inodes with entries in the log.
    pub fn files(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.entries.iter().map(|(_, m)| m.ino).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{pmem, VirtualClock};

    fn pm() -> Device {
        Device::with_profile(pmem(), 16 << 20, VirtualClock::new())
    }

    #[test]
    fn append_read_roundtrip() {
        let d = pm();
        let mut log = UpdateLog::new(0, 1 << 20);
        assert!(log.append(&d, 1, 100, b"hello").unwrap());
        assert!(log.append(&d, 2, 0, b"world").unwrap());
        assert_eq!(log.len(), 2);
        let e = log.read_entry(&d, 0).unwrap();
        assert_eq!(e.ino, 1);
        assert_eq!(e.off, 100);
        assert_eq!(e.data, b"hello");
    }

    #[test]
    fn full_log_rejects_append() {
        let d = pm();
        let mut log = UpdateLog::new(0, 64);
        assert!(log.append(&d, 1, 0, &[0u8; 30]).unwrap());
        assert!(!log.append(&d, 1, 0, &[0u8; 30]).unwrap());
        log.truncate();
        assert!(log.append(&d, 1, 0, &[0u8; 30]).unwrap());
    }

    #[test]
    fn overlaps_finds_recent_writes_in_order() {
        let d = pm();
        let mut log = UpdateLog::new(0, 1 << 20);
        log.append(&d, 1, 0, &[1u8; 100]).unwrap();
        log.append(&d, 1, 50, &[2u8; 100]).unwrap();
        log.append(&d, 2, 0, &[3u8; 100]).unwrap();
        let o = log.overlaps(1, 60, 20);
        assert_eq!(o.len(), 2);
        assert_eq!(o[0].0, 0);
        assert_eq!(o[1].0, 1); // later entry last → wins when overlaid
        assert!(log.overlaps(1, 200, 10).is_empty());
    }

    #[test]
    fn digest_threshold() {
        let d = pm();
        let mut log = UpdateLog::new(0, 1000);
        assert!(!log.wants_digest(0.5));
        log.append(&d, 1, 0, &[0u8; 480]).unwrap();
        assert!(log.wants_digest(0.5));
    }

    #[test]
    fn drop_file_entries_keeps_others() {
        let d = pm();
        let mut log = UpdateLog::new(0, 1 << 20);
        log.append(&d, 1, 0, b"a").unwrap();
        log.append(&d, 2, 0, b"b").unwrap();
        log.drop_file_entries(1);
        assert_eq!(log.files(), vec![2]);
    }

    #[test]
    fn appends_are_durable() {
        let d = pm();
        let mut log = UpdateLog::new(0, 1 << 20);
        log.append(&d, 1, 0, b"persist").unwrap();
        d.crash();
        // Entry data survives the crash (it was flushed).
        let e = log.read_entry(&d, 0).unwrap();
        assert_eq!(e.data, b"persist");
    }
}
