//! Inode attributes and file-system statistics.

use serde::{Deserialize, Serialize};

/// Kind of a directory entry / inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
}

/// Inode attributes, the `struct stat` of this VFS.
///
/// These are exactly the attributes Mux's Metadata Tracker multiplexes with
/// per-attribute affinity (paper §2.3): `size` is owned by the file system
/// holding the last byte, `mtime_ns` by the last writer, `atime_ns` by the
/// last reader, while `blocks` (disk consumption) has no single owner and is
/// aggregated across all participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileAttr {
    /// Inode number within the owning file system.
    pub ino: crate::InodeNo,
    /// Logical file size in bytes.
    pub size: u64,
    /// Bytes actually allocated (sparse files allocate less than `size`).
    pub blocks_bytes: u64,
    /// Last access time, virtual nanoseconds.
    pub atime_ns: u64,
    /// Last modification time, virtual nanoseconds.
    pub mtime_ns: u64,
    /// Last status change time, virtual nanoseconds.
    pub ctime_ns: u64,
    /// File type.
    pub kind: FileType,
    /// Permission bits (0o777 mask).
    pub mode: u32,
    /// Hard-link count.
    pub nlink: u32,
    /// Owner user id.
    pub uid: u32,
    /// Owner group id.
    pub gid: u32,
}

impl FileAttr {
    /// A fresh attribute block for a newly created inode.
    pub fn new(ino: crate::InodeNo, kind: FileType, mode: u32, now_ns: u64) -> Self {
        FileAttr {
            ino,
            size: 0,
            blocks_bytes: 0,
            atime_ns: now_ns,
            mtime_ns: now_ns,
            ctime_ns: now_ns,
            kind,
            mode,
            nlink: 1,
            uid: 0,
            gid: 0,
        }
    }

    /// Whether this inode is a directory.
    pub fn is_dir(&self) -> bool {
        self.kind == FileType::Directory
    }
}

/// Attribute changes requested through `setattr` (a subset may be present).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetAttr {
    /// Truncate/extend to this size.
    pub size: Option<u64>,
    /// New permission bits.
    pub mode: Option<u32>,
    /// New owner.
    pub uid: Option<u32>,
    /// New group.
    pub gid: Option<u32>,
    /// Explicit access time.
    pub atime_ns: Option<u64>,
    /// Explicit modification time.
    pub mtime_ns: Option<u64>,
}

impl SetAttr {
    /// A `setattr` that only truncates to `size`.
    pub fn truncate(size: u64) -> Self {
        SetAttr {
            size: Some(size),
            ..Default::default()
        }
    }

    /// Whether no change is requested.
    pub fn is_empty(&self) -> bool {
        *self == SetAttr::default()
    }
}

/// File-system level statistics (`statfs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatFs {
    /// Total capacity available for data, bytes.
    pub total_bytes: u64,
    /// Free capacity, bytes.
    pub free_bytes: u64,
    /// Number of live inodes.
    pub inodes: u64,
    /// Preferred I/O block size.
    pub block_size: u32,
}

impl StatFs {
    /// Bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.total_bytes.saturating_sub(self.free_bytes)
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total_bytes == 0 {
            return 0.0;
        }
        self.used_bytes() as f64 / self.total_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_attr_zeroed() {
        let a = FileAttr::new(7, FileType::Regular, 0o644, 99);
        assert_eq!(a.ino, 7);
        assert_eq!(a.size, 0);
        assert_eq!(a.mtime_ns, 99);
        assert!(!a.is_dir());
        assert!(FileAttr::new(1, FileType::Directory, 0o755, 0).is_dir());
    }

    #[test]
    fn setattr_truncate_only_sets_size() {
        let s = SetAttr::truncate(100);
        assert_eq!(s.size, Some(100));
        assert_eq!(s.mode, None);
        assert!(!s.is_empty());
        assert!(SetAttr::default().is_empty());
    }

    #[test]
    fn statfs_utilization() {
        let s = StatFs {
            total_bytes: 100,
            free_bytes: 25,
            inodes: 1,
            block_size: 4096,
        };
        assert_eq!(s.used_bytes(), 75);
        assert!((s.utilization() - 0.75).abs() < 1e-9);
        let empty = StatFs {
            total_bytes: 0,
            free_bytes: 0,
            inodes: 0,
            block_size: 1,
        };
        assert_eq!(empty.utilization(), 0.0);
    }
}
