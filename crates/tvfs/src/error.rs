//! The error type shared by every file system behind the VFS boundary.

use std::fmt;

/// Result alias for VFS operations.
pub type VfsResult<T> = Result<T, VfsError>;

/// Errors a [`crate::FileSystem`] may return, mirroring the POSIX errno set
/// the Linux VFS would surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// `ENOENT` — no such file or directory.
    NotFound,
    /// `EEXIST` — name already exists.
    Exists,
    /// `ENOTDIR` — a path component is not a directory.
    NotDir,
    /// `EISDIR` — operation needs a regular file but got a directory.
    IsDir,
    /// `ENOTEMPTY` — directory not empty.
    NotEmpty,
    /// `ENOSPC` — device out of space.
    NoSpace,
    /// `EINVAL` — invalid argument.
    InvalidArgument(String),
    /// `EBADF` — bad file handle.
    BadHandle,
    /// `EROFS` — file system is read-only (e.g. a tier being drained).
    ReadOnly,
    /// `EBUSY` — resource busy (e.g. unmounting a tier with open files).
    Busy,
    /// `ENOSYS` — the file system does not implement this operation.
    NotSupported,
    /// `EIO` — an underlying device error, with context.
    Io(String),
    /// `ESTALE` — inode vanished beneath the caller (races with unlink).
    Stale,
    /// `EUCLEAN` — persistent data or metadata failed validation, with
    /// structured context so callers (and operators) can tell *where* the
    /// corruption sits. Metadata decode failures carry only `msg`; block
    /// checksum mismatches fill in the tier, inode and byte offset.
    Corrupt {
        /// Human-readable description of what failed validation.
        msg: String,
        /// Tier the corrupt bytes live on, when known.
        tier: Option<u32>,
        /// Inode of the affected file, when known.
        ino: Option<u64>,
        /// Byte offset of the corrupt block within the file, when known.
        offset: Option<u64>,
    },
}

impl VfsError {
    /// A [`VfsError::Corrupt`] with no location context (metadata decode
    /// failures, where "which file" is the question being answered).
    pub fn corrupt(msg: impl Into<String>) -> Self {
        VfsError::Corrupt {
            msg: msg.into(),
            tier: None,
            ino: None,
            offset: None,
        }
    }

    /// A [`VfsError::Corrupt`] pinned to a (tier, inode, byte-offset)
    /// location — the block-checksum-mismatch shape.
    pub fn corrupt_at(msg: impl Into<String>, tier: u32, ino: u64, offset: u64) -> Self {
        VfsError::Corrupt {
            msg: msg.into(),
            tier: Some(tier),
            ino: Some(ino),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound => write!(f, "no such file or directory"),
            VfsError::Exists => write!(f, "file exists"),
            VfsError::NotDir => write!(f, "not a directory"),
            VfsError::IsDir => write!(f, "is a directory"),
            VfsError::NotEmpty => write!(f, "directory not empty"),
            VfsError::NoSpace => write!(f, "no space left on device"),
            VfsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            VfsError::BadHandle => write!(f, "bad file handle"),
            VfsError::ReadOnly => write!(f, "read-only file system"),
            VfsError::Busy => write!(f, "device or resource busy"),
            VfsError::NotSupported => write!(f, "operation not supported"),
            VfsError::Io(msg) => write!(f, "I/O error: {msg}"),
            VfsError::Stale => write!(f, "stale file handle"),
            VfsError::Corrupt {
                msg,
                tier,
                ino,
                offset,
            } => {
                write!(f, "structure needs cleaning: {msg}")?;
                if let Some(t) = tier {
                    write!(f, " [tier {t}")?;
                    if let Some(i) = ino {
                        write!(f, ", ino {i}")?;
                    }
                    if let Some(o) = offset {
                        write!(f, ", byte {o}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for VfsError {}

impl From<simdev::DevError> for VfsError {
    fn from(e: simdev::DevError) -> Self {
        match e {
            simdev::DevError::OutOfBounds { .. } => VfsError::NoSpace,
            simdev::DevError::Io(msg) => VfsError::Io(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(VfsError::NotFound.to_string(), "no such file or directory");
        assert!(VfsError::Io("disk died".into())
            .to_string()
            .contains("disk died"));
    }

    #[test]
    fn corrupt_context_renders_when_present() {
        let bare = VfsError::corrupt("bad magic");
        assert_eq!(bare.to_string(), "structure needs cleaning: bad magic");
        let located = VfsError::corrupt_at("checksum mismatch", 2, 42, 8192);
        let s = located.to_string();
        assert!(s.contains("tier 2"), "{s}");
        assert!(s.contains("ino 42"), "{s}");
        assert!(s.contains("byte 8192"), "{s}");
    }

    #[test]
    fn device_errors_convert() {
        let e: VfsError = simdev::DevError::Io("bad".into()).into();
        assert!(matches!(e, VfsError::Io(_)));
        let e: VfsError = simdev::DevError::OutOfBounds {
            off: 0,
            len: 1,
            capacity: 0,
        }
        .into();
        assert_eq!(e, VfsError::NoSpace);
    }
}
