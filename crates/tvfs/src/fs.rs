//! The [`FileSystem`] trait — the VFS interface proper.

use crate::{FileAttr, FileType, InodeNo, SetAttr, StatFs, VfsError, VfsResult};

/// Inode number of every file system's root directory.
pub const ROOT_INO: InodeNo = 1;

/// One directory entry as returned by [`FileSystem::readdir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (no slashes).
    pub name: String,
    /// Inode the entry refers to.
    pub ino: InodeNo,
    /// Entry type.
    pub kind: FileType,
}

/// Flags for [`crate::Vfs::open`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create if absent.
    pub create: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
    /// All writes go to end-of-file.
    pub append: bool,
    /// Every write is followed by an fsync (`O_SYNC`).
    pub sync: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> Self {
        OpenFlags {
            read: true,
            ..Default::default()
        }
    }

    /// `O_RDWR | O_CREAT`.
    pub fn read_write() -> Self {
        OpenFlags {
            read: true,
            write: true,
            create: true,
            ..Default::default()
        }
    }
}

/// The VFS interface each file system implements.
///
/// This is the paper's extensibility boundary: a new device type is
/// integrated by mounting its dedicated file system — any `FileSystem`
/// implementor — and registering it with Mux, with no change to either
/// side. Mux itself implements this trait towards applications and calls it
/// on the native file systems below (Figure 1b).
///
/// Semantics follow POSIX where applicable:
///
/// * Files are sparse. Writing at an offset beyond EOF extends the file;
///   the gap reads as zeros and consumes no space.
/// * `unlink` on a directory requires it to be empty (it subsumes `rmdir`).
/// * All methods are safe for concurrent use; implementations lock
///   internally at whatever granularity they choose.
pub trait FileSystem: Send + Sync {
    /// Identifier used in mount tables and reports, e.g. `"novafs"`.
    fn fs_name(&self) -> &str;

    /// Inode of the root directory (conventionally [`ROOT_INO`]).
    fn root_ino(&self) -> InodeNo {
        ROOT_INO
    }

    /// Resolves `name` within directory `parent`.
    fn lookup(&self, parent: InodeNo, name: &str) -> VfsResult<FileAttr>;

    /// Reads an inode's attributes.
    fn getattr(&self, ino: InodeNo) -> VfsResult<FileAttr>;

    /// Applies the requested attribute changes and returns the new
    /// attributes. `size` changes truncate or zero-extend the file.
    fn setattr(&self, ino: InodeNo, set: &SetAttr) -> VfsResult<FileAttr>;

    /// Creates a file or directory named `name` under `parent`.
    fn create(&self, parent: InodeNo, name: &str, kind: FileType, mode: u32)
        -> VfsResult<FileAttr>;

    /// Removes `name` from `parent`. Directories must be empty.
    fn unlink(&self, parent: InodeNo, name: &str) -> VfsResult<()>;

    /// Moves `parent/name` to `new_parent/new_name`, replacing any existing
    /// regular file at the destination.
    fn rename(
        &self,
        parent: InodeNo,
        name: &str,
        new_parent: InodeNo,
        new_name: &str,
    ) -> VfsResult<()>;

    /// Lists a directory.
    fn readdir(&self, ino: InodeNo) -> VfsResult<Vec<DirEntry>>;

    /// Reads up to `buf.len()` bytes at `off`; returns bytes read (0 at or
    /// past EOF). Holes read as zeros.
    fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> VfsResult<usize>;

    /// Writes `data` at `off`, extending the file if needed; returns bytes
    /// written.
    fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> VfsResult<usize>;

    /// Deallocates `[off, off+len)`, which subsequently reads as zeros.
    /// The logical file size is unchanged.
    fn punch_hole(&self, ino: InodeNo, off: u64, len: u64) -> VfsResult<()>;

    /// Returns the first allocated extent `(start, len)` at or after `off`,
    /// or `None` if only holes remain (`SEEK_DATA`).
    fn next_data(&self, ino: InodeNo, off: u64) -> VfsResult<Option<(u64, u64)>>;

    /// Persists this inode's data and metadata.
    fn fsync(&self, ino: InodeNo) -> VfsResult<()>;

    /// Persists everything (`syncfs`).
    fn sync(&self) -> VfsResult<()>;

    /// File-system statistics.
    fn statfs(&self) -> VfsResult<StatFs>;
}

/// Walks `path` components from the root of `fs`, returning the final
/// attributes. `path` must already be normalized (see [`crate::normalize`]).
pub fn resolve_path(fs: &dyn FileSystem, path: &str) -> VfsResult<FileAttr> {
    let mut cur = fs.getattr(fs.root_ino())?;
    for comp in path.split('/').filter(|c| !c.is_empty()) {
        if !cur.is_dir() {
            return Err(VfsError::NotDir);
        }
        cur = fs.lookup(cur.ino, comp)?;
    }
    Ok(cur)
}

/// Resolves the parent directory of `path` and returns `(parent_attr,
/// final_component)`. Fails with [`VfsError::InvalidArgument`] on the root
/// path.
pub fn resolve_parent<'p>(fs: &dyn FileSystem, path: &'p str) -> VfsResult<(FileAttr, &'p str)> {
    let (dir, name) = crate::split_parent(path)
        .ok_or_else(|| VfsError::InvalidArgument("path has no parent".into()))?;
    let parent = resolve_path(fs, dir)?;
    if !parent.is_dir() {
        return Err(VfsError::NotDir);
    }
    Ok((parent, name))
}
