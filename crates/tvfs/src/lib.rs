//! A tiny VFS layer: the boundary Mux talks through.
//!
//! The paper's thesis is that a tiered file system should access device
//! types "indirectly through device-specific file systems, rather than
//! directly through device drivers", with the Linux VFS as the well-defined
//! interface both sides implement. This crate is that interface for the
//! reproduction:
//!
//! * [`FileSystem`] — the trait every native file system (`novafs`, `xefs`,
//!   `e4fs`) implements, and that Mux both implements (facing applications)
//!   and consumes (facing native file systems). Mux's "VFS Call Maker"
//!   issues the very same trait methods that invoked it, with different
//!   inodes, offsets and lengths.
//! * [`Vfs`] — a mount table plus file-descriptor table giving applications
//!   a POSIX-ish API (`open`/`read`/`write`/…) over any mounted
//!   [`FileSystem`].
//!
//! Sparse files are first-class: writes may land at any offset, unwritten
//! ranges read as zeros, [`FileSystem::punch_hole`] deallocates ranges and
//! [`FileSystem::next_data`] enumerates allocated extents (`SEEK_DATA`
//! style). Mux relies on all three to preserve file offsets across tiers
//! (paper §2.2).

mod attr;
mod error;
mod fs;
pub mod memfs;
mod pagecache;
mod path;
mod rangemap;
mod vfs;

pub use attr::{FileAttr, FileType, SetAttr, StatFs};
pub use error::{VfsError, VfsResult};
pub use fs::{resolve_parent, resolve_path, DirEntry, FileSystem, OpenFlags, ROOT_INO};
pub use pagecache::{CacheStats, PageCache};
pub use path::{join_path, normalize, split_parent};
pub use rangemap::{Extent, Linear, RangeMap, Segmentable};
pub use vfs::{Fd, MountId, Vfs};

/// Inode number type used across the stack.
pub type InodeNo = u64;
