//! `MemFs` — a reference, fully sparse, in-memory [`FileSystem`].
//!
//! Exists for three reasons: it documents the expected trait semantics in
//! the simplest possible form, it serves as a zero-cost test double for
//! exercising Mux logic without device timing, and it demonstrates the
//! paper's extensibility claim — *any* `FileSystem` implementor can be a
//! Mux tier, including this one.

use std::collections::{BTreeMap, HashMap};

use parking_lot::Mutex;

use crate::{
    DirEntry, FileAttr, FileSystem, FileType, InodeNo, SetAttr, StatFs, VfsError, VfsResult,
    ROOT_INO,
};

const PAGE: u64 = 4096;

struct MemFile {
    attr: FileAttr,
    /// Sparse page store: absent pages are holes.
    pages: BTreeMap<u64, Box<[u8; PAGE as usize]>>,
}

struct MemDir {
    attr: FileAttr,
    entries: BTreeMap<String, InodeNo>,
}

struct Inner {
    files: HashMap<InodeNo, MemFile>,
    dirs: HashMap<InodeNo, MemDir>,
    next_ino: InodeNo,
    op_counter: u64,
}

/// An in-memory sparse file system.
pub struct MemFs {
    name: String,
    capacity: u64,
    inner: Mutex<Inner>,
}

impl MemFs {
    /// An empty file system with the given nominal capacity.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        let mut dirs = HashMap::new();
        let mut attr = FileAttr::new(ROOT_INO, FileType::Directory, 0o755, 0);
        attr.nlink = 2;
        dirs.insert(
            ROOT_INO,
            MemDir {
                attr,
                entries: BTreeMap::new(),
            },
        );
        MemFs {
            name: name.into(),
            capacity,
            inner: Mutex::new(Inner {
                files: HashMap::new(),
                dirs,
                next_ino: ROOT_INO + 1,
                op_counter: 0,
            }),
        }
    }

    /// Total VFS operations served (test aid).
    pub fn op_count(&self) -> u64 {
        self.inner.lock().op_counter
    }

    fn used_bytes(inner: &Inner) -> u64 {
        inner
            .files
            .values()
            .map(|f| f.pages.len() as u64 * PAGE)
            .sum()
    }
}

impl FileSystem for MemFs {
    fn fs_name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, parent: InodeNo, name: &str) -> VfsResult<FileAttr> {
        let mut inner = self.inner.lock();
        inner.op_counter += 1;
        let dir = inner.dirs.get(&parent).ok_or(VfsError::NotDir)?;
        let &ino = dir.entries.get(name).ok_or(VfsError::NotFound)?;
        inner
            .files
            .get(&ino)
            .map(|f| f.attr)
            .or_else(|| inner.dirs.get(&ino).map(|d| d.attr))
            .ok_or(VfsError::Stale)
    }

    fn getattr(&self, ino: InodeNo) -> VfsResult<FileAttr> {
        let mut inner = self.inner.lock();
        inner.op_counter += 1;
        inner
            .files
            .get(&ino)
            .map(|f| f.attr)
            .or_else(|| inner.dirs.get(&ino).map(|d| d.attr))
            .ok_or(VfsError::NotFound)
    }

    fn setattr(&self, ino: InodeNo, set: &SetAttr) -> VfsResult<FileAttr> {
        let mut inner = self.inner.lock();
        inner.op_counter += 1;
        if let Some(new_size) = set.size {
            let f = inner.files.get_mut(&ino).ok_or(VfsError::NotFound)?;
            if new_size < f.attr.size {
                let first_dead = new_size.div_ceil(PAGE);
                f.pages.retain(|&p, _| p < first_dead);
                if new_size % PAGE != 0 {
                    if let Some(page) = f.pages.get_mut(&(new_size / PAGE)) {
                        page[(new_size % PAGE) as usize..].fill(0);
                    }
                }
            }
            f.attr.size = new_size;
            f.attr.blocks_bytes = f.pages.len() as u64 * PAGE;
        }
        let attr = {
            let inner = &mut *inner;
            let a = if let Some(f) = inner.files.get_mut(&ino) {
                &mut f.attr
            } else if let Some(d) = inner.dirs.get_mut(&ino) {
                &mut d.attr
            } else {
                return Err(VfsError::NotFound);
            };
            if let Some(m) = set.mode {
                a.mode = m;
            }
            if let Some(u) = set.uid {
                a.uid = u;
            }
            if let Some(g) = set.gid {
                a.gid = g;
            }
            if let Some(t) = set.atime_ns {
                a.atime_ns = t;
            }
            if let Some(t) = set.mtime_ns {
                a.mtime_ns = t;
            }
            *a
        };
        Ok(attr)
    }

    fn create(
        &self,
        parent: InodeNo,
        name: &str,
        kind: FileType,
        mode: u32,
    ) -> VfsResult<FileAttr> {
        if name.is_empty() || name.contains('/') {
            return Err(VfsError::InvalidArgument("bad name".into()));
        }
        let mut inner = self.inner.lock();
        inner.op_counter += 1;
        if !inner.dirs.contains_key(&parent) {
            return Err(VfsError::NotDir);
        }
        if inner.dirs[&parent].entries.contains_key(name) {
            return Err(VfsError::Exists);
        }
        let ino = inner.next_ino;
        inner.next_ino += 1;
        let mut attr = FileAttr::new(ino, kind, mode, 0);
        match kind {
            FileType::Regular => {
                inner.files.insert(
                    ino,
                    MemFile {
                        attr,
                        pages: BTreeMap::new(),
                    },
                );
            }
            FileType::Directory => {
                attr.nlink = 2;
                inner.dirs.insert(
                    ino,
                    MemDir {
                        attr,
                        entries: BTreeMap::new(),
                    },
                );
            }
        }
        inner
            .dirs
            .get_mut(&parent)
            .expect("checked")
            .entries
            .insert(name.to_string(), ino);
        Ok(attr)
    }

    fn unlink(&self, parent: InodeNo, name: &str) -> VfsResult<()> {
        let mut inner = self.inner.lock();
        inner.op_counter += 1;
        let ino = {
            let dir = inner.dirs.get(&parent).ok_or(VfsError::NotDir)?;
            *dir.entries.get(name).ok_or(VfsError::NotFound)?
        };
        if let Some(d) = inner.dirs.get(&ino) {
            if !d.entries.is_empty() {
                return Err(VfsError::NotEmpty);
            }
        }
        inner
            .dirs
            .get_mut(&parent)
            .expect("checked")
            .entries
            .remove(name);
        inner.files.remove(&ino);
        inner.dirs.remove(&ino);
        Ok(())
    }

    fn rename(
        &self,
        parent: InodeNo,
        name: &str,
        new_parent: InodeNo,
        new_name: &str,
    ) -> VfsResult<()> {
        let mut inner = self.inner.lock();
        inner.op_counter += 1;
        let ino = {
            let dir = inner.dirs.get(&parent).ok_or(VfsError::NotDir)?;
            *dir.entries.get(name).ok_or(VfsError::NotFound)?
        };
        // Replace a regular-file target; refuse non-empty dirs.
        if let Some(&existing) = inner
            .dirs
            .get(&new_parent)
            .ok_or(VfsError::NotDir)?
            .entries
            .get(new_name)
        {
            if existing != ino {
                if let Some(d) = inner.dirs.get(&existing) {
                    if !d.entries.is_empty() {
                        return Err(VfsError::NotEmpty);
                    }
                }
                inner.files.remove(&existing);
                inner.dirs.remove(&existing);
            }
        }
        inner
            .dirs
            .get_mut(&parent)
            .expect("checked")
            .entries
            .remove(name);
        inner
            .dirs
            .get_mut(&new_parent)
            .expect("checked")
            .entries
            .insert(new_name.to_string(), ino);
        Ok(())
    }

    fn readdir(&self, ino: InodeNo) -> VfsResult<Vec<DirEntry>> {
        let mut inner = self.inner.lock();
        inner.op_counter += 1;
        let dir = inner.dirs.get(&ino).ok_or(VfsError::NotDir)?;
        Ok(dir
            .entries
            .iter()
            .map(|(name, &child)| DirEntry {
                name: name.clone(),
                ino: child,
                kind: if inner.dirs.contains_key(&child) {
                    FileType::Directory
                } else {
                    FileType::Regular
                },
            })
            .collect())
    }

    fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> VfsResult<usize> {
        let mut inner = self.inner.lock();
        inner.op_counter += 1;
        let f = inner.files.get(&ino).ok_or(VfsError::NotFound)?;
        if off >= f.attr.size {
            return Ok(0);
        }
        let n = buf.len().min((f.attr.size - off) as usize);
        let mut done = 0usize;
        while done < n {
            let pos = off + done as u64;
            let pg = pos / PAGE;
            let in_pg = (pos % PAGE) as usize;
            let chunk = (PAGE as usize - in_pg).min(n - done);
            match f.pages.get(&pg) {
                Some(p) => buf[done..done + chunk].copy_from_slice(&p[in_pg..in_pg + chunk]),
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
        }
        Ok(n)
    }

    fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> VfsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut inner = self.inner.lock();
        inner.op_counter += 1;
        if Self::used_bytes(&inner) + data.len() as u64 > self.capacity {
            return Err(VfsError::NoSpace);
        }
        let f = inner.files.get_mut(&ino).ok_or(VfsError::NotFound)?;
        let mut done = 0usize;
        while done < data.len() {
            let pos = off + done as u64;
            let pg = pos / PAGE;
            let in_pg = (pos % PAGE) as usize;
            let chunk = (PAGE as usize - in_pg).min(data.len() - done);
            let page = f
                .pages
                .entry(pg)
                .or_insert_with(|| Box::new([0u8; PAGE as usize]));
            page[in_pg..in_pg + chunk].copy_from_slice(&data[done..done + chunk]);
            done += chunk;
        }
        f.attr.size = f.attr.size.max(off + data.len() as u64);
        f.attr.blocks_bytes = f.pages.len() as u64 * PAGE;
        f.attr.mtime_ns += 1; // logical clock: strictly increasing
        Ok(data.len())
    }

    fn punch_hole(&self, ino: InodeNo, off: u64, len: u64) -> VfsResult<()> {
        if len == 0 {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        inner.op_counter += 1;
        let f = inner.files.get_mut(&ino).ok_or(VfsError::NotFound)?;
        let end = off + len;
        let first_full = off.div_ceil(PAGE);
        let last_full = end / PAGE;
        // Zero partial edges.
        let head_end = end.min(first_full * PAGE);
        if off < head_end {
            if let Some(p) = f.pages.get_mut(&(off / PAGE)) {
                p[(off % PAGE) as usize..(off % PAGE + (head_end - off)) as usize].fill(0);
            }
        }
        let tail_start = (last_full * PAGE).max(off);
        if tail_start < end && tail_start >= head_end {
            if let Some(p) = f.pages.get_mut(&(tail_start / PAGE)) {
                p[(tail_start % PAGE) as usize..(tail_start % PAGE + (end - tail_start)) as usize]
                    .fill(0);
            }
        }
        if last_full > first_full {
            f.pages.retain(|&p, _| p < first_full || p >= last_full);
        }
        f.attr.blocks_bytes = f.pages.len() as u64 * PAGE;
        Ok(())
    }

    fn next_data(&self, ino: InodeNo, off: u64) -> VfsResult<Option<(u64, u64)>> {
        let mut inner = self.inner.lock();
        inner.op_counter += 1;
        let f = inner.files.get(&ino).ok_or(VfsError::NotFound)?;
        let size = f.attr.size;
        if off >= size {
            return Ok(None);
        }
        let start_pg = off / PAGE;
        let Some((&pg, _)) = f.pages.range(start_pg..).next() else {
            return Ok(None);
        };
        let data_start = (pg * PAGE).max(off);
        if data_start >= size {
            return Ok(None);
        }
        // Extend over contiguous pages.
        let mut end_pg = pg;
        while f.pages.contains_key(&(end_pg + 1)) {
            end_pg += 1;
        }
        let data_end = ((end_pg + 1) * PAGE).min(size);
        Ok(Some((data_start, data_end - data_start)))
    }

    fn fsync(&self, ino: InodeNo) -> VfsResult<()> {
        let mut inner = self.inner.lock();
        inner.op_counter += 1;
        if inner.files.contains_key(&ino) || inner.dirs.contains_key(&ino) {
            Ok(())
        } else {
            Err(VfsError::NotFound)
        }
    }

    fn sync(&self) -> VfsResult<()> {
        self.inner.lock().op_counter += 1;
        Ok(())
    }

    fn statfs(&self) -> VfsResult<StatFs> {
        let inner = self.inner.lock();
        let used = Self::used_bytes(&inner);
        Ok(StatFs {
            total_bytes: self.capacity,
            free_bytes: self.capacity.saturating_sub(used),
            inodes: inner.files.len() as u64,
            block_size: PAGE as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> MemFs {
        MemFs::new("mem", 1 << 24)
    }

    #[test]
    fn sparse_semantics() {
        let f = fs();
        let a = f.create(ROOT_INO, "x", FileType::Regular, 0o644).unwrap();
        f.write(a.ino, 10 * PAGE, b"tail").unwrap();
        let attr = f.getattr(a.ino).unwrap();
        assert_eq!(attr.size, 10 * PAGE + 4);
        assert_eq!(attr.blocks_bytes, PAGE);
        assert_eq!(f.next_data(a.ino, 0).unwrap().unwrap().0, 10 * PAGE);
        let mut buf = [9u8; 8];
        f.read(a.ino, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn punch_and_truncate() {
        let f = fs();
        let a = f.create(ROOT_INO, "x", FileType::Regular, 0o644).unwrap();
        f.write(a.ino, 0, &vec![7u8; 3 * PAGE as usize]).unwrap();
        f.punch_hole(a.ino, PAGE, PAGE).unwrap();
        assert_eq!(f.getattr(a.ino).unwrap().blocks_bytes, 2 * PAGE);
        f.setattr(a.ino, &SetAttr::truncate(100)).unwrap();
        f.setattr(a.ino, &SetAttr::truncate(PAGE)).unwrap();
        let mut buf = vec![9u8; PAGE as usize];
        f.read(a.ino, 0, &mut buf).unwrap();
        assert!(buf[..100].iter().all(|&b| b == 7));
        assert!(buf[100..].iter().all(|&b| b == 0));
    }

    #[test]
    fn capacity_enforced() {
        let f = MemFs::new("tiny", 2 * PAGE);
        let a = f.create(ROOT_INO, "x", FileType::Regular, 0o644).unwrap();
        f.write(a.ino, 0, &vec![1u8; PAGE as usize]).unwrap();
        assert_eq!(
            f.write(a.ino, PAGE * 4, &vec![1u8; 2 * PAGE as usize])
                .unwrap_err(),
            VfsError::NoSpace
        );
        assert!(f.statfs().unwrap().free_bytes <= PAGE);
    }

    #[test]
    fn dirs_and_rename() {
        let f = fs();
        let d = f.create(ROOT_INO, "d", FileType::Directory, 0o755).unwrap();
        let a = f.create(d.ino, "x", FileType::Regular, 0o644).unwrap();
        f.rename(d.ino, "x", ROOT_INO, "y").unwrap();
        assert_eq!(f.lookup(ROOT_INO, "y").unwrap().ino, a.ino);
        assert!(f.lookup(d.ino, "x").is_err());
        f.unlink(ROOT_INO, "y").unwrap();
        f.unlink(ROOT_INO, "d").unwrap();
    }
}
