//! A DRAM page cache with LRU eviction and dirty-page pinning.
//!
//! Linux keeps the page cache in the VFS layer; block-device file systems
//! (`xefs`, `e4fs`) use this one. `novafs` does not — NOVA's DAX path reads
//! persistent memory directly, one of the device-specific behaviours the
//! paper's evaluation depends on (§3.2: the relative Mux overhead differs
//! per tier largely because the *base* read path differs).
//!
//! Clean pages are evicted LRU-first; dirty pages are pinned until the
//! owning file system takes them for writeback.

use std::collections::{BTreeMap, HashMap};

use crate::InodeNo;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the page.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Clean pages evicted.
    pub evictions: u64,
}

struct Page {
    data: Box<[u8]>,
    dirty: bool,
    stamp: u64,
}

/// An LRU page cache keyed by `(inode, page index)`.
pub struct PageCache {
    page_size: usize,
    capacity_pages: usize,
    pages: HashMap<(InodeNo, u64), Page>,
    lru: BTreeMap<u64, (InodeNo, u64)>,
    next_stamp: u64,
    stats: CacheStats,
    /// Incrementally maintained count of dirty pages (checked on every
    /// write for writeback throttling — must be O(1)).
    dirty_count: usize,
}

impl PageCache {
    /// Creates a cache holding at most `capacity_bytes` of `page_size`
    /// pages.
    pub fn new(capacity_bytes: u64, page_size: usize) -> Self {
        PageCache {
            page_size,
            capacity_pages: (capacity_bytes as usize / page_size).max(1),
            pages: HashMap::new(),
            lru: BTreeMap::new(),
            next_stamp: 0,
            stats: CacheStats::default(),
            dirty_count: 0,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Maximum resident pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Current resident pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn touch(&mut self, key: (InodeNo, u64)) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(p) = self.pages.get_mut(&key) {
            self.lru.remove(&p.stamp);
            p.stamp = stamp;
            self.lru.insert(stamp, key);
        }
    }

    /// Looks up a page, copying it into `out` on a hit.
    pub fn get(&mut self, ino: InodeNo, page: u64, out: &mut [u8]) -> bool {
        let key = (ino, page);
        if self.pages.contains_key(&key) {
            self.touch(key);
            let p = &self.pages[&key];
            out.copy_from_slice(&p.data);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Whether a page is resident (no LRU bump, no stats).
    pub fn contains(&self, ino: InodeNo, page: u64) -> bool {
        self.pages.contains_key(&(ino, page))
    }

    /// Inserts a clean page (after a device read), evicting if needed.
    pub fn insert_clean(&mut self, ino: InodeNo, page: u64, data: &[u8]) {
        debug_assert_eq!(data.len(), self.page_size);
        let key = (ino, page);
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(p) = self.pages.get_mut(&key) {
            // Keep dirty status: a racing writer's data must not be
            // silently marked clean.
            let was_dirty = p.dirty;
            self.lru.remove(&p.stamp);
            p.data.copy_from_slice(data);
            p.dirty = was_dirty;
            p.stamp = stamp;
            self.lru.insert(stamp, key);
            return;
        }
        self.pages.insert(
            key,
            Page {
                data: data.to_vec().into_boxed_slice(),
                dirty: false,
                stamp,
            },
        );
        self.lru.insert(stamp, key);
        self.evict_to_capacity();
    }

    /// Modifies (or creates) a page and marks it dirty. `init` provides the
    /// base content when the page is not resident (e.g. read from device or
    /// zeros); `apply` mutates it.
    pub fn update_dirty(
        &mut self,
        ino: InodeNo,
        page: u64,
        init: impl FnOnce() -> Vec<u8>,
        apply: impl FnOnce(&mut [u8]),
    ) {
        let key = (ino, page);
        if !self.pages.contains_key(&key) {
            let data = init();
            debug_assert_eq!(data.len(), self.page_size);
            let stamp = self.next_stamp;
            self.next_stamp += 1;
            self.pages.insert(
                key,
                Page {
                    data: data.into_boxed_slice(),
                    dirty: false,
                    stamp,
                },
            );
            self.lru.insert(stamp, key);
        }
        self.touch(key);
        let p = self.pages.get_mut(&key).expect("just inserted");
        apply(&mut p.data);
        if !p.dirty {
            p.dirty = true;
            self.dirty_count += 1;
        }
        self.evict_to_capacity();
    }

    /// Takes every dirty page of `ino` (ascending page order) for
    /// writeback, marking them clean in place.
    pub fn take_dirty(&mut self, ino: InodeNo) -> Vec<(u64, Vec<u8>)> {
        let mut out: Vec<(u64, Vec<u8>)> = self
            .pages
            .iter_mut()
            .filter(|((i, _), p)| *i == ino && p.dirty)
            .map(|((_, pg), p)| {
                p.dirty = false;
                (*pg, p.data.to_vec())
            })
            .collect();
        self.dirty_count -= out.len();
        out.sort_by_key(|(pg, _)| *pg);
        self.evict_to_capacity();
        out
    }

    /// Dirty page count for one inode.
    pub fn dirty_pages(&self, ino: InodeNo) -> usize {
        self.pages
            .iter()
            .filter(|((i, _), p)| *i == ino && p.dirty)
            .count()
    }

    /// Total dirty pages (O(1)).
    pub fn total_dirty(&self) -> usize {
        self.dirty_count
    }

    /// Inodes that currently own dirty pages.
    pub fn dirty_inodes(&self) -> Vec<InodeNo> {
        let mut v: Vec<InodeNo> = self
            .pages
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|((i, _), _)| *i)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Drops every page of `ino` (including dirty ones — the caller is
    /// deleting or truncating the file).
    pub fn invalidate(&mut self, ino: InodeNo) {
        let keys: Vec<(InodeNo, u64)> = self
            .pages
            .keys()
            .filter(|(i, _)| *i == ino)
            .copied()
            .collect();
        for k in keys {
            if let Some(p) = self.pages.remove(&k) {
                self.lru.remove(&p.stamp);
                if p.dirty {
                    self.dirty_count -= 1;
                }
            }
        }
    }

    /// Drops pages of `ino` in `[from_page, to_page)` — hole punching.
    pub fn invalidate_range(&mut self, ino: InodeNo, from_page: u64, to_page: u64) {
        let keys: Vec<(InodeNo, u64)> = self
            .pages
            .keys()
            .filter(|(i, pg)| *i == ino && (from_page..to_page).contains(pg))
            .copied()
            .collect();
        for k in keys {
            if let Some(p) = self.pages.remove(&k) {
                self.lru.remove(&p.stamp);
                if p.dirty {
                    self.dirty_count -= 1;
                }
            }
        }
    }

    /// Sorted list of `ino`'s dirty page indexes.
    pub fn dirty_page_list(&self, ino: InodeNo) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .pages
            .iter()
            .filter(|((i, _), p)| *i == ino && p.dirty)
            .map(|((_, pg), _)| *pg)
            .collect();
        v.sort_unstable();
        v
    }

    /// Drops pages of `ino` at or after `from_page` (truncate).
    pub fn invalidate_from(&mut self, ino: InodeNo, from_page: u64) {
        let keys: Vec<(InodeNo, u64)> = self
            .pages
            .keys()
            .filter(|(i, pg)| *i == ino && *pg >= from_page)
            .copied()
            .collect();
        for k in keys {
            if let Some(p) = self.pages.remove(&k) {
                self.lru.remove(&p.stamp);
                if p.dirty {
                    self.dirty_count -= 1;
                }
            }
        }
    }

    fn evict_to_capacity(&mut self) {
        while self.pages.len() > self.capacity_pages {
            // Everything dirty? Overcommit until writeback — O(1) check,
            // not an LRU scan (this runs on every write).
            if self.pages.len() == self.dirty_count {
                break;
            }
            // Oldest clean page goes first; dirty pages are pinned.
            let victim = self
                .lru
                .iter()
                .map(|(_, &k)| k)
                .find(|k| !self.pages[k].dirty);
            match victim {
                Some(k) => {
                    let p = self.pages.remove(&k).expect("present");
                    self.lru.remove(&p.stamp);
                    self.stats.evictions += 1;
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(b: u8) -> Vec<u8> {
        vec![b; 64]
    }

    fn cache(pages: u64) -> PageCache {
        PageCache::new(pages * 64, 64)
    }

    #[test]
    fn hit_after_insert() {
        let mut c = cache(4);
        c.insert_clean(1, 0, &page(7));
        let mut out = vec![0u8; 64];
        assert!(c.get(1, 0, &mut out));
        assert_eq!(out, page(7));
        assert!(!c.get(1, 1, &mut out));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache(2);
        c.insert_clean(1, 0, &page(0));
        c.insert_clean(1, 1, &page(1));
        // Touch page 0 so page 1 is the LRU victim.
        let mut out = vec![0u8; 64];
        c.get(1, 0, &mut out);
        c.insert_clean(1, 2, &page(2));
        assert!(c.contains(1, 0));
        assert!(!c.contains(1, 1));
        assert!(c.contains(1, 2));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_pages_survive_eviction_pressure() {
        let mut c = cache(2);
        c.update_dirty(1, 0, || page(0), |d| d[0] = 9);
        c.update_dirty(1, 1, || page(1), |d| d[0] = 9);
        c.insert_clean(1, 2, &page(2));
        // Clean page 2 must be the victim even though it is newest.
        assert!(c.contains(1, 0));
        assert!(c.contains(1, 1));
        assert!(!c.contains(1, 2));
    }

    #[test]
    fn take_dirty_returns_sorted_and_cleans() {
        let mut c = cache(8);
        c.update_dirty(1, 5, || page(5), |_| {});
        c.update_dirty(1, 2, || page(2), |_| {});
        c.update_dirty(2, 0, || page(0), |_| {});
        let taken = c.take_dirty(1);
        assert_eq!(
            taken.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec![2, 5]
        );
        assert_eq!(c.dirty_pages(1), 0);
        assert_eq!(c.dirty_pages(2), 1);
        // Pages remain resident, now clean.
        assert!(c.contains(1, 5));
        assert_eq!(c.dirty_inodes(), vec![2]);
    }

    #[test]
    fn update_dirty_applies_over_init() {
        let mut c = cache(4);
        c.update_dirty(
            1,
            0,
            || page(3),
            |d| {
                d[10] = 42;
            },
        );
        let mut out = vec![0u8; 64];
        c.get(1, 0, &mut out);
        assert_eq!(out[9], 3);
        assert_eq!(out[10], 42);
        // Second update must not re-init.
        c.update_dirty(1, 0, || panic!("must not init again"), |d| d[11] = 43);
        c.get(1, 0, &mut out);
        assert_eq!(out[10], 42);
        assert_eq!(out[11], 43);
    }

    #[test]
    fn insert_clean_on_dirty_page_keeps_dirty_flag() {
        let mut c = cache(4);
        c.update_dirty(1, 0, || page(1), |_| {});
        c.insert_clean(1, 0, &page(2));
        assert_eq!(c.dirty_pages(1), 1);
    }

    #[test]
    fn invalidate_drops_all_pages() {
        let mut c = cache(8);
        c.insert_clean(1, 0, &page(0));
        c.update_dirty(1, 1, || page(1), |_| {});
        c.insert_clean(2, 0, &page(9));
        c.invalidate(1);
        assert!(!c.contains(1, 0));
        assert!(!c.contains(1, 1));
        assert!(c.contains(2, 0));
    }

    #[test]
    fn invalidate_from_truncates() {
        let mut c = cache(8);
        for pg in 0..4 {
            c.insert_clean(1, pg, &page(pg as u8));
        }
        c.invalidate_from(1, 2);
        assert!(c.contains(1, 0));
        assert!(c.contains(1, 1));
        assert!(!c.contains(1, 2));
        assert!(!c.contains(1, 3));
    }

    #[test]
    fn dirty_counter_stays_consistent_through_mixed_ops() {
        let mut c = cache(16);
        let recount = |c: &PageCache| {
            (0..4u64)
                .flat_map(|i| (0..8u64).map(move |p| (i, p)))
                .filter(|&(i, p)| c.contains(i, p) && c.dirty_pages(i) > 0)
                .count(); // not the check itself — see below
        };
        let _ = recount;
        for i in 0..3u64 {
            for p in 0..4u64 {
                c.update_dirty(i, p, || page(1), |_| {});
            }
        }
        assert_eq!(c.total_dirty(), 12);
        c.update_dirty(0, 0, || page(0), |_| {}); // already dirty: no double count
        assert_eq!(c.total_dirty(), 12);
        c.take_dirty(0);
        assert_eq!(c.total_dirty(), 8);
        c.invalidate(1);
        assert_eq!(c.total_dirty(), 4);
        c.invalidate_range(2, 0, 2);
        assert_eq!(c.total_dirty(), 2);
        c.invalidate_from(2, 3);
        assert_eq!(c.total_dirty(), 1);
        c.invalidate(2);
        assert_eq!(c.total_dirty(), 0);
        // Re-dirtying a clean resident page counts again.
        c.update_dirty(0, 0, || page(0), |_| {});
        assert_eq!(c.total_dirty(), 1);
    }

    #[test]
    fn all_dirty_overcommits_instead_of_losing_data() {
        let mut c = cache(2);
        for pg in 0..4 {
            c.update_dirty(1, pg, || page(pg as u8), |_| {});
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.total_dirty(), 4);
        // Writeback lets it shrink again.
        c.take_dirty(1);
        assert!(c.len() <= 2);
    }
}
