//! Path normalization helpers.

/// Normalizes a path: collapses `//`, resolves `.` and `..` lexically, and
/// guarantees a leading `/`. The root is `"/"`.
///
/// `..` above the root stays at the root, as in POSIX.
pub fn normalize(path: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            other => parts.push(other),
        }
    }
    if parts.is_empty() {
        "/".to_string()
    } else {
        format!("/{}", parts.join("/"))
    }
}

/// Splits a normalized path into `(parent_dir, file_name)`.
///
/// Returns `None` for the root path, which has no parent.
pub fn split_parent(path: &str) -> Option<(&str, &str)> {
    let path = path.trim_end_matches('/');
    if path.is_empty() {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some(("/", &path[1..])),
        Some(i) => Some((&path[..i], &path[i + 1..])),
        None => Some(("/", path)),
    }
}

/// Joins a directory path and a child name.
pub fn join_path(dir: &str, name: &str) -> String {
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{}/{name}", dir.trim_end_matches('/'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basic() {
        assert_eq!(normalize("/a/b/c"), "/a/b/c");
        assert_eq!(normalize("a/b"), "/a/b");
        assert_eq!(normalize("/a//b/"), "/a/b");
        assert_eq!(normalize("/"), "/");
        assert_eq!(normalize(""), "/");
    }

    #[test]
    fn normalize_dots() {
        assert_eq!(normalize("/a/./b"), "/a/b");
        assert_eq!(normalize("/a/../b"), "/b");
        assert_eq!(normalize("/../../a"), "/a");
        assert_eq!(normalize("/a/b/../.."), "/");
    }

    #[test]
    fn split_parent_basic() {
        assert_eq!(split_parent("/a"), Some(("/", "a")));
        assert_eq!(split_parent("/a/b"), Some(("/a", "b")));
        assert_eq!(split_parent("/a/b/c"), Some(("/a/b", "c")));
        assert_eq!(split_parent("/"), None);
        assert_eq!(split_parent(""), None);
    }

    #[test]
    fn join_roundtrips_split() {
        for p in ["/a", "/a/b", "/x/y/z"] {
            let (d, n) = split_parent(p).unwrap();
            assert_eq!(join_path(d, n), p);
        }
    }
}
