//! An extent tree: a map from `u64` ranges to values, with splitting and
//! coalescing.
//!
//! This is the data structure behind both the native file systems' extent
//! maps (file page → device page) and Mux's Block Lookup Table (file block →
//! tier; paper §2.2 "we use an extent tree as a high-performance data
//! structure"). Keys are abstract units (pages, blocks or bytes — the caller
//! chooses).

use std::collections::BTreeMap;

/// A value that can live in a [`RangeMap`] segment.
///
/// Segments cover `[start, start+len)`; the value logically varies along the
/// segment via [`Segmentable::advance`] (e.g. a device-page mapping advances
/// page-by-page, while a tier id is constant).
pub trait Segmentable: Copy + Eq + std::fmt::Debug {
    /// The value `delta` units into a segment that starts with `self`.
    fn advance(&self, delta: u64) -> Self;

    /// Whether a segment holding `other` directly after a segment of length
    /// `len` holding `self` can be merged into one segment.
    fn can_append(&self, len: u64, other: &Self) -> bool;
}

/// Constant-valued segments: tier ids, flags.
impl Segmentable for u32 {
    fn advance(&self, _delta: u64) -> Self {
        *self
    }

    fn can_append(&self, _len: u64, other: &Self) -> bool {
        self == other
    }
}

/// Linearly advancing segments: contiguous page mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Linear(pub u64);

impl Segmentable for Linear {
    fn advance(&self, delta: u64) -> Self {
        Linear(self.0 + delta)
    }

    fn can_append(&self, len: u64, other: &Self) -> bool {
        self.0 + len == other.0
    }
}

/// One contiguous mapped extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent<V> {
    /// First unit covered.
    pub start: u64,
    /// Number of units covered.
    pub len: u64,
    /// Value at `start` (use [`Segmentable::advance`] for later units).
    pub value: V,
}

/// An ordered map from disjoint `u64` ranges to [`Segmentable`] values.
///
/// # Examples
///
/// ```
/// use tvfs::{Linear, RangeMap};
///
/// // A file-page → device-page extent map.
/// let mut m: RangeMap<Linear> = RangeMap::new();
/// m.insert(0, 10, Linear(100));      // pages 0..10 at device 100..110
/// m.insert(3, 2, Linear(500));       // overwrite splits the extent
/// assert_eq!(m.get(2), Some(Linear(102)));
/// assert_eq!(m.get(4), Some(Linear(501)));
/// assert_eq!(m.get(5), Some(Linear(105)));
/// assert_eq!(m.segment_count(), 3);
/// assert_eq!(m.covered(), 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeMap<V> {
    segs: BTreeMap<u64, (u64, V)>,
    /// Incrementally maintained unit count (queried on hot paths).
    covered: u64,
}

impl<V: Segmentable> RangeMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        RangeMap {
            segs: BTreeMap::new(),
            covered: 0,
        }
    }

    /// Number of stored segments (after coalescing).
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// Whether nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Total units covered by all segments (O(1)).
    pub fn covered(&self) -> u64 {
        self.covered
    }

    /// Maps `[start, start+len)` to `value` (advancing along the range),
    /// overwriting any previous mappings in that range.
    pub fn insert(&mut self, start: u64, len: u64, value: V) {
        if len == 0 {
            return;
        }
        self.remove(start, len);
        self.segs.insert(start, (len, value));
        self.covered += len;
        self.coalesce_around(start);
    }

    /// Unmaps `[start, start+len)`, splitting boundary segments.
    pub fn remove(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = start.checked_add(len).expect("range overflow");
        // Left neighbour overlapping the start?
        if let Some((&s, &(l, v))) = self.segs.range(..start).next_back() {
            if s + l > start {
                // Truncate it to end at `start`.
                self.segs.insert(s, (start - s, v));
                self.covered -= (s + l).min(end) - start;
                if s + l > end {
                    // It also extends past the removal: re-insert the tail.
                    self.segs.insert(end, (s + l - end, v.advance(end - s)));
                }
            }
        }
        // Segments starting inside the range.
        let inside: Vec<u64> = self.segs.range(start..end).map(|(&s, _)| s).collect();
        for s in inside {
            let (l, v) = self.segs.remove(&s).expect("present");
            self.covered -= (s + l).min(end) - s;
            if s + l > end {
                self.segs.insert(end, (s + l - end, v.advance(end - s)));
            }
        }
    }

    /// Value mapped at `pos`, if any.
    pub fn get(&self, pos: u64) -> Option<V> {
        let (&s, &(l, v)) = self.segs.range(..=pos).next_back()?;
        if s + l > pos {
            Some(v.advance(pos - s))
        } else {
            None
        }
    }

    /// Iterates the mapped extents intersecting `[start, start+len)`,
    /// clipped to that window.
    pub fn overlapping(&self, start: u64, len: u64) -> Vec<Extent<V>> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let end = start.saturating_add(len);
        // The segment starting before `start` may lap in.
        if let Some((&s, &(l, v))) = self.segs.range(..start).next_back() {
            if s + l > start {
                let clip_end = (s + l).min(end);
                out.push(Extent {
                    start,
                    len: clip_end - start,
                    value: v.advance(start - s),
                });
            }
        }
        for (&s, &(l, v)) in self.segs.range(start..end) {
            let clip_end = (s + l).min(end);
            out.push(Extent {
                start: s,
                len: clip_end - s,
                value: v,
            });
        }
        out
    }

    /// All extents, in order.
    pub fn iter(&self) -> impl Iterator<Item = Extent<V>> + '_ {
        self.segs.iter().map(|(&s, &(l, v))| Extent {
            start: s,
            len: l,
            value: v,
        })
    }

    /// First mapped extent at or after `pos` (clipped at the start), i.e.
    /// `SEEK_DATA`.
    pub fn next_mapped(&self, pos: u64) -> Option<Extent<V>> {
        if let Some(v) = self.get(pos) {
            let (&s, &(l, _)) = self.segs.range(..=pos).next_back().expect("get hit");
            return Some(Extent {
                start: pos,
                len: s + l - pos,
                value: v,
            });
        }
        self.segs.range(pos..).next().map(|(&s, &(l, v))| Extent {
            start: s,
            len: l,
            value: v,
        })
    }

    /// Largest mapped position + 1, or 0 if empty.
    pub fn end(&self) -> u64 {
        self.segs
            .iter()
            .next_back()
            .map(|(&s, &(l, _))| s + l)
            .unwrap_or(0)
    }

    fn coalesce_around(&mut self, start: u64) {
        // Try to merge with left neighbour.
        let mut anchor = start;
        if let Some((&ls, &(ll, lv))) = self.segs.range(..start).next_back() {
            if ls + ll == start {
                let (l, v) = self.segs[&start];
                if lv.can_append(ll, &v) {
                    self.segs.remove(&start);
                    self.segs.insert(ls, (ll + l, lv));
                    anchor = ls;
                }
            }
        }
        // Try to merge with right neighbour.
        let (al, av) = self.segs[&anchor];
        if let Some((&rs, &(rl, rv))) = self.segs.range(anchor + 1..).next() {
            if anchor + al == rs && av.can_append(al, &rv) {
                self.segs.remove(&rs);
                self.segs.insert(anchor, (al + rl, av));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get() {
        let mut m = RangeMap::new();
        m.insert(10, 5, 7u32);
        assert_eq!(m.get(9), None);
        assert_eq!(m.get(10), Some(7));
        assert_eq!(m.get(14), Some(7));
        assert_eq!(m.get(15), None);
    }

    #[test]
    fn linear_values_advance() {
        let mut m = RangeMap::new();
        m.insert(100, 8, Linear(500));
        assert_eq!(m.get(100), Some(Linear(500)));
        assert_eq!(m.get(107), Some(Linear(507)));
    }

    #[test]
    fn overwrite_splits_old_segment() {
        let mut m = RangeMap::new();
        m.insert(0, 10, Linear(100));
        m.insert(3, 4, Linear(500));
        assert_eq!(m.get(2), Some(Linear(102)));
        assert_eq!(m.get(3), Some(Linear(500)));
        assert_eq!(m.get(6), Some(Linear(503)));
        assert_eq!(m.get(7), Some(Linear(107)));
        assert_eq!(m.segment_count(), 3);
        assert_eq!(m.covered(), 10);
    }

    #[test]
    fn adjacent_equal_constant_segments_coalesce() {
        let mut m = RangeMap::new();
        m.insert(0, 5, 1u32);
        m.insert(5, 5, 1u32);
        assert_eq!(m.segment_count(), 1);
        m.insert(10, 5, 2u32);
        assert_eq!(m.segment_count(), 2);
    }

    #[test]
    fn adjacent_linear_segments_coalesce_only_when_contiguous() {
        let mut m = RangeMap::new();
        m.insert(0, 4, Linear(100));
        m.insert(4, 4, Linear(104)); // contiguous on both axes
        assert_eq!(m.segment_count(), 1);
        m.insert(8, 4, Linear(999)); // key-adjacent, value not contiguous
        assert_eq!(m.segment_count(), 2);
    }

    #[test]
    fn remove_middle_splits() {
        let mut m = RangeMap::new();
        m.insert(0, 10, Linear(100));
        m.remove(4, 2);
        assert_eq!(m.get(3), Some(Linear(103)));
        assert_eq!(m.get(4), None);
        assert_eq!(m.get(5), None);
        assert_eq!(m.get(6), Some(Linear(106)));
        assert_eq!(m.covered(), 8);
    }

    #[test]
    fn remove_spanning_multiple_segments() {
        let mut m = RangeMap::new();
        m.insert(0, 4, 1u32);
        m.insert(10, 4, 2u32);
        m.insert(20, 4, 3u32);
        m.remove(2, 20);
        assert_eq!(m.get(1), Some(1));
        assert_eq!(m.get(2), None);
        assert_eq!(m.get(21), None);
        assert_eq!(m.get(22), Some(3));
    }

    #[test]
    fn overlapping_clips_to_window() {
        let mut m = RangeMap::new();
        m.insert(0, 10, Linear(100));
        m.insert(20, 10, Linear(200));
        let got = m.overlapping(5, 18);
        assert_eq!(
            got,
            vec![
                Extent {
                    start: 5,
                    len: 5,
                    value: Linear(105)
                },
                Extent {
                    start: 20,
                    len: 3,
                    value: Linear(200)
                },
            ]
        );
    }

    #[test]
    fn next_mapped_seek_data() {
        let mut m = RangeMap::new();
        m.insert(10, 5, 1u32);
        assert_eq!(
            m.next_mapped(0),
            Some(Extent {
                start: 10,
                len: 5,
                value: 1
            })
        );
        assert_eq!(
            m.next_mapped(12),
            Some(Extent {
                start: 12,
                len: 3,
                value: 1
            })
        );
        assert_eq!(m.next_mapped(15), None);
    }

    #[test]
    fn end_tracks_last_extent() {
        let mut m = RangeMap::new();
        assert_eq!(m.end(), 0);
        m.insert(10, 5, 1u32);
        assert_eq!(m.end(), 15);
        m.insert(100, 1, 1u32);
        assert_eq!(m.end(), 101);
    }

    #[test]
    fn zero_length_ops_are_noops() {
        let mut m = RangeMap::new();
        m.insert(5, 0, 1u32);
        assert!(m.is_empty());
        m.insert(5, 3, 1u32);
        m.remove(5, 0);
        assert_eq!(m.covered(), 3);
        assert!(m.overlapping(0, 0).is_empty());
    }
}
