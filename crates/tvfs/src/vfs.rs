//! Mount table and file-descriptor layer.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::fs::{resolve_parent, resolve_path};
use crate::{
    DirEntry, FileAttr, FileSystem, FileType, InodeNo, OpenFlags, SetAttr, StatFs, VfsError,
    VfsResult,
};

/// A file-descriptor handle returned by [`Vfs::open`].
pub type Fd = u64;

/// Identifier of a mount within the [`Vfs`] mount table.
pub type MountId = u64;

struct Mount {
    id: MountId,
    /// Normalized mount point; `"/"` allowed for exactly one mount.
    path: String,
    fs: Arc<dyn FileSystem>,
}

struct OpenFile {
    fs: Arc<dyn FileSystem>,
    ino: InodeNo,
    flags: OpenFlags,
    pos: u64,
}

/// The VFS: a mount table plus a POSIX-ish file API.
///
/// Applications in this reproduction talk to a `Vfs` exactly the way Linux
/// applications talk to the kernel VFS. In the Mux configuration a single
/// Mux instance is mounted at `/` and the native file systems are *not*
/// mounted here at all — they are registered directly with Mux, which calls
/// their [`FileSystem`] methods itself. In the "no tiering" baseline
/// configurations, a native file system is mounted at `/` directly.
#[derive(Clone)]
pub struct Vfs {
    shared: Arc<Shared>,
}

struct Shared {
    mounts: RwLock<Vec<Mount>>,
    next_mount: Mutex<MountId>,
    fds: Mutex<Vec<Option<OpenFile>>>,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates an empty VFS with no mounts.
    pub fn new() -> Self {
        Vfs {
            shared: Arc::new(Shared {
                mounts: RwLock::new(Vec::new()),
                next_mount: Mutex::new(1),
                fds: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Mounts `fs` at `path` (normalized). Longest-prefix match wins at
    /// resolution time, so `/` and `/archive` may coexist.
    pub fn mount(&self, path: &str, fs: Arc<dyn FileSystem>) -> VfsResult<MountId> {
        let path = crate::normalize(path);
        let mut mounts = self.shared.mounts.write();
        if mounts.iter().any(|m| m.path == path) {
            return Err(VfsError::Exists);
        }
        let mut next = self.shared.next_mount.lock();
        let id = *next;
        *next += 1;
        mounts.push(Mount { id, path, fs });
        Ok(id)
    }

    /// Unmounts the mount with `id`. Fails with [`VfsError::Busy`] if any
    /// open descriptor still refers to that file system.
    pub fn umount(&self, id: MountId) -> VfsResult<()> {
        let mut mounts = self.shared.mounts.write();
        let idx = mounts
            .iter()
            .position(|m| m.id == id)
            .ok_or(VfsError::NotFound)?;
        let fs = Arc::clone(&mounts[idx].fs);
        let fds = self.shared.fds.lock();
        if fds.iter().flatten().any(|f| Arc::ptr_eq(&f.fs, &fs)) {
            return Err(VfsError::Busy);
        }
        mounts.remove(idx);
        Ok(())
    }

    /// Resolves `path` to `(file_system, path_within_fs)` by longest-prefix
    /// mount match.
    pub fn resolve_mount(&self, path: &str) -> VfsResult<(Arc<dyn FileSystem>, String)> {
        let path = crate::normalize(path);
        let mounts = self.shared.mounts.read();
        let best = mounts
            .iter()
            .filter(|m| {
                path == m.path || m.path == "/" || path.starts_with(&format!("{}/", m.path))
            })
            .max_by_key(|m| m.path.len())
            .ok_or(VfsError::NotFound)?;
        let rel = if best.path == "/" {
            path.clone()
        } else {
            let r = &path[best.path.len()..];
            if r.is_empty() {
                "/".into()
            } else {
                r.to_string()
            }
        };
        Ok((Arc::clone(&best.fs), rel))
    }

    /// Opens `path` with `flags`, creating the file if requested.
    pub fn open(&self, path: &str, flags: OpenFlags) -> VfsResult<Fd> {
        let (fs, rel) = self.resolve_mount(path)?;
        let attr = match resolve_path(fs.as_ref(), &rel) {
            Ok(a) => {
                if a.is_dir() && (flags.write || flags.truncate) {
                    return Err(VfsError::IsDir);
                }
                a
            }
            Err(VfsError::NotFound) if flags.create => {
                let (parent, name) = resolve_parent(fs.as_ref(), &rel)?;
                fs.create(parent.ino, name, FileType::Regular, 0o644)?
            }
            Err(e) => return Err(e),
        };
        if flags.truncate && attr.size > 0 {
            fs.setattr(attr.ino, &SetAttr::truncate(0))?;
        }
        let mut fds = self.shared.fds.lock();
        let of = OpenFile {
            fs,
            ino: attr.ino,
            flags,
            pos: 0,
        };
        let fd = match fds.iter().position(Option::is_none) {
            Some(i) => {
                fds[i] = Some(of);
                i
            }
            None => {
                fds.push(Some(of));
                fds.len() - 1
            }
        };
        Ok(fd as Fd)
    }

    /// Closes a descriptor.
    pub fn close(&self, fd: Fd) -> VfsResult<()> {
        let mut fds = self.shared.fds.lock();
        let slot = fds.get_mut(fd as usize).ok_or(VfsError::BadHandle)?;
        if slot.take().is_none() {
            return Err(VfsError::BadHandle);
        }
        Ok(())
    }

    fn with_fd<R>(&self, fd: Fd, f: impl FnOnce(&mut OpenFile) -> VfsResult<R>) -> VfsResult<R> {
        let mut fds = self.shared.fds.lock();
        let of = fds
            .get_mut(fd as usize)
            .and_then(Option::as_mut)
            .ok_or(VfsError::BadHandle)?;
        f(of)
    }

    /// Reads at the descriptor's position, advancing it.
    pub fn read(&self, fd: Fd, buf: &mut [u8]) -> VfsResult<usize> {
        let (fs, ino, pos) = self.with_fd(fd, |of| {
            if !of.flags.read {
                return Err(VfsError::BadHandle);
            }
            Ok((Arc::clone(&of.fs), of.ino, of.pos))
        })?;
        let n = fs.read(ino, pos, buf)?;
        self.with_fd(fd, |of| {
            of.pos = pos + n as u64;
            Ok(())
        })?;
        Ok(n)
    }

    /// Writes at the descriptor's position (or EOF with `append`),
    /// advancing it.
    pub fn write(&self, fd: Fd, data: &[u8]) -> VfsResult<usize> {
        let (fs, ino, flags, mut pos) = self.with_fd(fd, |of| {
            if !of.flags.write {
                return Err(VfsError::BadHandle);
            }
            Ok((Arc::clone(&of.fs), of.ino, of.flags, of.pos))
        })?;
        if flags.append {
            pos = fs.getattr(ino)?.size;
        }
        let n = fs.write(ino, pos, data)?;
        if flags.sync {
            fs.fsync(ino)?;
        }
        self.with_fd(fd, |of| {
            of.pos = pos + n as u64;
            Ok(())
        })?;
        Ok(n)
    }

    /// Positional read; does not move the descriptor offset.
    pub fn pread(&self, fd: Fd, off: u64, buf: &mut [u8]) -> VfsResult<usize> {
        let (fs, ino) = self.with_fd(fd, |of| {
            if !of.flags.read {
                return Err(VfsError::BadHandle);
            }
            Ok((Arc::clone(&of.fs), of.ino))
        })?;
        fs.read(ino, off, buf)
    }

    /// Positional write; does not move the descriptor offset.
    pub fn pwrite(&self, fd: Fd, off: u64, data: &[u8]) -> VfsResult<usize> {
        let (fs, ino, sync) = self.with_fd(fd, |of| {
            if !of.flags.write {
                return Err(VfsError::BadHandle);
            }
            Ok((Arc::clone(&of.fs), of.ino, of.flags.sync))
        })?;
        let n = fs.write(ino, off, data)?;
        if sync {
            fs.fsync(ino)?;
        }
        Ok(n)
    }

    /// Absolute seek; returns the new position.
    pub fn seek(&self, fd: Fd, pos: u64) -> VfsResult<u64> {
        self.with_fd(fd, |of| {
            of.pos = pos;
            Ok(pos)
        })
    }

    /// `fstat`.
    pub fn fstat(&self, fd: Fd) -> VfsResult<FileAttr> {
        let (fs, ino) = self.with_fd(fd, |of| Ok((Arc::clone(&of.fs), of.ino)))?;
        fs.getattr(ino)
    }

    /// Persists one open file.
    pub fn fsync(&self, fd: Fd) -> VfsResult<()> {
        let (fs, ino) = self.with_fd(fd, |of| Ok((Arc::clone(&of.fs), of.ino)))?;
        fs.fsync(ino)
    }

    /// `stat` by path.
    pub fn stat(&self, path: &str) -> VfsResult<FileAttr> {
        let (fs, rel) = self.resolve_mount(path)?;
        resolve_path(fs.as_ref(), &rel)
    }

    /// Applies attribute changes by path.
    pub fn setattr(&self, path: &str, set: &SetAttr) -> VfsResult<FileAttr> {
        let (fs, rel) = self.resolve_mount(path)?;
        let attr = resolve_path(fs.as_ref(), &rel)?;
        fs.setattr(attr.ino, set)
    }

    /// Creates a directory.
    pub fn mkdir(&self, path: &str) -> VfsResult<FileAttr> {
        let (fs, rel) = self.resolve_mount(path)?;
        let (parent, name) = resolve_parent(fs.as_ref(), &rel)?;
        fs.create(parent.ino, name, FileType::Directory, 0o755)
    }

    /// Removes a file or empty directory.
    pub fn unlink(&self, path: &str) -> VfsResult<()> {
        let (fs, rel) = self.resolve_mount(path)?;
        let (parent, name) = resolve_parent(fs.as_ref(), &rel)?;
        fs.unlink(parent.ino, name)
    }

    /// Renames within a single mount.
    pub fn rename(&self, from: &str, to: &str) -> VfsResult<()> {
        let (fs_a, rel_a) = self.resolve_mount(from)?;
        let (fs_b, rel_b) = self.resolve_mount(to)?;
        if !Arc::ptr_eq(&fs_a, &fs_b) {
            return Err(VfsError::NotSupported);
        }
        let (pa, na) = resolve_parent(fs_a.as_ref(), &rel_a)?;
        let (pb, nb) = resolve_parent(fs_b.as_ref(), &rel_b)?;
        fs_a.rename(pa.ino, na, pb.ino, nb)
    }

    /// Lists a directory.
    pub fn readdir(&self, path: &str) -> VfsResult<Vec<DirEntry>> {
        let (fs, rel) = self.resolve_mount(path)?;
        let attr = resolve_path(fs.as_ref(), &rel)?;
        fs.readdir(attr.ino)
    }

    /// `statfs` for the mount containing `path`.
    pub fn statfs(&self, path: &str) -> VfsResult<StatFs> {
        let (fs, _) = self.resolve_mount(path)?;
        fs.statfs()
    }

    /// Persists every mounted file system.
    pub fn sync_all(&self) -> VfsResult<()> {
        let mounts = self.shared.mounts.read();
        for m in mounts.iter() {
            m.fs.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VfsError;
    use std::collections::HashMap;

    /// A trivially simple in-memory FileSystem used to test the VFS layer
    /// itself (the real file systems live in their own crates).
    struct MemFs {
        inner: Mutex<MemInner>,
    }

    struct MemInner {
        next_ino: InodeNo,
        files: HashMap<InodeNo, (FileAttr, Vec<u8>)>,
        dirs: HashMap<InodeNo, HashMap<String, InodeNo>>,
        attrs: HashMap<InodeNo, FileAttr>,
    }

    impl MemFs {
        fn new() -> Self {
            let mut dirs = HashMap::new();
            dirs.insert(ROOT, HashMap::new());
            let mut attrs = HashMap::new();
            attrs.insert(ROOT, FileAttr::new(ROOT, FileType::Directory, 0o755, 0));
            MemFs {
                inner: Mutex::new(MemInner {
                    next_ino: ROOT + 1,
                    files: HashMap::new(),
                    dirs,
                    attrs,
                }),
            }
        }
    }

    const ROOT: InodeNo = crate::ROOT_INO;

    impl FileSystem for MemFs {
        fn fs_name(&self) -> &str {
            "memfs"
        }

        fn lookup(&self, parent: InodeNo, name: &str) -> VfsResult<FileAttr> {
            let inner = self.inner.lock();
            let dir = inner.dirs.get(&parent).ok_or(VfsError::NotDir)?;
            let ino = *dir.get(name).ok_or(VfsError::NotFound)?;
            inner
                .attrs
                .get(&ino)
                .copied()
                .or_else(|| inner.files.get(&ino).map(|f| f.0))
                .ok_or(VfsError::Stale)
        }

        fn getattr(&self, ino: InodeNo) -> VfsResult<FileAttr> {
            let inner = self.inner.lock();
            inner
                .attrs
                .get(&ino)
                .copied()
                .or_else(|| inner.files.get(&ino).map(|f| f.0))
                .ok_or(VfsError::NotFound)
        }

        fn setattr(&self, ino: InodeNo, set: &SetAttr) -> VfsResult<FileAttr> {
            let mut inner = self.inner.lock();
            let f = inner.files.get_mut(&ino).ok_or(VfsError::NotFound)?;
            if let Some(sz) = set.size {
                f.1.resize(sz as usize, 0);
                f.0.size = sz;
            }
            Ok(f.0)
        }

        fn create(
            &self,
            parent: InodeNo,
            name: &str,
            kind: FileType,
            mode: u32,
        ) -> VfsResult<FileAttr> {
            let mut inner = self.inner.lock();
            let ino = inner.next_ino;
            {
                let dir = inner.dirs.get_mut(&parent).ok_or(VfsError::NotDir)?;
                if dir.contains_key(name) {
                    return Err(VfsError::Exists);
                }
                dir.insert(name.to_string(), ino);
            }
            inner.next_ino += 1;
            let attr = FileAttr::new(ino, kind, mode, 0);
            match kind {
                FileType::Regular => {
                    inner.files.insert(ino, (attr, Vec::new()));
                }
                FileType::Directory => {
                    inner.dirs.insert(ino, HashMap::new());
                    inner.attrs.insert(ino, attr);
                }
            }
            Ok(attr)
        }

        fn unlink(&self, parent: InodeNo, name: &str) -> VfsResult<()> {
            let mut inner = self.inner.lock();
            let ino = {
                let dir = inner.dirs.get_mut(&parent).ok_or(VfsError::NotDir)?;
                dir.remove(name).ok_or(VfsError::NotFound)?
            };
            inner.files.remove(&ino);
            inner.dirs.remove(&ino);
            inner.attrs.remove(&ino);
            Ok(())
        }

        fn rename(
            &self,
            parent: InodeNo,
            name: &str,
            new_parent: InodeNo,
            new_name: &str,
        ) -> VfsResult<()> {
            let mut inner = self.inner.lock();
            let ino = {
                let dir = inner.dirs.get_mut(&parent).ok_or(VfsError::NotDir)?;
                dir.remove(name).ok_or(VfsError::NotFound)?
            };
            let ndir = inner.dirs.get_mut(&new_parent).ok_or(VfsError::NotDir)?;
            ndir.insert(new_name.to_string(), ino);
            Ok(())
        }

        fn readdir(&self, ino: InodeNo) -> VfsResult<Vec<DirEntry>> {
            let inner = self.inner.lock();
            let dir = inner.dirs.get(&ino).ok_or(VfsError::NotDir)?;
            Ok(dir
                .iter()
                .map(|(n, &i)| DirEntry {
                    name: n.clone(),
                    ino: i,
                    kind: if inner.dirs.contains_key(&i) {
                        FileType::Directory
                    } else {
                        FileType::Regular
                    },
                })
                .collect())
        }

        fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> VfsResult<usize> {
            let inner = self.inner.lock();
            let f = inner.files.get(&ino).ok_or(VfsError::NotFound)?;
            if off >= f.1.len() as u64 {
                return Ok(0);
            }
            let n = buf.len().min(f.1.len() - off as usize);
            buf[..n].copy_from_slice(&f.1[off as usize..off as usize + n]);
            Ok(n)
        }

        fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> VfsResult<usize> {
            let mut inner = self.inner.lock();
            let f = inner.files.get_mut(&ino).ok_or(VfsError::NotFound)?;
            let end = off as usize + data.len();
            if f.1.len() < end {
                f.1.resize(end, 0);
                f.0.size = end as u64;
            }
            f.1[off as usize..end].copy_from_slice(data);
            Ok(data.len())
        }

        fn punch_hole(&self, ino: InodeNo, off: u64, len: u64) -> VfsResult<()> {
            let mut inner = self.inner.lock();
            let f = inner.files.get_mut(&ino).ok_or(VfsError::NotFound)?;
            let end = ((off + len) as usize).min(f.1.len());
            if (off as usize) < end {
                f.1[off as usize..end].fill(0);
            }
            Ok(())
        }

        fn next_data(&self, ino: InodeNo, off: u64) -> VfsResult<Option<(u64, u64)>> {
            let inner = self.inner.lock();
            let f = inner.files.get(&ino).ok_or(VfsError::NotFound)?;
            if off >= f.1.len() as u64 {
                return Ok(None);
            }
            Ok(Some((off, f.1.len() as u64 - off)))
        }

        fn fsync(&self, _ino: InodeNo) -> VfsResult<()> {
            Ok(())
        }

        fn sync(&self) -> VfsResult<()> {
            Ok(())
        }

        fn statfs(&self) -> VfsResult<StatFs> {
            Ok(StatFs {
                total_bytes: 1 << 20,
                free_bytes: 1 << 19,
                inodes: self.inner.lock().files.len() as u64,
                block_size: 4096,
            })
        }
    }

    fn vfs_with_memfs() -> Vfs {
        let v = Vfs::new();
        v.mount("/", Arc::new(MemFs::new())).unwrap();
        v
    }

    #[test]
    fn open_create_write_read() {
        let v = vfs_with_memfs();
        let fd = v.open("/hello.txt", OpenFlags::read_write()).unwrap();
        assert_eq!(v.write(fd, b"hi there").unwrap(), 8);
        v.seek(fd, 0).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(v.read(fd, &mut buf).unwrap(), 8);
        assert_eq!(&buf, b"hi there");
        v.close(fd).unwrap();
    }

    #[test]
    fn open_missing_without_create_fails() {
        let v = vfs_with_memfs();
        assert_eq!(
            v.open("/nope", OpenFlags::read_only()).unwrap_err(),
            VfsError::NotFound
        );
    }

    #[test]
    fn pread_pwrite_do_not_move_offset() {
        let v = vfs_with_memfs();
        let fd = v.open("/f", OpenFlags::read_write()).unwrap();
        v.pwrite(fd, 100, b"xyz").unwrap();
        let mut b = [0u8; 3];
        assert_eq!(v.pread(fd, 100, &mut b).unwrap(), 3);
        assert_eq!(&b, b"xyz");
        // Sequential read still starts at 0.
        let mut z = [9u8; 3];
        v.read(fd, &mut z).unwrap();
        assert_eq!(z, [0, 0, 0]);
    }

    #[test]
    fn append_mode_writes_at_eof() {
        let v = vfs_with_memfs();
        let fd = v
            .open(
                "/log",
                OpenFlags {
                    read: true,
                    write: true,
                    create: true,
                    append: true,
                    ..Default::default()
                },
            )
            .unwrap();
        v.write(fd, b"aaa").unwrap();
        v.seek(fd, 0).unwrap();
        v.write(fd, b"bbb").unwrap(); // must still append
        assert_eq!(v.fstat(fd).unwrap().size, 6);
    }

    #[test]
    fn truncate_on_open() {
        let v = vfs_with_memfs();
        let fd = v.open("/t", OpenFlags::read_write()).unwrap();
        v.write(fd, b"0123456789").unwrap();
        v.close(fd).unwrap();
        let fd = v
            .open(
                "/t",
                OpenFlags {
                    read: true,
                    write: true,
                    truncate: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(v.fstat(fd).unwrap().size, 0);
    }

    #[test]
    fn mkdir_readdir_unlink() {
        let v = vfs_with_memfs();
        v.mkdir("/dir").unwrap();
        let fd = v.open("/dir/f", OpenFlags::read_write()).unwrap();
        v.close(fd).unwrap();
        let names: Vec<String> = v
            .readdir("/dir")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["f"]);
        v.unlink("/dir/f").unwrap();
        assert!(v.readdir("/dir").unwrap().is_empty());
    }

    #[test]
    fn rename_moves_entry() {
        let v = vfs_with_memfs();
        let fd = v.open("/a", OpenFlags::read_write()).unwrap();
        v.write(fd, b"data").unwrap();
        v.close(fd).unwrap();
        v.rename("/a", "/b").unwrap();
        assert_eq!(v.stat("/a").unwrap_err(), VfsError::NotFound);
        assert_eq!(v.stat("/b").unwrap().size, 4);
    }

    #[test]
    fn longest_prefix_mount_wins() {
        let v = Vfs::new();
        let root = Arc::new(MemFs::new());
        let nested = Arc::new(MemFs::new());
        v.mount("/", root).unwrap();
        v.mount("/fast", Arc::clone(&nested) as Arc<dyn FileSystem>)
            .unwrap();
        let fd = v.open("/fast/x", OpenFlags::read_write()).unwrap();
        v.write(fd, b"q").unwrap();
        v.close(fd).unwrap();
        // The nested fs got the file; the root did not.
        assert!(nested.lookup(ROOT, "x").is_ok());
        assert_eq!(v.stat("/x").unwrap_err(), VfsError::NotFound);
    }

    #[test]
    fn umount_busy_with_open_fd() {
        let v = Vfs::new();
        let id = v.mount("/", Arc::new(MemFs::new())).unwrap();
        let fd = v.open("/f", OpenFlags::read_write()).unwrap();
        assert_eq!(v.umount(id).unwrap_err(), VfsError::Busy);
        v.close(fd).unwrap();
        v.umount(id).unwrap();
        assert!(v.stat("/f").is_err());
    }

    #[test]
    fn double_mount_same_path_rejected() {
        let v = Vfs::new();
        v.mount("/", Arc::new(MemFs::new())).unwrap();
        assert_eq!(
            v.mount("/", Arc::new(MemFs::new())).unwrap_err(),
            VfsError::Exists
        );
    }

    #[test]
    fn close_invalid_fd_rejected() {
        let v = vfs_with_memfs();
        assert_eq!(v.close(99).unwrap_err(), VfsError::BadHandle);
        let fd = v.open("/f", OpenFlags::read_write()).unwrap();
        v.close(fd).unwrap();
        assert_eq!(v.close(fd).unwrap_err(), VfsError::BadHandle);
    }

    #[test]
    fn read_only_fd_rejects_write() {
        let v = vfs_with_memfs();
        let fd = v.open("/f", OpenFlags::read_write()).unwrap();
        v.close(fd).unwrap();
        let fd = v.open("/f", OpenFlags::read_only()).unwrap();
        assert_eq!(v.write(fd, b"x").unwrap_err(), VfsError::BadHandle);
    }

    #[test]
    fn fd_slots_are_reused() {
        let v = vfs_with_memfs();
        let fd1 = v.open("/a", OpenFlags::read_write()).unwrap();
        v.close(fd1).unwrap();
        let fd2 = v.open("/b", OpenFlags::read_write()).unwrap();
        assert_eq!(fd1, fd2);
    }

    #[test]
    fn statfs_reaches_fs() {
        let v = vfs_with_memfs();
        let s = v.statfs("/").unwrap();
        assert_eq!(s.total_bytes, 1 << 20);
    }
}
