//! Property tests: `RangeMap` behaves exactly like a naive point map.

use proptest::prelude::*;
use tvfs::{Linear, RangeMap, Segmentable};

const UNIVERSE: u64 = 256;

#[derive(Debug, Clone)]
enum Op {
    Insert { start: u64, len: u64, val: u64 },
    Remove { start: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..UNIVERSE, 0..32u64, 0..8u64).prop_map(|(start, len, val)| Op::Insert {
            start,
            len,
            val
        }),
        (0..UNIVERSE, 0..48u64).prop_map(|(start, len)| Op::Remove { start, len }),
    ]
}

/// Applies ops to both the real map and a naive per-point model, then
/// checks every point plus the structural invariants.
fn check_against_model<V: Segmentable>(
    ops: &[Op],
    make_val: impl Fn(u64) -> V,
    advance_model: impl Fn(V, u64) -> V,
) {
    let mut real: RangeMap<V> = RangeMap::new();
    let mut model: Vec<Option<V>> = vec![None; (UNIVERSE + 64) as usize];

    for op in ops {
        match *op {
            Op::Insert { start, len, val } => {
                let v = make_val(val);
                real.insert(start, len, v);
                for i in 0..len {
                    model[(start + i) as usize] = Some(advance_model(v, i));
                }
            }
            Op::Remove { start, len } => {
                real.remove(start, len);
                for i in 0..len {
                    model[(start + i) as usize] = None;
                }
            }
        }
    }

    // Point-wise equality.
    for (pos, want) in model.iter().enumerate() {
        assert_eq!(real.get(pos as u64), *want, "at position {pos}");
    }
    // Covered count matches model population.
    let pop = model.iter().filter(|m| m.is_some()).count() as u64;
    assert_eq!(real.covered(), pop);
    // Extents are disjoint, sorted and non-empty.
    let mut last_end = 0u64;
    let mut first = true;
    for e in real.iter() {
        assert!(e.len > 0);
        if !first {
            assert!(e.start >= last_end, "overlapping or unsorted extents");
        }
        last_end = e.start + e.len;
        first = false;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn constant_map_matches_model(ops in proptest::collection::vec(op_strategy(), 0..64)) {
        check_against_model(&ops, |v| v as u32, |v, _| v);
    }

    #[test]
    fn linear_map_matches_model(ops in proptest::collection::vec(op_strategy(), 0..64)) {
        check_against_model(&ops, |v| Linear(v * 1000), |v, d| Linear(v.0 + d));
    }

    #[test]
    fn overlapping_agrees_with_pointwise_get(
        ops in proptest::collection::vec(op_strategy(), 0..32),
        qs in 0..UNIVERSE,
        ql in 0..64u64,
    ) {
        let mut real: RangeMap<Linear> = RangeMap::new();
        for op in &ops {
            match *op {
                Op::Insert { start, len, val } => real.insert(start, len, Linear(val * 1000)),
                Op::Remove { start, len } => real.remove(start, len),
            }
        }
        // Reconstruct the queried window from `overlapping` and compare
        // against point queries.
        let mut from_overlap: Vec<Option<Linear>> = vec![None; ql as usize];
        for e in real.overlapping(qs, ql) {
            for i in 0..e.len {
                from_overlap[(e.start + i - qs) as usize] = Some(e.value.advance(i));
            }
        }
        for i in 0..ql {
            prop_assert_eq!(from_overlap[i as usize], real.get(qs + i));
        }
    }

    #[test]
    fn next_mapped_is_first_hit(
        ops in proptest::collection::vec(op_strategy(), 0..32),
        q in 0..UNIVERSE,
    ) {
        let mut real: RangeMap<u32> = RangeMap::new();
        for op in &ops {
            match *op {
                Op::Insert { start, len, val } => real.insert(start, len, val as u32),
                Op::Remove { start, len } => real.remove(start, len),
            }
        }
        let naive = (q..UNIVERSE + 64).find(|&p| real.get(p).is_some());
        match real.next_mapped(q) {
            Some(e) => {
                prop_assert_eq!(Some(e.start), naive);
                // Every unit the extent claims must be mapped with its value.
                for i in 0..e.len {
                    prop_assert_eq!(real.get(e.start + i), Some(e.value.advance(i)));
                }
                // And the unit after must not continue the run.
                prop_assert!(real.get(e.start + e.len) != Some(e.value.advance(e.len))
                    || real.get(e.start + e.len).is_none()
                    || e.start + e.len > real.end());
            }
            None => prop_assert_eq!(naive, None),
        }
    }
}
