//! The multi-threaded workload engine.
//!
//! [`run_engine`] drives N worker threads against any [`FileSystem`] —
//! Mux, a single native tier, or the Strata baseline — with a barrier
//! start, per-thread RNG seeds, and a configurable read/write mix over a
//! uniform or zipfian offset distribution.
//!
//! # Time model
//!
//! All costs are virtual ([`simdev::VirtualClock`]): the global clock sums
//! every thread's charges, so it measures *total service time*, not
//! wall-clock on parallel hardware. The engine therefore recovers each
//! worker's own charges from the clock's per-thread ledger
//! ([`VirtualClock::thread_charged_ns`]) and models ideal N-core hardware:
//!
//! * `elapsed_model_ns` = **max** over workers' charged time (the slowest
//!   core bounds the run),
//! * `serial_model_ns` = **sum** over workers (what one core would take).
//!
//! Aggregate throughput is `total_bytes / elapsed_model_ns`. Lock waits
//! charge nothing, so contention shows up as *lost scaling* (workers
//! performing fewer ops per charged nanosecond would need more rounds),
//! not as modeled stall time — which is exactly the quantity the sharded
//! mux locking is supposed to improve.
//!
//! # Content invariant
//!
//! Every write (including the prefill) stores [`crate::pattern_at`]
//! bytes, so file content is the same no matter which writes won a race.
//! Reads verify against the pattern; any torn read, lost update, or
//! misplaced block surfaces as a `verify_failures` count — making the
//! engine double as a concurrency checker.

use std::sync::Barrier;

use mux::TenantId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simdev::VirtualClock;
use tvfs::{FileSystem, FileType, InodeNo, VfsError, VfsResult, ROOT_INO};

use crate::{pattern_at, pattern_check, Zipfian};

/// Per-tenant operation mix for multi-tenant engine runs: workers
/// assigned this mix tag their thread with the tenant id
/// ([`mux::set_thread_tenant`]) and override the run-wide read fraction
/// and op size.
#[derive(Debug, Clone)]
pub struct TenantMix {
    /// Tenant id the worker's operations are attributed to.
    pub tenant: TenantId,
    /// Fraction of this tenant's operations that are reads.
    pub read_fraction: f64,
    /// Bytes per operation for this tenant (also offset alignment).
    pub op_size: u64,
}

/// Configuration for one engine run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads.
    pub threads: usize,
    /// Operations each worker performs.
    pub ops_per_thread: u64,
    /// Fraction of operations that are reads (1.0 = read-only).
    pub read_fraction: f64,
    /// Bytes per operation (also the offset alignment).
    pub op_size: u64,
    /// Bytes of file region each worker targets.
    pub region_bytes: u64,
    /// Zipfian skew over op-slots; 0.0 selects uniform.
    pub zipf_theta: f64,
    /// Base RNG seed; worker `t` derives `seed + t`.
    pub seed: u64,
    /// All workers share one file (true) or get private files (false).
    /// Shared mode exercises per-file synchronization; private mode
    /// isolates map/namespace sharding.
    pub shared_file: bool,
    /// Verify every read against the deterministic pattern.
    pub verify: bool,
    /// Per-tenant op mixes. Empty = single-tenant legacy mode (every
    /// worker is tenant 0 with the run-wide mix); otherwise worker `t`
    /// runs `tenant_mixes[t % len]`.
    pub tenant_mixes: Vec<TenantMix>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            ops_per_thread: 1024,
            read_fraction: 0.95,
            op_size: 4096,
            region_bytes: 4 << 20,
            zipf_theta: 0.0,
            seed: 42,
            shared_file: false,
            verify: true,
            tenant_mixes: Vec::new(),
        }
    }
}

/// One worker's tally.
#[derive(Debug, Clone)]
pub struct ThreadReport {
    /// Worker index.
    pub thread: usize,
    /// Tenant the worker ran as (0 in single-tenant mode).
    pub tenant: TenantId,
    /// Read operations performed.
    pub reads: u64,
    /// Write operations performed.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Virtual ns this worker charged (its service-time total).
    pub charged_ns: u64,
    /// Reads whose content failed pattern verification.
    pub verify_failures: u64,
}

/// Aggregated engine result.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-worker tallies, in worker order.
    pub per_thread: Vec<ThreadReport>,
    /// Total operations across workers.
    pub total_ops: u64,
    /// Total bytes moved (read + written).
    pub total_bytes: u64,
    /// Modeled parallel elapsed time: max worker charge (ideal N cores).
    pub elapsed_model_ns: u64,
    /// Modeled serial elapsed time: sum of worker charges (one core).
    pub serial_model_ns: u64,
}

impl EngineReport {
    /// Aggregate throughput on the modeled N-core machine, MiB/s.
    pub fn throughput_mib_s(&self) -> f64 {
        if self.elapsed_model_ns == 0 {
            return 0.0;
        }
        (self.total_bytes as f64 / (1 << 20) as f64) / (self.elapsed_model_ns as f64 / 1e9)
    }

    /// Speedup over running the same total work on one modeled core.
    pub fn speedup_vs_serial(&self) -> f64 {
        if self.elapsed_model_ns == 0 {
            return 0.0;
        }
        self.serial_model_ns as f64 / self.elapsed_model_ns as f64
    }

    /// Total verification failures across workers (0 on a correct run).
    pub fn verify_failures(&self) -> u64 {
        self.per_thread.iter().map(|t| t.verify_failures).sum()
    }

    /// Per-tenant `(tenant, reads, writes)` totals, ascending by tenant.
    pub fn per_tenant_ops(&self) -> Vec<(TenantId, u64, u64)> {
        let mut out: Vec<(TenantId, u64, u64)> = Vec::new();
        for t in &self.per_thread {
            match out.iter_mut().find(|(tn, _, _)| *tn == t.tenant) {
                Some((_, r, w)) => {
                    *r += t.reads;
                    *w += t.writes;
                }
                None => out.push((t.tenant, t.reads, t.writes)),
            }
        }
        out.sort_unstable_by_key(|(tn, _, _)| *tn);
        out
    }
}

fn prefill(fs: &dyn FileSystem, ino: InodeNo, bytes: u64) -> VfsResult<()> {
    const CHUNK: u64 = 1 << 20;
    let mut off = 0;
    while off < bytes {
        let n = CHUNK.min(bytes - off);
        let data = pattern_at(off, n as usize);
        let wrote = fs.write(ino, off, &data)?;
        if wrote != data.len() {
            return Err(VfsError::Io("short prefill write".into()));
        }
        off += n;
    }
    Ok(())
}

/// Runs the engine against `fs` and returns the aggregated report.
///
/// Worker files (`engine.dat` or `engine-<t>.dat` under the root) are
/// created and prefilled with pattern bytes before any worker starts, so
/// read-heavy mixes never touch unmapped blocks. Workers start together
/// on a barrier. A worker panic is re-raised on the calling thread; a
/// worker I/O error aborts the run with that error.
pub fn run_engine(fs: &dyn FileSystem, cfg: &EngineConfig) -> VfsResult<EngineReport> {
    assert!(cfg.threads >= 1, "engine needs at least one worker");
    assert!(
        cfg.op_size > 0 && cfg.region_bytes >= cfg.op_size,
        "region must hold at least one op"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.read_fraction),
        "read_fraction must be a probability"
    );
    for m in &cfg.tenant_mixes {
        assert!(
            (0.0..=1.0).contains(&m.read_fraction),
            "tenant read_fraction must be a probability"
        );
        assert!(
            m.op_size > 0 && cfg.region_bytes >= m.op_size,
            "region must hold at least one tenant op"
        );
    }
    // Create + prefill worker files before the race starts.
    let mut inos: Vec<InodeNo> = Vec::with_capacity(cfg.threads);
    let n_files = if cfg.shared_file { 1 } else { cfg.threads };
    for t in 0..n_files {
        let name = if cfg.shared_file {
            "engine.dat".to_string()
        } else {
            format!("engine-{t}.dat")
        };
        let ino = match fs.create(ROOT_INO, &name, FileType::Regular, 0o644) {
            Ok(a) => a.ino,
            Err(VfsError::Exists) => fs.lookup(ROOT_INO, &name)?.ino,
            Err(e) => return Err(e),
        };
        prefill(fs, ino, cfg.region_bytes)?;
        inos.push(ino);
    }
    let barrier = Barrier::new(cfg.threads);
    let reports: Vec<VfsResult<ThreadReport>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let barrier = &barrier;
                let inos = &inos;
                scope.spawn(move || -> VfsResult<ThreadReport> {
                    let ino = inos[t % inos.len()];
                    // Multi-tenant mode: worker t runs mix t % len and
                    // tags its thread so Mux attributes its operations.
                    let mix = (!cfg.tenant_mixes.is_empty())
                        .then(|| cfg.tenant_mixes[t % cfg.tenant_mixes.len()].clone());
                    let (tenant, read_fraction, op_size) = match &mix {
                        Some(m) => (m.tenant, m.read_fraction, m.op_size),
                        None => (0, cfg.read_fraction, cfg.op_size),
                    };
                    mux::set_thread_tenant(tenant);
                    let slots = cfg.region_bytes / op_size;
                    let mut rng = StdRng::seed_from_u64(cfg.seed + t as u64);
                    let mut zipf = (cfg.zipf_theta > 0.0)
                        .then(|| Zipfian::new(slots, cfg.zipf_theta, cfg.seed ^ t as u64));
                    let mut buf = vec![0u8; op_size as usize];
                    let mut rep = ThreadReport {
                        thread: t,
                        tenant,
                        reads: 0,
                        writes: 0,
                        bytes_read: 0,
                        bytes_written: 0,
                        charged_ns: 0,
                        verify_failures: 0,
                    };
                    barrier.wait();
                    VirtualClock::take_thread_charged_ns();
                    for _ in 0..cfg.ops_per_thread {
                        let slot = match &mut zipf {
                            Some(z) => z.next_item(),
                            None => rng.gen_range(0..slots),
                        };
                        let off = slot * op_size;
                        if rng.gen::<f64>() < read_fraction {
                            let got = fs.read(ino, off, &mut buf)?;
                            if cfg.verify && !pattern_check(off, &buf[..got]) {
                                rep.verify_failures += 1;
                            }
                            rep.reads += 1;
                            rep.bytes_read += got as u64;
                        } else {
                            let data = pattern_at(off, op_size as usize);
                            let wrote = fs.write(ino, off, &data)?;
                            rep.writes += 1;
                            rep.bytes_written += wrote as u64;
                        }
                    }
                    rep.charged_ns = VirtualClock::thread_charged_ns();
                    Ok(rep)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut per_thread = Vec::with_capacity(cfg.threads);
    for r in reports {
        per_thread.push(r?);
    }
    let elapsed_model_ns = per_thread.iter().map(|t| t.charged_ns).max().unwrap_or(0);
    let serial_model_ns = per_thread.iter().map(|t| t.charged_ns).sum();
    Ok(EngineReport {
        total_ops: per_thread.iter().map(|t| t.reads + t.writes).sum(),
        total_bytes: per_thread
            .iter()
            .map(|t| t.bytes_read + t.bytes_written)
            .sum(),
        elapsed_model_ns,
        serial_model_ns,
        per_thread,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvfs::memfs::MemFs;

    fn cfg(threads: usize) -> EngineConfig {
        EngineConfig {
            threads,
            ops_per_thread: 200,
            region_bytes: 1 << 20,
            ..Default::default()
        }
    }

    #[test]
    fn single_thread_run_verifies_and_counts() {
        let fs = MemFs::new("m", 64 << 20);
        let rep = run_engine(&fs, &cfg(1)).unwrap();
        assert_eq!(rep.total_ops, 200);
        assert_eq!(rep.verify_failures(), 0);
        assert_eq!(rep.per_thread.len(), 1);
        assert!(rep.total_bytes > 0);
    }

    #[test]
    fn multi_thread_private_files_all_workers_report() {
        let fs = MemFs::new("m", 64 << 20);
        let rep = run_engine(&fs, &cfg(4)).unwrap();
        assert_eq!(rep.per_thread.len(), 4);
        assert_eq!(rep.total_ops, 4 * 200);
        assert_eq!(rep.verify_failures(), 0);
        assert!(rep.elapsed_model_ns <= rep.serial_model_ns);
    }

    #[test]
    fn shared_file_mixed_workload_holds_pattern_invariant() {
        let fs = MemFs::new("m", 64 << 20);
        let rep = run_engine(
            &fs,
            &EngineConfig {
                threads: 4,
                read_fraction: 0.5,
                shared_file: true,
                zipf_theta: 0.9,
                ..cfg(4)
            },
        )
        .unwrap();
        // Writers all store the same deterministic pattern, so even racing
        // reads must verify.
        assert_eq!(rep.verify_failures(), 0);
        let reads: u64 = rep.per_thread.iter().map(|t| t.reads).sum();
        let writes: u64 = rep.per_thread.iter().map(|t| t.writes).sum();
        assert!(reads > 0 && writes > 0);
    }

    #[test]
    fn reruns_reuse_existing_files() {
        let fs = MemFs::new("m", 64 << 20);
        run_engine(&fs, &cfg(2)).unwrap();
        // Second run hits VfsError::Exists internally and proceeds.
        let rep = run_engine(&fs, &cfg(2)).unwrap();
        assert_eq!(rep.verify_failures(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let fs = MemFs::new("m", 64 << 20);
            let rep = run_engine(&fs, &cfg(3)).unwrap();
            (
                rep.total_bytes,
                rep.per_thread.iter().map(|t| t.reads).collect::<Vec<_>>(),
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn tenant_mixes_assign_workers_round_robin() {
        let fs = MemFs::new("m", 64 << 20);
        let rep = run_engine(
            &fs,
            &EngineConfig {
                tenant_mixes: vec![
                    TenantMix {
                        tenant: 1,
                        read_fraction: 1.0,
                        op_size: 4096,
                    },
                    TenantMix {
                        tenant: 2,
                        read_fraction: 0.0,
                        op_size: 8192,
                    },
                ],
                ..cfg(4)
            },
        )
        .unwrap();
        let tenants: Vec<_> = rep.per_thread.iter().map(|t| t.tenant).collect();
        assert_eq!(tenants, vec![1, 2, 1, 2]);
        let per_tenant = rep.per_tenant_ops();
        assert_eq!(per_tenant.len(), 2);
        // Tenant 1 is read-only, tenant 2 write-only, each via 2 workers.
        assert_eq!(per_tenant[0], (1, 2 * 200, 0));
        assert_eq!(per_tenant[1], (2, 0, 2 * 200));
        assert_eq!(rep.verify_failures(), 0);
    }
}
