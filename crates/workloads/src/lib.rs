//! Workload generators for the Mux reproduction benchmarks.
//!
//! Everything is deterministic given a seed, so every experiment is
//! replayable. The shapes match the paper's evaluation:
//!
//! * [`UniformRandom`] — the §3.2 worst-case microbenchmark ("repeatedly
//!   reads one single byte from a 10 GB file randomly") and the Strata
//!   microbenchmark's random writes (§3.1, scaled down).
//! * [`Sequential`] — the §3.2 write-throughput microbenchmark
//!   ("repeatedly writes four megabytes to a file sequentially").
//! * [`Zipfian`] — skewed access for the cache/policy ablations (YCSB-style
//!   bounded zipf).
//! * [`HotCold`] — a two-class file population for policy comparison.

pub mod engine;

pub use engine::{run_engine, EngineConfig, EngineReport, ThreadReport};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniformly random offsets within `[0, region - op_size]`, aligned to
/// `align` (1 = byte-addressed).
#[derive(Debug)]
pub struct UniformRandom {
    region: u64,
    op_size: u64,
    align: u64,
    rng: StdRng,
}

impl UniformRandom {
    /// A generator over `region` bytes with `op_size` operations.
    pub fn new(region: u64, op_size: u64, align: u64, seed: u64) -> Self {
        assert!(region >= op_size, "region smaller than one op");
        UniformRandom {
            region,
            op_size,
            align: align.max(1),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next offset.
    pub fn next_off(&mut self) -> u64 {
        let max = (self.region - self.op_size) / self.align;
        self.rng.gen_range(0..=max) * self.align
    }

    /// Operation size.
    pub fn op_size(&self) -> u64 {
        self.op_size
    }
}

/// Sequential offsets: `0, op, 2*op, …`, wrapping at `region`.
#[derive(Debug)]
pub struct Sequential {
    region: u64,
    op_size: u64,
    cursor: u64,
}

impl Sequential {
    /// A sequential walker over `region` bytes.
    pub fn new(region: u64, op_size: u64) -> Self {
        assert!(region >= op_size);
        Sequential {
            region,
            op_size,
            cursor: 0,
        }
    }

    /// Next offset (wraps).
    pub fn next_off(&mut self) -> u64 {
        if self.cursor + self.op_size > self.region {
            self.cursor = 0;
        }
        let off = self.cursor;
        self.cursor += self.op_size;
        off
    }

    /// Operation size.
    pub fn op_size(&self) -> u64 {
        self.op_size
    }
}

/// A random permutation of block-aligned offsets: every block of the
/// region is visited exactly once, in shuffled order (write-once random
/// workloads — the scaled Strata microbenchmark).
#[derive(Debug)]
pub struct Permutation {
    order: Vec<u64>,
    cursor: usize,
    op_size: u64,
}

impl Permutation {
    /// Shuffles the `region / op_size` offsets with `seed`.
    pub fn new(region: u64, op_size: u64, seed: u64) -> Self {
        assert!(op_size > 0 && region >= op_size);
        let n = region / op_size;
        let mut order: Vec<u64> = (0..n).map(|i| i * op_size).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher-Yates.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        Permutation {
            order,
            cursor: 0,
            op_size,
        }
    }

    /// Next offset; wraps (re-visiting in the same shuffled order).
    pub fn next_off(&mut self) -> u64 {
        let off = self.order[self.cursor];
        self.cursor = (self.cursor + 1) % self.order.len();
        off
    }

    /// Operation size.
    pub fn op_size(&self) -> u64 {
        self.op_size
    }
}

/// Bounded zipfian item sampler (Gray et al. / YCSB formulation).
#[derive(Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    rng: StdRng,
}

impl Zipfian {
    /// Samples from `[0, n)` with skew `theta` (0 = uniform, 0.99 = YCSB
    /// default).
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0);
        assert!((0.0..1.0).contains(&theta));
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Next item (0 is the most popular).
    pub fn next_item(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64 % self.n
    }
}

/// A two-class access generator: a small hot set absorbs most accesses.
#[derive(Debug)]
pub struct HotCold {
    n_items: u64,
    hot_items: u64,
    hot_prob: f64,
    rng: StdRng,
}

impl HotCold {
    /// `hot_fraction` of `n_items` receive `hot_prob` of accesses.
    pub fn new(n_items: u64, hot_fraction: f64, hot_prob: f64, seed: u64) -> Self {
        let hot_items = ((n_items as f64 * hot_fraction) as u64).max(1);
        HotCold {
            n_items,
            hot_items,
            hot_prob,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of hot items.
    pub fn hot_items(&self) -> u64 {
        self.hot_items
    }

    /// Next item; hot items are `[0, hot_items)`.
    pub fn next_item(&mut self) -> u64 {
        if self.rng.gen::<f64>() < self.hot_prob {
            self.rng.gen_range(0..self.hot_items)
        } else {
            self.rng
                .gen_range(self.hot_items..self.n_items.max(self.hot_items + 1))
        }
    }

    /// Whether an item is in the hot set.
    pub fn is_hot(&self, item: u64) -> bool {
        item < self.hot_items
    }
}

/// Deterministic payload for offset `off`: verifiable after migrations.
pub fn pattern_at(off: u64, len: usize) -> Vec<u8> {
    (0..len as u64)
        .map(|i| {
            let x = off + i;
            ((x ^ (x >> 8) ^ (x >> 16)) & 0xFF) as u8
        })
        .collect()
}

/// Checks a buffer read from `off` against [`pattern_at`].
pub fn pattern_check(off: u64, buf: &[u8]) -> bool {
    buf.iter().enumerate().all(|(i, &b)| {
        let x = off + i as u64;
        b == ((x ^ (x >> 8) ^ (x >> 16)) & 0xFF) as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_in_bounds_and_aligned() {
        let mut g = UniformRandom::new(1 << 20, 4096, 4096, 7);
        for _ in 0..1000 {
            let off = g.next_off();
            assert!(off + 4096 <= 1 << 20);
            assert_eq!(off % 4096, 0);
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut g = UniformRandom::new(1 << 20, 1, 1, 42);
            (0..64).map(|_| g.next_off()).collect()
        };
        let b: Vec<u64> = {
            let mut g = UniformRandom::new(1 << 20, 1, 1, 42);
            (0..64).map(|_| g.next_off()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut g = UniformRandom::new(1 << 20, 1, 1, 43);
            (0..64).map(|_| g.next_off()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn sequential_wraps() {
        let mut g = Sequential::new(10_000, 4000);
        assert_eq!(g.next_off(), 0);
        assert_eq!(g.next_off(), 4000);
        assert_eq!(g.next_off(), 0, "8000+4000 > 10000 wraps");
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut g = Zipfian::new(1000, 0.99, 1);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[g.next_item() as usize] += 1;
        }
        let top10: u64 = counts[..10].iter().sum();
        assert!(
            top10 > 30_000,
            "top-1% should absorb >30% of accesses, got {top10}"
        );
        // All samples in range (indexing above would have panicked).
    }

    #[test]
    fn zipfian_low_theta_is_flat_ish() {
        let mut g = Zipfian::new(100, 0.01, 1);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[g.next_item() as usize] += 1;
        }
        let top10: u64 = counts[..10].iter().sum();
        assert!(
            top10 < 30_000,
            "theta≈0 should be near-uniform, got {top10}"
        );
    }

    #[test]
    fn hotcold_ratio() {
        let mut g = HotCold::new(1000, 0.1, 0.9, 5);
        let mut hot = 0u64;
        for _ in 0..100_000 {
            let item = g.next_item();
            if g.is_hot(item) {
                hot += 1;
            }
        }
        assert!((85_000..95_000).contains(&hot), "hot share {hot}");
    }

    #[test]
    fn permutation_visits_each_block_once() {
        let mut p = Permutation::new(64 * 4096, 4096, 9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let off = p.next_off();
            assert_eq!(off % 4096, 0);
            assert!(seen.insert(off), "offset {off} repeated");
        }
        assert_eq!(seen.len(), 64);
        // Wraps deterministically.
        let first_again = p.next_off();
        assert!(seen.contains(&first_again));
    }

    #[test]
    fn pattern_roundtrip() {
        let p = pattern_at(12345, 4096);
        assert!(pattern_check(12345, &p));
        assert!(!pattern_check(12346, &p));
        let mut q = p.clone();
        q[100] ^= 0xFF;
        assert!(!pattern_check(12345, &q));
    }
}
