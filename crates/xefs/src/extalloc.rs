//! Free-extent allocation: per-AG extent trees and the AG round-robin.

use std::collections::BTreeMap;

use tvfs::{VfsError, VfsResult};

/// A free-extent tree over block numbers: `start → len`, adjacent extents
/// merged.
#[derive(Debug, Clone, Default)]
pub struct ExtentAllocator {
    free: BTreeMap<u64, u64>,
    free_blocks: u64,
}

impl ExtentAllocator {
    /// All blocks in `[start, end)` free.
    pub fn new(start: u64, end: u64) -> Self {
        let mut free = BTreeMap::new();
        if end > start {
            free.insert(start, end - start);
        }
        ExtentAllocator {
            free,
            free_blocks: end.saturating_sub(start),
        }
    }

    /// Free block count.
    pub fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    /// Allocates up to `want` contiguous blocks: the first extent of at
    /// least `want` blocks, else the largest available extent. Returns
    /// `(start, len)` with `len <= want`, or `None` if empty.
    pub fn alloc_extent(&mut self, want: u64) -> Option<(u64, u64)> {
        if want == 0 || self.free.is_empty() {
            return None;
        }
        let pick = self
            .free
            .iter()
            .find(|(_, &l)| l >= want)
            .map(|(&s, _)| s)
            .or_else(|| self.free.iter().max_by_key(|(_, &l)| l).map(|(&s, _)| s))?;
        let len = self.free[&pick];
        let take = len.min(want);
        self.free.remove(&pick);
        if take < len {
            self.free.insert(pick + take, len - take);
        }
        self.free_blocks -= take;
        Some((pick, take))
    }

    /// Removes a specific range from the free pool (recovery replay).
    /// Silently ignores blocks that are already allocated.
    pub fn reserve(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = start + len;
        // Collect overlapping free extents.
        let mut touched: Vec<(u64, u64)> = Vec::new();
        if let Some((&s, &l)) = self.free.range(..start).next_back() {
            if s + l > start {
                touched.push((s, l));
            }
        }
        for (&s, &l) in self.free.range(start..end) {
            touched.push((s, l));
        }
        for (s, l) in touched {
            self.free.remove(&s);
            self.free_blocks -= l;
            if s < start {
                self.free.insert(s, start - s);
                self.free_blocks += start - s;
            }
            if s + l > end {
                self.free.insert(end, s + l - end);
                self.free_blocks += s + l - end;
            }
        }
    }

    /// Returns `[start, start+len)` to the free pool, merging neighbours.
    pub fn free_extent(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.free_blocks += len;
        let mut start = start;
        let mut len = len;
        // Merge with left neighbour.
        if let Some((&s, &l)) = self.free.range(..start).next_back() {
            debug_assert!(s + l <= start, "double free at {start}");
            if s + l == start {
                self.free.remove(&s);
                start = s;
                len += l;
            }
        }
        // Merge with right neighbour.
        if let Some((&s, &l)) = self.free.range(start + len..).next() {
            if start + len == s {
                self.free.remove(&s);
                len += l;
            }
        }
        self.free.insert(start, len);
    }

    /// Largest single free extent (for diagnostics/tests).
    pub fn largest_extent(&self) -> u64 {
        self.free.values().copied().max().unwrap_or(0)
    }
}

/// Allocation groups: `n_ags` [`ExtentAllocator`]s with inode affinity.
#[derive(Debug)]
pub struct AgAllocator {
    ags: Vec<ExtentAllocator>,
    ag_blocks: u64,
    first_block: u64,
}

impl AgAllocator {
    /// Splits `[first, end)` into `n_ags` groups.
    pub fn new(first: u64, end: u64, n_ags: usize) -> Self {
        let n_ags = n_ags.max(1);
        let total = end.saturating_sub(first);
        let ag_blocks = (total / n_ags as u64).max(1);
        let mut ags = Vec::with_capacity(n_ags);
        for i in 0..n_ags {
            let s = first + i as u64 * ag_blocks;
            let e = if i == n_ags - 1 {
                end
            } else {
                first + (i as u64 + 1) * ag_blocks
            };
            ags.push(ExtentAllocator::new(s, e.min(end)));
        }
        AgAllocator {
            ags,
            ag_blocks,
            first_block: first,
        }
    }

    /// Number of groups.
    pub fn n_ags(&self) -> usize {
        self.ags.len()
    }

    /// Total free blocks across groups.
    pub fn free_blocks(&self) -> u64 {
        self.ags.iter().map(|a| a.free_blocks()).sum()
    }

    /// Allocates `n` blocks as extent runs, preferring the inode's
    /// affinity group and spilling to the others.
    pub fn alloc(&mut self, ino: u64, n: u64) -> VfsResult<Vec<(u64, u64)>> {
        if self.free_blocks() < n {
            return Err(VfsError::NoSpace);
        }
        let home = (ino as usize) % self.ags.len();
        let mut runs: Vec<(u64, u64)> = Vec::new();
        let mut left = n;
        for i in 0..self.ags.len() {
            let ag = (home + i) % self.ags.len();
            while left > 0 {
                match self.ags[ag].alloc_extent(left) {
                    Some((s, l)) => {
                        left -= l;
                        match runs.last_mut() {
                            Some((rs, rl)) if *rs + *rl == s => *rl += l,
                            _ => runs.push((s, l)),
                        }
                    }
                    None => break,
                }
            }
            if left == 0 {
                break;
            }
        }
        debug_assert_eq!(left, 0, "free_blocks precondition violated");
        Ok(runs)
    }

    /// Marks `[start, start+len)` allocated (recovery).
    pub fn reserve(&mut self, start: u64, len: u64) {
        // The range may straddle group boundaries.
        let mut s = start;
        let end = start + len;
        while s < end {
            let ag = self.ag_of(s);
            let ag_end = self.first_block + (ag as u64 + 1) * self.ag_blocks;
            let chunk_end = if ag + 1 == self.ags.len() {
                end
            } else {
                end.min(ag_end)
            };
            self.ags[ag].reserve(s, chunk_end - s);
            s = chunk_end;
        }
    }

    /// Frees `[start, start+len)`.
    pub fn free(&mut self, start: u64, len: u64) {
        let mut s = start;
        let end = start + len;
        while s < end {
            let ag = self.ag_of(s);
            let ag_end = self.first_block + (ag as u64 + 1) * self.ag_blocks;
            let chunk_end = if ag + 1 == self.ags.len() {
                end
            } else {
                end.min(ag_end)
            };
            self.ags[ag].free_extent(s, chunk_end - s);
            s = chunk_end;
        }
    }

    fn ag_of(&self, block: u64) -> usize {
        (((block - self.first_block) / self.ag_blocks) as usize).min(self.ags.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_prefers_contiguous() {
        let mut a = ExtentAllocator::new(0, 100);
        assert_eq!(a.alloc_extent(10), Some((0, 10)));
        assert_eq!(a.alloc_extent(90), Some((10, 90)));
        assert_eq!(a.alloc_extent(1), None);
    }

    #[test]
    fn alloc_falls_back_to_largest() {
        let mut a = ExtentAllocator::new(0, 100);
        a.reserve(40, 10); // free: [0,40) and [50,100)
        let (s, l) = a.alloc_extent(60).unwrap();
        assert_eq!((s, l), (50, 50), "should take the largest available");
        assert_eq!(a.free_blocks(), 40);
    }

    #[test]
    fn free_merges_neighbours() {
        let mut a = ExtentAllocator::new(0, 100);
        let (s1, _) = a.alloc_extent(30).unwrap();
        let (s2, _) = a.alloc_extent(30).unwrap();
        a.free_extent(s1, 30);
        a.free_extent(s2, 30);
        assert_eq!(a.free_blocks(), 100);
        assert_eq!(a.largest_extent(), 100);
    }

    #[test]
    fn reserve_splits_free_extent() {
        let mut a = ExtentAllocator::new(0, 100);
        a.reserve(20, 10);
        assert_eq!(a.free_blocks(), 90);
        let (s, l) = a.alloc_extent(100).unwrap();
        assert_eq!((s, l), (30, 70));
    }

    #[test]
    fn reserve_idempotent_on_allocated() {
        let mut a = ExtentAllocator::new(0, 100);
        a.reserve(20, 10);
        a.reserve(20, 10); // no-op
        assert_eq!(a.free_blocks(), 90);
        a.reserve(15, 10); // half-overlapping
        assert_eq!(a.free_blocks(), 85);
    }

    #[test]
    fn ag_affinity_spreads_inodes() {
        let mut ag = AgAllocator::new(0, 400, 4);
        let r1 = ag.alloc(1, 10).unwrap();
        let r2 = ag.alloc(2, 10).unwrap();
        let r5 = ag.alloc(5, 10).unwrap();
        // Inodes 1 and 5 share AG 1; inode 2 uses AG 2.
        assert_eq!(r1[0].0 / 100, 1);
        assert_eq!(r2[0].0 / 100, 2);
        assert_eq!(r5[0].0 / 100, 1);
    }

    #[test]
    fn ag_spills_when_home_full() {
        let mut ag = AgAllocator::new(0, 200, 2);
        ag.alloc(0, 100).unwrap(); // fill AG 0
        let runs = ag.alloc(0, 50).unwrap();
        assert!(runs[0].0 >= 100, "must spill into AG 1");
    }

    #[test]
    fn ag_nospace() {
        let mut ag = AgAllocator::new(0, 100, 2);
        ag.alloc(0, 100).unwrap();
        assert_eq!(ag.alloc(0, 1).unwrap_err(), VfsError::NoSpace);
    }

    #[test]
    fn ag_reserve_and_free_across_boundary() {
        let mut ag = AgAllocator::new(0, 200, 2);
        ag.reserve(90, 20); // straddles the AG boundary at 100
        assert_eq!(ag.free_blocks(), 180);
        ag.free(90, 20);
        assert_eq!(ag.free_blocks(), 200);
    }
}
