//! The `XeFs` file system: delayed allocation, page cache, journal commits.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use parking_lot::Mutex;
use simdev::Device;
use tvfs::{
    DirEntry, FileAttr, FileSystem, FileType, InodeNo, Linear, PageCache, RangeMap, SetAttr,
    StatFs, VfsError, VfsResult, ROOT_INO,
};

use crate::extalloc::AgAllocator;
use crate::journal::{Journal, REC_CHECKPOINT};
use crate::layout::{InodeRecord, Superblock, BLOCK, MAGIC};

/// Tunables for an [`XeFs`] instance.
#[derive(Debug, Clone)]
pub struct XeOptions {
    /// Journal ring size in blocks.
    pub journal_blocks: u64,
    /// Number of allocation groups.
    pub n_ags: usize,
    /// DRAM page-cache capacity in bytes.
    pub page_cache_bytes: u64,
    /// Pages prefetched on sequential reads.
    pub readahead_pages: u64,
    /// Software-path cost charged per VFS op (virtual ns).
    pub software_op_ns: u64,
    /// Cost of serving one page out of DRAM cache (virtual ns).
    pub dram_copy_ns: u64,
    /// Dirty-page count that triggers background writeback.
    pub writeback_threshold: usize,
}

impl Default for XeOptions {
    fn default() -> Self {
        XeOptions {
            journal_blocks: 2048,
            n_ags: 4,
            page_cache_bytes: 64 << 20,
            readahead_pages: 8,
            software_op_ns: 500,
            dram_copy_ns: 250,
            writeback_threshold: 16 * 1024,
        }
    }
}

struct XInode {
    attr: FileAttr,
    /// File page → device block.
    extents: RangeMap<Linear>,
    dentries: BTreeMap<String, (InodeNo, bool)>,
}

impl XInode {
    fn record(&self, ino: InodeNo) -> InodeRecord {
        InodeRecord {
            ino,
            deleted: false,
            attr: self.attr,
            extents: self
                .extents
                .iter()
                .map(|e| (e.start, e.value.0, e.len))
                .collect(),
            dentries: self
                .dentries
                .iter()
                .map(|(n, &(c, d))| (n.clone(), c, d))
                .collect(),
        }
    }
}

struct Inner {
    alloc: AgAllocator,
    inodes: HashMap<InodeNo, XInode>,
    cache: PageCache,
    journal: Journal,
    dirty_meta: BTreeSet<InodeNo>,
    tombstones: Vec<InodeRecord>,
    /// Readahead: the page we expect a sequential reader to ask for next.
    ra_next: HashMap<InodeNo, u64>,
    next_ino: InodeNo,
}

/// An XFS-like extent file system over one block [`Device`].
///
/// See the crate docs for the design summary. Durability contract: data and
/// metadata become crash-safe at `fsync`/`sync`; metadata operations are
/// batched into journal transactions (a crash may roll back un-synced
/// creates/renames, never corrupt).
pub struct XeFs {
    dev: Device,
    sb: Superblock,
    opts: XeOptions,
    inner: Mutex<Inner>,
}

impl XeFs {
    /// Formats `dev` and mounts the empty file system.
    pub fn format(dev: Device, opts: XeOptions) -> VfsResult<Self> {
        let sb = Superblock {
            magic: MAGIC,
            capacity: dev.capacity(),
            journal_blocks: opts.journal_blocks,
            n_ags: opts.n_ags as u32,
        };
        // The device must fit the superblock, the journal, and at least
        // one data block; otherwise first_data_block() points past the
        // end and every free-space computation underflows.
        if sb.capacity / BLOCK <= sb.first_data_block() {
            return Err(VfsError::InvalidArgument(format!(
                "device too small: {} blocks, layout needs > {}",
                sb.capacity / BLOCK,
                sb.first_data_block()
            )));
        }
        dev.write(0, &sb.encode())?;
        let mut journal = Journal::new(sb.journal_off(), sb.journal_len());
        // Root directory in the initial checkpoint.
        let root = XInode {
            attr: {
                let mut a = FileAttr::new(ROOT_INO, FileType::Directory, 0o755, 0);
                a.nlink = 2;
                a
            },
            extents: RangeMap::new(),
            dentries: BTreeMap::new(),
        };
        journal.write_checkpoint(&dev, &[root.record(ROOT_INO)])?;
        dev.flush();
        let mut inodes = HashMap::new();
        inodes.insert(ROOT_INO, root);
        let inner = Inner {
            alloc: AgAllocator::new(sb.first_data_block(), sb.capacity / BLOCK, opts.n_ags),
            inodes,
            cache: PageCache::new(opts.page_cache_bytes, BLOCK as usize),
            journal,
            dirty_meta: BTreeSet::new(),
            tombstones: Vec::new(),
            ra_next: HashMap::new(),
            next_ino: ROOT_INO + 1,
        };
        Ok(XeFs {
            dev,
            sb,
            opts,
            inner: Mutex::new(inner),
        })
    }

    /// Mounts an existing file system, replaying the journal.
    pub fn mount(dev: Device, opts: XeOptions) -> VfsResult<Self> {
        let mut raw = vec![0u8; Superblock::SIZE];
        dev.read(0, &mut raw)?;
        let sb = Superblock::decode(&raw)?;
        let (records, journal) = Journal::replay(&dev, sb.journal_off(), sb.journal_len())?;
        let mut inodes: HashMap<InodeNo, XInode> = HashMap::new();
        let mut max_ino = ROOT_INO;
        for rec in &records {
            if rec.kind == REC_CHECKPOINT {
                inodes.clear();
            }
            for ir in &rec.inodes {
                max_ino = max_ino.max(ir.ino);
                if ir.deleted {
                    inodes.remove(&ir.ino);
                    continue;
                }
                let mut extents = RangeMap::new();
                for &(fp, db, len) in &ir.extents {
                    extents.insert(fp, len, Linear(db));
                }
                inodes.insert(
                    ir.ino,
                    XInode {
                        attr: ir.attr,
                        extents,
                        dentries: ir
                            .dentries
                            .iter()
                            .map(|(n, c, d)| (n.clone(), (*c, *d)))
                            .collect(),
                    },
                );
            }
        }
        if inodes.is_empty() {
            return Err(VfsError::Io("xefs journal has no valid checkpoint".into()));
        }
        // Prune dangling dentries: a replayed directory may reference a
        // child whose own record fell past the valid journal prefix; such
        // a name would ESTALE on every lookup forever. The prune is
        // in-memory only — the next metadata commit persists it.
        let live: BTreeSet<InodeNo> = inodes.keys().copied().collect();
        for inode in inodes.values_mut() {
            inode
                .dentries
                .retain(|_, &mut (child, _)| live.contains(&child));
        }
        let mut alloc = AgAllocator::new(
            sb.first_data_block(),
            sb.capacity / BLOCK,
            sb.n_ags as usize,
        );
        for inode in inodes.values() {
            for e in inode.extents.iter() {
                alloc.reserve(e.value.0, e.len);
            }
        }
        let inner = Inner {
            alloc,
            inodes,
            cache: PageCache::new(opts.page_cache_bytes, BLOCK as usize),
            journal,
            dirty_meta: BTreeSet::new(),
            tombstones: Vec::new(),
            ra_next: HashMap::new(),
            next_ino: max_ino + 1,
        };
        Ok(XeFs {
            dev,
            sb,
            opts,
            inner: Mutex::new(inner),
        })
    }

    /// The device this file system runs on.
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Page-cache statistics (read path hit rate).
    pub fn cache_stats(&self) -> tvfs::CacheStats {
        self.inner.lock().cache.stats()
    }

    fn charge_sw(&self) {
        self.dev.clock().advance(self.opts.software_op_ns);
    }

    fn charge_dram(&self, pages: u64) {
        self.dev.clock().advance(self.opts.dram_copy_ns * pages);
    }

    fn now(&self) -> u64 {
        self.dev.clock().now_ns()
    }

    /// Commits all pending metadata as one journal transaction.
    fn commit_meta(&self, inner: &mut Inner) -> VfsResult<()> {
        if inner.dirty_meta.is_empty() && inner.tombstones.is_empty() {
            return Ok(());
        }
        let mut recs: Vec<InodeRecord> = std::mem::take(&mut inner.tombstones);
        for &ino in &inner.dirty_meta {
            if let Some(x) = inner.inodes.get(&ino) {
                recs.push(x.record(ino));
            }
        }
        inner.dirty_meta.clear();
        if !inner.journal.append_txn(&self.dev, &recs)? {
            // Ring full: compact with a checkpoint of everything.
            let all: Vec<InodeRecord> =
                inner.inodes.iter().map(|(&ino, x)| x.record(ino)).collect();
            inner.journal.write_checkpoint(&self.dev, &all)?;
        }
        self.dev.flush();
        Ok(())
    }

    /// Writes back one inode's dirty pages: delayed allocation assigns
    /// extents first (contiguous runs for consecutive file pages), then
    /// all pages are submitted in **device-block order** with contiguous
    /// blocks merged into single commands — the block-layer merging that
    /// gives XFS its random-write edge (the §3.1 "device-friendly ...
    /// caching scheme").
    fn writeback_inode(&self, inner: &mut Inner, ino: InodeNo) -> VfsResult<()> {
        let dirty = inner.cache.take_dirty(ino);
        if dirty.is_empty() {
            return Ok(());
        }
        if !inner.inodes.contains_key(&ino) {
            return Ok(()); // deleted while dirty
        }
        // Pass 1 — allocation: give every unmapped dirty page an extent,
        // batching consecutive file pages into one allocation.
        let mut i = 0usize;
        while i < dirty.len() {
            let (pg, _) = dirty[i];
            if inner.inodes[&ino].extents.get(pg).is_some() {
                i += 1;
                continue;
            }
            // Run of consecutive unmapped file pages.
            let mut run = 1u64;
            while i + (run as usize) < dirty.len()
                && dirty[i + run as usize].0 == pg + run
                && inner.inodes[&ino].extents.get(pg + run).is_none()
            {
                run += 1;
            }
            let new_runs = inner.alloc.alloc(ino, run)?;
            let mut fp = pg;
            for (db, dl) in new_runs {
                inner
                    .inodes
                    .get_mut(&ino)
                    .expect("checked")
                    .extents
                    .insert(fp, dl, Linear(db));
                fp += dl;
            }
            i += run as usize;
        }
        // Pass 2 — elevator submit: order by device block, merge runs.
        let mut by_block: Vec<(u64, Vec<u8>)> = Vec::with_capacity(dirty.len());
        for (pg, data) in dirty {
            let Some(Linear(db)) = inner.inodes[&ino].extents.get(pg) else {
                continue; // truncated under us
            };
            by_block.push((db, data));
        }
        by_block.sort_by_key(|(db, _)| *db);
        let mut i = 0usize;
        while i < by_block.len() {
            let start = by_block[i].0;
            let mut run = 1usize;
            while i + run < by_block.len() && by_block[i + run].0 == start + run as u64 {
                run += 1;
            }
            let mut blob = Vec::with_capacity(run * BLOCK as usize);
            for (_, data) in &by_block[i..i + run] {
                blob.extend_from_slice(data);
            }
            self.dev.write(start * BLOCK, &blob)?;
            i += run;
        }
        let x = inner.inodes.get_mut(&ino).expect("checked");
        x.attr.blocks_bytes = x.extents.covered() * BLOCK;
        inner.dirty_meta.insert(ino);
        Ok(())
    }

    fn writeback_all(&self, inner: &mut Inner) -> VfsResult<()> {
        for ino in inner.cache.dirty_inodes() {
            self.writeback_inode(inner, ino)?;
        }
        Ok(())
    }

    /// Reads one page through the cache (device on miss).
    fn read_page_cached(
        &self,
        inner: &mut Inner,
        ino: InodeNo,
        pg: u64,
        out: &mut [u8],
    ) -> VfsResult<()> {
        if inner.cache.get(ino, pg, out) {
            self.charge_dram(1);
            return Ok(());
        }
        match inner.inodes[&ino].extents.get(pg) {
            Some(Linear(db)) => {
                self.dev.read(db * BLOCK, out)?;
                inner.cache.insert_clean(ino, pg, out);
            }
            None => out.fill(0),
        }
        Ok(())
    }

    /// Prefetches mapped pages `[from, from+n)` into the cache.
    fn readahead(&self, inner: &mut Inner, ino: InodeNo, from: u64, n: u64) -> VfsResult<()> {
        let mut buf = vec![0u8; BLOCK as usize];
        for pg in from..from + n {
            if inner.cache.contains(ino, pg) {
                continue;
            }
            if let Some(Linear(db)) = inner.inodes[&ino].extents.get(pg) {
                self.dev.read(db * BLOCK, &mut buf)?;
                inner.cache.insert_clean(ino, pg, &buf);
            }
        }
        Ok(())
    }
}

impl FileSystem for XeFs {
    fn fs_name(&self) -> &str {
        "xefs"
    }

    fn lookup(&self, parent: InodeNo, name: &str) -> VfsResult<FileAttr> {
        self.charge_sw();
        let inner = self.inner.lock();
        let dir = inner.inodes.get(&parent).ok_or(VfsError::NotFound)?;
        if !dir.attr.is_dir() {
            return Err(VfsError::NotDir);
        }
        let &(child, _) = dir.dentries.get(name).ok_or(VfsError::NotFound)?;
        inner
            .inodes
            .get(&child)
            .map(|x| x.attr)
            .ok_or(VfsError::Stale)
    }

    fn getattr(&self, ino: InodeNo) -> VfsResult<FileAttr> {
        self.charge_sw();
        let inner = self.inner.lock();
        inner
            .inodes
            .get(&ino)
            .map(|x| x.attr)
            .ok_or(VfsError::NotFound)
    }

    fn setattr(&self, ino: InodeNo, set: &SetAttr) -> VfsResult<FileAttr> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        if !inner.inodes.contains_key(&ino) {
            return Err(VfsError::NotFound);
        }
        if let Some(new_size) = set.size {
            if inner.inodes[&ino].attr.is_dir() {
                return Err(VfsError::IsDir);
            }
            let old_size = inner.inodes[&ino].attr.size;
            if new_size < old_size {
                let first_dead = new_size.div_ceil(BLOCK);
                inner.cache.invalidate_from(ino, first_dead);
                // Free whole blocks past the end.
                let mut freed: Vec<(u64, u64)> = Vec::new();
                {
                    let x = inner.inodes.get_mut(&ino).expect("checked");
                    let tail = old_size.div_ceil(BLOCK).max(first_dead);
                    for e in x.extents.overlapping(first_dead, tail - first_dead) {
                        freed.push((e.value.0, e.len));
                    }
                    x.extents.remove(first_dead, tail - first_dead);
                }
                for (s, l) in freed {
                    inner.alloc.free(s, l);
                }
                // Zero the tail of the boundary page so re-extension reads
                // zeros (delayed: goes through the cache as a dirty page).
                if new_size % BLOCK != 0 {
                    let pg = new_size / BLOCK;
                    let has_backing = inner.inodes[&ino].extents.get(pg).is_some()
                        || inner.cache.contains(ino, pg);
                    if has_backing {
                        let mut base = vec![0u8; BLOCK as usize];
                        self.read_page_cached(&mut inner, ino, pg, &mut base)?;
                        let cut = (new_size % BLOCK) as usize;
                        inner.cache.update_dirty(
                            ino,
                            pg,
                            || base.clone(),
                            |page| page[cut..].fill(0),
                        );
                    }
                }
            }
            let x = inner.inodes.get_mut(&ino).expect("checked");
            x.attr.size = new_size;
            x.attr.mtime_ns = now;
            x.attr.blocks_bytes = x.extents.covered() * BLOCK;
        }
        let x = inner.inodes.get_mut(&ino).expect("checked");
        if let Some(m) = set.mode {
            x.attr.mode = m;
        }
        if let Some(u) = set.uid {
            x.attr.uid = u;
        }
        if let Some(g) = set.gid {
            x.attr.gid = g;
        }
        if let Some(t) = set.atime_ns {
            x.attr.atime_ns = t;
        }
        if let Some(t) = set.mtime_ns {
            x.attr.mtime_ns = t;
        }
        x.attr.ctime_ns = now;
        let attr = x.attr;
        inner.dirty_meta.insert(ino);
        Ok(attr)
    }

    fn create(
        &self,
        parent: InodeNo,
        name: &str,
        kind: FileType,
        mode: u32,
    ) -> VfsResult<FileAttr> {
        if name.is_empty() || name.contains('/') {
            return Err(VfsError::InvalidArgument("bad name".into()));
        }
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        {
            let dir = inner.inodes.get(&parent).ok_or(VfsError::NotFound)?;
            if !dir.attr.is_dir() {
                return Err(VfsError::NotDir);
            }
            if dir.dentries.contains_key(name) {
                return Err(VfsError::Exists);
            }
        }
        let ino = inner.next_ino;
        inner.next_ino += 1;
        let mut attr = FileAttr::new(ino, kind, mode, now);
        if kind == FileType::Directory {
            attr.nlink = 2;
        }
        inner.inodes.insert(
            ino,
            XInode {
                attr,
                extents: RangeMap::new(),
                dentries: BTreeMap::new(),
            },
        );
        inner
            .inodes
            .get_mut(&parent)
            .expect("checked")
            .dentries
            .insert(name.to_string(), (ino, kind == FileType::Directory));
        inner.dirty_meta.insert(parent);
        inner.dirty_meta.insert(ino);
        Ok(attr)
    }

    fn unlink(&self, parent: InodeNo, name: &str) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let child = {
            let dir = inner.inodes.get(&parent).ok_or(VfsError::NotFound)?;
            if !dir.attr.is_dir() {
                return Err(VfsError::NotDir);
            }
            let &(child, _) = dir.dentries.get(name).ok_or(VfsError::NotFound)?;
            child
        };
        if let Some(c) = inner.inodes.get(&child) {
            if c.attr.is_dir() && !c.dentries.is_empty() {
                return Err(VfsError::NotEmpty);
            }
        }
        inner
            .inodes
            .get_mut(&parent)
            .expect("checked")
            .dentries
            .remove(name);
        inner.cache.invalidate(child);
        if let Some(x) = inner.inodes.remove(&child) {
            for e in x.extents.iter() {
                inner.alloc.free(e.value.0, e.len);
            }
        }
        inner.dirty_meta.insert(parent);
        inner.dirty_meta.remove(&child);
        inner.tombstones.push(InodeRecord::tombstone(child));
        Ok(())
    }

    fn rename(
        &self,
        parent: InodeNo,
        name: &str,
        new_parent: InodeNo,
        new_name: &str,
    ) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let entry = {
            let dir = inner.inodes.get(&parent).ok_or(VfsError::NotFound)?;
            *dir.dentries.get(name).ok_or(VfsError::NotFound)?
        };
        let replaced = {
            let ndir = inner.inodes.get(&new_parent).ok_or(VfsError::NotFound)?;
            if !ndir.attr.is_dir() {
                return Err(VfsError::NotDir);
            }
            match ndir.dentries.get(new_name) {
                Some(&(existing, true)) => {
                    let exi = inner.inodes.get(&existing).ok_or(VfsError::Stale)?;
                    if !exi.dentries.is_empty() {
                        return Err(VfsError::NotEmpty);
                    }
                    Some(existing)
                }
                Some(&(existing, false)) => Some(existing),
                None => None,
            }
        };
        inner
            .inodes
            .get_mut(&parent)
            .expect("checked")
            .dentries
            .remove(name);
        inner
            .inodes
            .get_mut(&new_parent)
            .expect("checked")
            .dentries
            .insert(new_name.to_string(), entry);
        if let Some(existing) = replaced {
            if existing != entry.0 {
                inner.cache.invalidate(existing);
                if let Some(x) = inner.inodes.remove(&existing) {
                    for e in x.extents.iter() {
                        inner.alloc.free(e.value.0, e.len);
                    }
                }
                inner.tombstones.push(InodeRecord::tombstone(existing));
            }
        }
        inner.dirty_meta.insert(parent);
        inner.dirty_meta.insert(new_parent);
        Ok(())
    }

    fn readdir(&self, ino: InodeNo) -> VfsResult<Vec<DirEntry>> {
        self.charge_sw();
        let inner = self.inner.lock();
        let dir = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
        if !dir.attr.is_dir() {
            return Err(VfsError::NotDir);
        }
        Ok(dir
            .dentries
            .iter()
            .map(|(name, &(child, is_dir))| DirEntry {
                name: name.clone(),
                ino: child,
                kind: if is_dir {
                    FileType::Directory
                } else {
                    FileType::Regular
                },
            })
            .collect())
    }

    fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> VfsResult<usize> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        let size = {
            let x = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
            if x.attr.is_dir() {
                return Err(VfsError::IsDir);
            }
            x.attr.size
        };
        if off >= size {
            return Ok(0);
        }
        let n = buf.len().min((size - off) as usize);
        let mut page_buf = vec![0u8; BLOCK as usize];
        let mut done = 0usize;
        while done < n {
            let pos = off + done as u64;
            let pg = pos / BLOCK;
            let in_pg = (pos % BLOCK) as usize;
            let chunk = (BLOCK as usize - in_pg).min(n - done);
            self.read_page_cached(&mut inner, ino, pg, &mut page_buf)?;
            buf[done..done + chunk].copy_from_slice(&page_buf[in_pg..in_pg + chunk]);
            done += chunk;
        }
        // Sequential readahead.
        let first_pg = off / BLOCK;
        let last_pg = (off + n as u64 - 1) / BLOCK;
        let expected = inner.ra_next.get(&ino).copied();
        if expected == Some(first_pg) && self.opts.readahead_pages > 0 {
            self.readahead(&mut inner, ino, last_pg + 1, self.opts.readahead_pages)?;
        }
        inner.ra_next.insert(ino, last_pg + 1);
        if let Some(x) = inner.inodes.get_mut(&ino) {
            x.attr.atime_ns = now; // relatime-style, not journaled per read
        }
        Ok(n)
    }

    fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> VfsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        self.charge_sw();
        let mut inner = self.inner.lock();
        let now = self.now();
        {
            let x = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?;
            if x.attr.is_dir() {
                return Err(VfsError::IsDir);
            }
        }
        let len = data.len() as u64;
        let first_pg = off / BLOCK;
        let last_pg = (off + len - 1) / BLOCK;
        for pg in first_pg..=last_pg {
            let pg_start = pg * BLOCK;
            let w_start = off.max(pg_start);
            let w_end = (off + len).min(pg_start + BLOCK);
            let partial = w_start != pg_start || w_end != pg_start + BLOCK;
            // Base content for partial pages comes from the device if the
            // page is mapped and not resident.
            let base: Vec<u8> = if partial && !inner.cache.contains(ino, pg) {
                match inner.inodes[&ino].extents.get(pg) {
                    Some(Linear(db)) => {
                        let mut b = vec![0u8; BLOCK as usize];
                        self.dev.read(db * BLOCK, &mut b)?;
                        b
                    }
                    None => vec![0u8; BLOCK as usize],
                }
            } else {
                vec![0u8; BLOCK as usize]
            };
            inner.cache.update_dirty(
                ino,
                pg,
                || base,
                |page| {
                    page[(w_start - pg_start) as usize..(w_end - pg_start) as usize]
                        .copy_from_slice(&data[(w_start - off) as usize..(w_end - off) as usize]);
                },
            );
        }
        self.charge_dram(last_pg - first_pg + 1);
        {
            let x = inner.inodes.get_mut(&ino).expect("checked");
            x.attr.size = x.attr.size.max(off + len);
            x.attr.mtime_ns = now;
        }
        inner.dirty_meta.insert(ino);
        if inner.cache.total_dirty() > self.opts.writeback_threshold {
            self.writeback_all(&mut inner)?;
            self.commit_meta(&mut inner)?;
        }
        Ok(data.len())
    }

    fn punch_hole(&self, ino: InodeNo, off: u64, len: u64) -> VfsResult<()> {
        if len == 0 {
            return Ok(());
        }
        self.charge_sw();
        let mut inner = self.inner.lock();
        if !inner.inodes.contains_key(&ino) {
            return Err(VfsError::NotFound);
        }
        if inner.inodes[&ino].attr.is_dir() {
            return Err(VfsError::IsDir);
        }
        let end = off + len;
        let first_full = off.div_ceil(BLOCK);
        let last_full = end / BLOCK;
        // Zero partial edges via the cache.
        let zero_range = |inner: &mut Inner, zoff: u64, zlen: u64| -> VfsResult<()> {
            if zlen == 0 {
                return Ok(());
            }
            let pg = zoff / BLOCK;
            let has_backing =
                inner.inodes[&ino].extents.get(pg).is_some() || inner.cache.contains(ino, pg);
            if !has_backing {
                return Ok(()); // already a hole
            }
            let mut base = vec![0u8; BLOCK as usize];
            self.read_page_cached(inner, ino, pg, &mut base)?;
            let s = (zoff % BLOCK) as usize;
            inner.cache.update_dirty(
                ino,
                pg,
                || base.clone(),
                |page| page[s..s + zlen as usize].fill(0),
            );
            Ok(())
        };
        let head_end = end.min(first_full * BLOCK);
        if off < head_end {
            zero_range(&mut inner, off, head_end - off)?;
        }
        let tail_start = (last_full * BLOCK).max(off);
        if tail_start < end && tail_start >= head_end {
            zero_range(&mut inner, tail_start, end - tail_start)?;
        }
        if last_full > first_full {
            inner.cache.invalidate_range(ino, first_full, last_full);
            let mut freed: Vec<(u64, u64)> = Vec::new();
            {
                let x = inner.inodes.get_mut(&ino).expect("checked");
                for e in x.extents.overlapping(first_full, last_full - first_full) {
                    freed.push((e.value.0, e.len));
                }
                x.extents.remove(first_full, last_full - first_full);
                x.attr.blocks_bytes = x.extents.covered() * BLOCK;
            }
            for (s, l) in freed {
                inner.alloc.free(s, l);
            }
        }
        inner.dirty_meta.insert(ino);
        Ok(())
    }

    fn next_data(&self, ino: InodeNo, off: u64) -> VfsResult<Option<(u64, u64)>> {
        self.charge_sw();
        let inner = self.inner.lock();
        let size = inner.inodes.get(&ino).ok_or(VfsError::NotFound)?.attr.size;
        if off >= size {
            return Ok(None);
        }
        // Delayed-allocation pages count as data: consider both the extent
        // map and resident dirty pages.
        let dirty = inner.cache.dirty_page_list(ino);
        let is_data = |inner: &Inner, pg: u64| {
            inner.inodes[&ino].extents.get(pg).is_some() || dirty.binary_search(&pg).is_ok()
        };
        let start_pg = off / BLOCK;
        let max_pg = size.div_ceil(BLOCK);
        let mut pg = start_pg;
        while pg < max_pg && !is_data(&inner, pg) {
            // Skip holes quickly using the extent map where possible.
            let next_ext = inner.inodes[&ino].extents.next_mapped(pg).map(|e| e.start);
            let next_dirty = dirty.iter().copied().find(|&d| d >= pg);
            pg = match (next_ext, next_dirty) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => return Ok(None),
            };
        }
        if pg >= max_pg {
            return Ok(None);
        }
        let data_start = (pg * BLOCK).max(off);
        if data_start >= size {
            return Ok(None);
        }
        let mut end_pg = pg;
        while end_pg < max_pg && is_data(&inner, end_pg) {
            end_pg += 1;
        }
        let data_end = (end_pg * BLOCK).min(size);
        Ok(Some((data_start, data_end - data_start)))
    }

    fn fsync(&self, ino: InodeNo) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        if !inner.inodes.contains_key(&ino) {
            return Err(VfsError::NotFound);
        }
        self.writeback_inode(&mut inner, ino)?;
        self.commit_meta(&mut inner)
    }

    fn sync(&self) -> VfsResult<()> {
        self.charge_sw();
        let mut inner = self.inner.lock();
        self.writeback_all(&mut inner)?;
        self.commit_meta(&mut inner)
    }

    fn statfs(&self) -> VfsResult<StatFs> {
        let inner = self.inner.lock();
        let total = (self.sb.capacity / BLOCK).saturating_sub(self.sb.first_data_block()) * BLOCK;
        Ok(StatFs {
            total_bytes: total,
            free_bytes: inner.alloc.free_blocks() * BLOCK
                - (inner.cache.total_dirty() as u64 * BLOCK).min(inner.alloc.free_blocks() * BLOCK),
            inodes: inner.inodes.len() as u64,
            block_size: BLOCK as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{nvme_ssd, VirtualClock};

    fn fresh() -> XeFs {
        let dev = Device::with_profile(nvme_ssd(), 256 << 20, VirtualClock::new());
        XeFs::format(dev, XeOptions::default()).unwrap()
    }

    fn mk(fs: &XeFs, name: &str) -> FileAttr {
        fs.create(ROOT_INO, name, FileType::Regular, 0o644).unwrap()
    }

    #[test]
    fn write_read_through_cache() {
        let fs = fresh();
        let a = mk(&fs, "f");
        let data: Vec<u8> = (0..50_000).map(|i| (i % 253) as u8).collect();
        fs.write(a.ino, 7, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        assert_eq!(fs.read(a.ino, 7, &mut buf).unwrap(), data.len());
        assert_eq!(buf, data);
    }

    #[test]
    fn delayed_allocation_until_fsync() {
        let fs = fresh();
        let a = mk(&fs, "f");
        fs.write(a.ino, 0, &vec![1u8; 64 * 4096]).unwrap();
        // No extents yet (all delalloc).
        assert_eq!(fs.getattr(a.ino).unwrap().blocks_bytes, 0);
        fs.fsync(a.ino).unwrap();
        assert_eq!(fs.getattr(a.ino).unwrap().blocks_bytes, 64 * 4096);
    }

    #[test]
    fn delayed_allocation_produces_contiguous_extents() {
        let fs = fresh();
        let a = mk(&fs, "f");
        // Many small appends, one allocation at fsync.
        for i in 0..256u64 {
            fs.write(a.ino, i * 1024, &[7u8; 1024]).unwrap();
        }
        fs.fsync(a.ino).unwrap();
        let inner = fs.inner.lock();
        let segs = inner.inodes[&a.ino].extents.segment_count();
        assert!(segs <= 2, "expected ~1 extent from delalloc, got {segs}");
    }

    #[test]
    fn data_durable_after_fsync_and_crash() {
        let dev = Device::with_profile(nvme_ssd(), 256 << 20, VirtualClock::new());
        let data: Vec<u8> = (0..20_000).map(|i| (i % 247) as u8).collect();
        {
            let fs = XeFs::format(dev.clone(), XeOptions::default()).unwrap();
            let a = mk(&fs, "f");
            fs.write(a.ino, 100, &data).unwrap();
            fs.fsync(a.ino).unwrap();
        }
        let dev2 = dev.clone();
        dev2.crash();
        let fs2 = XeFs::mount(dev2, XeOptions::default()).unwrap();
        let a = fs2.lookup(ROOT_INO, "f").unwrap();
        assert_eq!(a.size, 100 + data.len() as u64);
        let mut buf = vec![0u8; data.len()];
        fs2.read(a.ino, 100, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn unsynced_data_lost_after_crash_but_metadata_consistent() {
        let dev = Device::with_profile(nvme_ssd(), 256 << 20, VirtualClock::new());
        {
            let fs = XeFs::format(dev.clone(), XeOptions::default()).unwrap();
            let a = mk(&fs, "synced");
            fs.write(a.ino, 0, b"safe").unwrap();
            fs.fsync(a.ino).unwrap();
            let b = mk(&fs, "unsynced");
            fs.write(b.ino, 0, b"gone").unwrap();
            // no fsync for b
        }
        dev.crash();
        let fs2 = XeFs::mount(dev, XeOptions::default()).unwrap();
        assert!(fs2.lookup(ROOT_INO, "synced").is_ok());
        // "unsynced" may or may not exist depending on the journal batch;
        // either way the fs mounts and the synced file is intact.
        let a = fs2.lookup(ROOT_INO, "synced").unwrap();
        let mut buf = [0u8; 4];
        fs2.read(a.ino, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"safe");
    }

    #[test]
    fn cache_hit_rate_tracks_capacity() {
        let dev = Device::with_profile(nvme_ssd(), 512 << 20, VirtualClock::new());
        let opts = XeOptions {
            page_cache_bytes: 1 << 20, // 256 pages
            readahead_pages: 0,
            ..Default::default()
        };
        let fs = XeFs::format(dev, opts).unwrap();
        let a = mk(&fs, "f");
        // 1024-page file, cache holds 256.
        fs.write(a.ino, 0, &vec![1u8; 1024 * 4096]).unwrap();
        fs.fsync(a.ino).unwrap();
        let mut one = [0u8; 1];
        // Scan everything once to warm, then measure a second uniform scan.
        for pg in 0..1024u64 {
            fs.read(a.ino, pg * 4096, &mut one).unwrap();
        }
        let h0 = fs.cache_stats();
        for pg in 0..1024u64 {
            fs.read(a.ino, pg * 4096, &mut one).unwrap();
        }
        let h1 = fs.cache_stats();
        let hits = h1.hits - h0.hits;
        // LRU + sequential scan = ~0 hits (worst case); the point is the
        // cache is bounded, not magic.
        assert!(hits < 512);
        assert!(fs.inner.lock().cache.len() <= 256 + 1);
    }

    #[test]
    fn readahead_prefetches_sequential() {
        let dev = Device::with_profile(nvme_ssd(), 256 << 20, VirtualClock::new());
        let fs = XeFs::format(
            dev,
            XeOptions {
                readahead_pages: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let a = mk(&fs, "f");
        fs.write(a.ino, 0, &vec![1u8; 64 * 4096]).unwrap();
        fs.fsync(a.ino).unwrap();
        // Drop cache to start cold.
        fs.inner.lock().cache.invalidate(a.ino);
        let mut buf = vec![0u8; 4096];
        fs.read(a.ino, 0, &mut buf).unwrap(); // miss, ra_next=1
        fs.read(a.ino, 4096, &mut buf).unwrap(); // sequential -> prefetch
        let hits_before = fs.cache_stats().hits;
        // Pages 2..10 were prefetched: all cache hits (the ongoing
        // readahead keeps fetching *further* pages, which is fine).
        for pg in 2..10u64 {
            fs.read(a.ino, pg * 4096, &mut buf).unwrap();
        }
        let hits_after = fs.cache_stats().hits;
        assert_eq!(hits_after - hits_before, 8, "readahead should absorb these");
    }

    #[test]
    fn sparse_and_punch() {
        let fs = fresh();
        let a = mk(&fs, "f");
        fs.write(a.ino, 10 * 4096, &vec![3u8; 4096]).unwrap();
        fs.fsync(a.ino).unwrap();
        assert_eq!(fs.getattr(a.ino).unwrap().blocks_bytes, 4096);
        let (s, l) = fs.next_data(a.ino, 0).unwrap().unwrap();
        assert_eq!((s, l), (10 * 4096, 4096));
        fs.punch_hole(a.ino, 10 * 4096, 4096).unwrap();
        assert_eq!(fs.next_data(a.ino, 0).unwrap(), None);
        assert_eq!(fs.getattr(a.ino).unwrap().blocks_bytes, 0);
    }

    #[test]
    fn next_data_sees_delalloc_pages() {
        let fs = fresh();
        let a = mk(&fs, "f");
        fs.write(a.ino, 5 * 4096, &vec![1u8; 4096]).unwrap();
        // Not fsync'd: page is dirty in cache, no extent.
        let (s, l) = fs.next_data(a.ino, 0).unwrap().unwrap();
        assert_eq!((s, l), (5 * 4096, 4096));
    }

    #[test]
    fn truncate_shrink_extend_zeros() {
        let fs = fresh();
        let a = mk(&fs, "f");
        fs.write(a.ino, 0, &vec![9u8; 8192]).unwrap();
        fs.fsync(a.ino).unwrap();
        fs.setattr(a.ino, &SetAttr::truncate(1000)).unwrap();
        fs.setattr(a.ino, &SetAttr::truncate(8192)).unwrap();
        let mut buf = vec![0u8; 8192];
        fs.read(a.ino, 0, &mut buf).unwrap();
        assert!(buf[..1000].iter().all(|&b| b == 9));
        assert!(buf[1000..].iter().all(|&b| b == 0));
    }

    #[test]
    fn rename_and_replace_frees_target() {
        let fs = fresh();
        let a = mk(&fs, "a");
        fs.write(a.ino, 0, &vec![1u8; 40960]).unwrap();
        fs.fsync(a.ino).unwrap();
        let b = mk(&fs, "b");
        fs.write(b.ino, 0, &vec![2u8; 40960]).unwrap();
        fs.fsync(b.ino).unwrap();
        let free_before = fs.statfs().unwrap().free_bytes;
        fs.rename(ROOT_INO, "a", ROOT_INO, "b").unwrap();
        assert!(fs.statfs().unwrap().free_bytes >= free_before + 40960);
        let got = fs.lookup(ROOT_INO, "b").unwrap();
        assert_eq!(got.ino, a.ino);
    }

    #[test]
    fn journal_compaction_survives_many_commits() {
        let dev = Device::with_profile(nvme_ssd(), 256 << 20, VirtualClock::new());
        let fs = XeFs::format(
            dev.clone(),
            XeOptions {
                journal_blocks: 8, // force frequent checkpoints
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..200 {
            let f = mk(&fs, &format!("f{i}"));
            fs.write(f.ino, 0, &[i as u8; 128]).unwrap();
            fs.fsync(f.ino).unwrap();
        }
        drop(fs);
        let fs2 = XeFs::mount(dev, XeOptions::default()).unwrap();
        for i in 0..200 {
            let f = fs2.lookup(ROOT_INO, &format!("f{i}")).unwrap();
            let mut b = [0u8; 1];
            fs2.read(f.ino, 0, &mut b).unwrap();
            assert_eq!(b[0], i as u8);
        }
    }

    #[test]
    fn mount_rebuilds_allocator() {
        let dev = Device::with_profile(nvme_ssd(), 64 << 20, VirtualClock::new());
        let free;
        {
            let fs = XeFs::format(dev.clone(), XeOptions::default()).unwrap();
            let a = mk(&fs, "f");
            fs.write(a.ino, 0, &vec![1u8; 1 << 20]).unwrap();
            fs.sync().unwrap();
            free = fs.statfs().unwrap().free_bytes;
        }
        let fs2 = XeFs::mount(dev, XeOptions::default()).unwrap();
        assert_eq!(fs2.statfs().unwrap().free_bytes, free);
        // New allocations must not collide with recovered extents.
        let b = fs2.create(ROOT_INO, "g", FileType::Regular, 0o644).unwrap();
        fs2.write(b.ino, 0, &vec![2u8; 1 << 20]).unwrap();
        fs2.sync().unwrap();
        let a = fs2.lookup(ROOT_INO, "f").unwrap();
        let mut buf = vec![0u8; 1 << 20];
        fs2.read(a.ino, 0, &mut buf).unwrap();
        assert!(
            buf.iter().all(|&x| x == 1),
            "old file corrupted by new allocation"
        );
    }

    #[test]
    fn nospace_on_tiny_device() {
        let dev = Device::with_profile(nvme_ssd(), 2 << 20, VirtualClock::new());
        let fs = XeFs::format(
            dev,
            XeOptions {
                journal_blocks: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let a = mk(&fs, "f");
        fs.write(a.ino, 0, &vec![1u8; 4 << 20]).unwrap();
        assert_eq!(fs.fsync(a.ino).unwrap_err(), VfsError::NoSpace);
    }

    #[test]
    fn write_amplification_absent_for_overwrites() {
        // Overwriting the same mapped block must write in place, not leak.
        let fs = fresh();
        let a = mk(&fs, "f");
        fs.write(a.ino, 0, &vec![1u8; 4096]).unwrap();
        fs.fsync(a.ino).unwrap();
        let free = fs.statfs().unwrap().free_bytes;
        for _ in 0..50 {
            fs.write(a.ino, 0, &vec![2u8; 4096]).unwrap();
            fs.fsync(a.ino).unwrap();
        }
        assert_eq!(fs.statfs().unwrap().free_bytes, free);
        assert_eq!(fs.getattr(a.ino).unwrap().blocks_bytes, 4096);
    }
}
