//! The metadata journal: a ring of checksummed, sequence-numbered records.
//!
//! Record framing on the device:
//!
//! ```text
//! [seq u64][kind u8][len u32][checksum u32][payload: InodeRecord*]
//! ```
//!
//! `kind` is [`REC_TXN`] (delta: the inodes changed since the previous
//! record) or [`REC_CHECKPOINT`] (the complete metadata state; replay
//! discards everything seen before it). When an append would overflow the
//! ring, the journal compacts itself by writing a fresh checkpoint at the
//! region start.
//!
//! Replay scans from the region start: records must carry strictly
//! increasing sequence numbers and valid checksums; the first violation
//! ends replay (that is the crash frontier).

use bytes::{Buf, BufMut};
use simdev::Device;
use tvfs::{VfsError, VfsResult};

use crate::layout::InodeRecord;

/// Record kind: incremental transaction.
pub const REC_TXN: u8 = 1;
/// Record kind: full checkpoint.
pub const REC_CHECKPOINT: u8 = 2;

const HEADER: usize = 8 + 1 + 4 + 4;

fn checksum(data: &[u8]) -> u32 {
    // FNV-1a, enough to catch torn journal writes.
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Journal writer state.
#[derive(Debug)]
pub struct Journal {
    region_off: u64,
    region_len: u64,
    cursor: u64,
    next_seq: u64,
}

/// One decoded journal record.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    /// Sequence number.
    #[allow(dead_code)] // read by recovery diagnostics and tests
    pub seq: u64,
    /// [`REC_TXN`] or [`REC_CHECKPOINT`].
    pub kind: u8,
    /// Inode records in the transaction.
    pub inodes: Vec<InodeRecord>,
}

impl Journal {
    /// A fresh journal over `[region_off, region_off + region_len)`.
    pub fn new(region_off: u64, region_len: u64) -> Self {
        Journal {
            region_off,
            region_len,
            cursor: region_off,
            next_seq: 1,
        }
    }

    /// Bytes left before the ring must compact.
    pub fn remaining(&self) -> u64 {
        self.region_off + self.region_len - self.cursor
    }

    /// Encodes `inodes` as a record of `kind` and returns the frame.
    fn frame(&mut self, kind: u8, inodes: &[InodeRecord]) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.put_u32_le(inodes.len() as u32);
        for r in inodes {
            r.encode_into(&mut payload);
        }
        let mut out = Vec::with_capacity(HEADER + payload.len());
        out.put_u64_le(self.next_seq);
        out.put_u8(kind);
        out.put_u32_le(payload.len() as u32);
        out.put_u32_le(checksum(&payload));
        out.extend_from_slice(&payload);
        self.next_seq += 1;
        out
    }

    /// Appends a transaction record; returns `false` if it does not fit
    /// (the caller must then write a checkpoint via
    /// [`Journal::write_checkpoint`]).
    pub fn append_txn(&mut self, dev: &Device, inodes: &[InodeRecord]) -> VfsResult<bool> {
        let frame = self.frame(REC_TXN, inodes);
        if frame.len() as u64 + 8 > self.remaining() {
            // Roll the seq back; the frame was not used.
            self.next_seq -= 1;
            return Ok(false);
        }
        dev.write(self.cursor, &frame)?;
        self.cursor += frame.len() as u64;
        Ok(true)
    }

    /// Writes a full checkpoint at the region start and resets the cursor
    /// after it.
    pub fn write_checkpoint(&mut self, dev: &Device, all_inodes: &[InodeRecord]) -> VfsResult<()> {
        let frame = self.frame(REC_CHECKPOINT, all_inodes);
        if frame.len() as u64 + 8 > self.region_len {
            return Err(VfsError::Io(
                "journal too small for metadata checkpoint".into(),
            ));
        }
        dev.write(self.region_off, &frame)?;
        self.cursor = self.region_off + frame.len() as u64;
        // Terminate the ring: a zero seq stops replay.
        dev.write(self.cursor, &[0u8; 8])?;
        Ok(())
    }

    /// Replays the journal region, returning the surviving records and a
    /// journal positioned to append after them.
    pub fn replay(
        dev: &Device,
        region_off: u64,
        region_len: u64,
    ) -> VfsResult<(Vec<JournalRecord>, Journal)> {
        let mut raw = vec![0u8; region_len as usize];
        dev.read(region_off, &mut raw)?;
        let mut records: Vec<JournalRecord> = Vec::new();
        let mut pos = 0usize;
        let mut last_seq = 0u64;
        loop {
            if pos + HEADER > raw.len() {
                break;
            }
            let mut h = &raw[pos..pos + HEADER];
            let seq = h.get_u64_le();
            let kind = h.get_u8();
            let len = h.get_u32_le() as usize;
            let sum = h.get_u32_le();
            if seq == 0 || seq <= last_seq || (kind != REC_TXN && kind != REC_CHECKPOINT) {
                break;
            }
            if pos + HEADER + len > raw.len() {
                break;
            }
            let payload = &raw[pos + HEADER..pos + HEADER + len];
            if checksum(payload) != sum {
                break; // torn record: crash frontier
            }
            let mut p = payload;
            if p.len() < 4 {
                break;
            }
            let n = p.get_u32_le() as usize;
            let mut inodes = Vec::with_capacity(n);
            let mut ok = true;
            for _ in 0..n {
                match InodeRecord::decode_from(&mut p) {
                    Ok(r) => inodes.push(r),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                break;
            }
            if kind == REC_CHECKPOINT {
                records.clear();
            }
            last_seq = seq;
            records.push(JournalRecord { seq, kind, inodes });
            pos += HEADER + len;
        }
        let journal = Journal {
            region_off,
            region_len,
            cursor: region_off + pos as u64,
            next_seq: last_seq + 1,
        };
        Ok((records, journal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdev::{nvme_ssd, VirtualClock};

    fn dev() -> Device {
        Device::with_profile(nvme_ssd(), 16 << 20, VirtualClock::new())
    }

    fn region() -> (u64, u64) {
        (4096, 1 << 20)
    }

    #[test]
    fn append_and_replay() {
        let d = dev();
        let (off, len) = region();
        let mut j = Journal::new(off, len);
        j.append_txn(&d, &[InodeRecord::tombstone(1)]).unwrap();
        j.append_txn(&d, &[InodeRecord::tombstone(2), InodeRecord::tombstone(3)])
            .unwrap();
        let (recs, j2) = Journal::replay(&d, off, len).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].inodes.len(), 1);
        assert_eq!(recs[1].inodes.len(), 2);
        assert_eq!(recs[1].seq, 2);
        assert_eq!(j2.next_seq, 3);
    }

    #[test]
    fn checkpoint_clears_prior_records() {
        let d = dev();
        let (off, len) = region();
        let mut j = Journal::new(off, len);
        j.append_txn(&d, &[InodeRecord::tombstone(1)]).unwrap();
        j.write_checkpoint(&d, &[InodeRecord::tombstone(9)])
            .unwrap();
        j.append_txn(&d, &[InodeRecord::tombstone(2)]).unwrap();
        let (recs, _) = Journal::replay(&d, off, len).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, REC_CHECKPOINT);
        assert_eq!(recs[0].inodes[0].ino, 9);
        assert_eq!(recs[1].inodes[0].ino, 2);
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let d = dev();
        let (off, len) = region();
        let mut j = Journal::new(off, len);
        j.append_txn(&d, &[InodeRecord::tombstone(1)]).unwrap();
        let frontier = j.cursor;
        j.append_txn(&d, &[InodeRecord::tombstone(2)]).unwrap();
        // Corrupt a payload byte of the second record.
        d.write(frontier + HEADER as u64 + 2, &[0xFF]).unwrap();
        let (recs, j2) = Journal::replay(&d, off, len).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].inodes[0].ino, 1);
        // New appends land at the frontier, atop the torn record.
        assert_eq!(j2.cursor, frontier);
    }

    #[test]
    fn append_reports_full() {
        let d = dev();
        let off = 4096;
        let len = 1024; // tiny ring: one 10-tombstone txn fits, two do not
        let mut j = Journal::new(off, len);
        let big: Vec<InodeRecord> = (0..10).map(InodeRecord::tombstone).collect();
        assert!(j.append_txn(&d, &big).unwrap());
        assert!(!j.append_txn(&d, &big).unwrap(), "second must not fit");
        // Checkpoint compacts and resumes.
        j.write_checkpoint(&d, &[InodeRecord::tombstone(1)])
            .unwrap();
        assert!(j.append_txn(&d, &[InodeRecord::tombstone(2)]).unwrap());
        let (recs, _) = Journal::replay(&d, off, len).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn empty_region_replays_empty() {
        let d = dev();
        let (off, len) = region();
        let (recs, j) = Journal::replay(&d, off, len).unwrap();
        assert!(recs.is_empty());
        assert_eq!(j.next_seq, 1);
        assert_eq!(j.cursor, off);
    }

    #[test]
    fn unflushed_journal_lost_on_crash() {
        let d = dev();
        let (off, len) = region();
        let mut j = Journal::new(off, len);
        j.append_txn(&d, &[InodeRecord::tombstone(1)]).unwrap();
        d.flush();
        j.append_txn(&d, &[InodeRecord::tombstone(2)]).unwrap();
        d.crash();
        let (recs, _) = Journal::replay(&d, off, len).unwrap();
        assert_eq!(recs.len(), 1, "unflushed txn must be gone");
    }
}
