//! On-device layout and metadata codecs.
//!
//! ```text
//! block 0                      superblock
//! blocks 1..=J                 journal ring
//! blocks J+1..                 data area, split into allocation groups
//! ```

use bytes::{Buf, BufMut};
use tvfs::{FileAttr, FileType, VfsError, VfsResult};

/// File-system block size (matches the SSD's 4 KiB access granularity).
pub const BLOCK: u64 = 4096;

/// Superblock magic ("XEFS-SIM").
pub const MAGIC: u64 = 0x5845_4653_2d53_494d;

/// Superblock fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Magic, [`MAGIC`].
    pub magic: u64,
    /// Device capacity at format time.
    pub capacity: u64,
    /// Journal region size in blocks.
    pub journal_blocks: u64,
    /// Number of allocation groups.
    pub n_ags: u32,
}

impl Superblock {
    /// Encoded size.
    pub const SIZE: usize = 28;

    /// Encodes the superblock.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::SIZE);
        b.put_u64_le(self.magic);
        b.put_u64_le(self.capacity);
        b.put_u64_le(self.journal_blocks);
        b.put_u32_le(self.n_ags);
        b
    }

    /// Decodes and validates the superblock.
    pub fn decode(mut raw: &[u8]) -> VfsResult<Self> {
        if raw.len() < Self::SIZE {
            return Err(VfsError::Io("short superblock".into()));
        }
        let sb = Superblock {
            magic: raw.get_u64_le(),
            capacity: raw.get_u64_le(),
            journal_blocks: raw.get_u64_le(),
            n_ags: raw.get_u32_le(),
        };
        if sb.magic != MAGIC {
            return Err(VfsError::Io("bad xefs magic".into()));
        }
        Ok(sb)
    }

    /// First data block (after superblock + journal).
    pub fn first_data_block(&self) -> u64 {
        1 + self.journal_blocks
    }

    /// Byte offset of the journal region.
    pub fn journal_off(&self) -> u64 {
        BLOCK
    }

    /// Journal region length in bytes.
    pub fn journal_len(&self) -> u64 {
        self.journal_blocks * BLOCK
    }
}

/// Full serialized state of one inode, as stored in journal records.
///
/// Records are self-contained (newest wins on replay), which keeps recovery
/// trivially idempotent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InodeRecord {
    /// Inode number.
    pub ino: u64,
    /// Tombstone: the inode was deleted.
    pub deleted: bool,
    /// Attributes (ignored when `deleted`).
    pub attr: FileAttr,
    /// Extent map: `(file_page, device_block, len)` runs.
    pub extents: Vec<(u64, u64, u64)>,
    /// Directory entries `(name, child_ino, is_dir)`.
    pub dentries: Vec<(String, u64, bool)>,
}

impl InodeRecord {
    /// A tombstone record.
    pub fn tombstone(ino: u64) -> Self {
        InodeRecord {
            ino,
            deleted: true,
            attr: FileAttr::new(ino, FileType::Regular, 0, 0),
            extents: Vec::new(),
            dentries: Vec::new(),
        }
    }

    /// Encodes into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u64_le(self.ino);
        out.put_u8(self.deleted as u8);
        out.put_u8(self.attr.is_dir() as u8);
        out.put_u32_le(self.attr.mode);
        out.put_u32_le(self.attr.uid);
        out.put_u32_le(self.attr.gid);
        out.put_u64_le(self.attr.size);
        out.put_u64_le(self.attr.blocks_bytes);
        out.put_u64_le(self.attr.atime_ns);
        out.put_u64_le(self.attr.mtime_ns);
        out.put_u64_le(self.attr.ctime_ns);
        out.put_u32_le(self.extents.len() as u32);
        for (fp, db, len) in &self.extents {
            out.put_u64_le(*fp);
            out.put_u64_le(*db);
            out.put_u64_le(*len);
        }
        out.put_u32_le(self.dentries.len() as u32);
        for (name, child, is_dir) in &self.dentries {
            out.put_u16_le(name.len() as u16);
            out.extend_from_slice(name.as_bytes());
            out.put_u64_le(*child);
            out.put_u8(*is_dir as u8);
        }
    }

    /// Decodes one record from the front of `raw`, advancing it.
    pub fn decode_from(raw: &mut &[u8]) -> VfsResult<Self> {
        let short = || VfsError::Io("short inode record".into());
        if raw.len() < 66 {
            return Err(short());
        }
        let ino = raw.get_u64_le();
        let deleted = raw.get_u8() != 0;
        let is_dir = raw.get_u8() != 0;
        let mode = raw.get_u32_le();
        let uid = raw.get_u32_le();
        let gid = raw.get_u32_le();
        let size = raw.get_u64_le();
        let blocks_bytes = raw.get_u64_le();
        let atime_ns = raw.get_u64_le();
        let mtime_ns = raw.get_u64_le();
        let ctime_ns = raw.get_u64_le();
        let n_ext = raw.get_u32_le() as usize;
        if raw.len() < n_ext * 24 {
            return Err(short());
        }
        let mut extents = Vec::with_capacity(n_ext);
        for _ in 0..n_ext {
            extents.push((raw.get_u64_le(), raw.get_u64_le(), raw.get_u64_le()));
        }
        if raw.len() < 4 {
            return Err(short());
        }
        let n_dent = raw.get_u32_le() as usize;
        let mut dentries = Vec::with_capacity(n_dent);
        for _ in 0..n_dent {
            if raw.len() < 2 {
                return Err(short());
            }
            let nlen = raw.get_u16_le() as usize;
            if raw.len() < nlen + 9 {
                return Err(short());
            }
            let name = String::from_utf8(raw[..nlen].to_vec())
                .map_err(|_| VfsError::Io("bad name".into()))?;
            raw.advance(nlen);
            let child = raw.get_u64_le();
            let is_dir = raw.get_u8() != 0;
            dentries.push((name, child, is_dir));
        }
        let kind = if is_dir {
            FileType::Directory
        } else {
            FileType::Regular
        };
        let mut attr = FileAttr::new(ino, kind, mode, 0);
        attr.uid = uid;
        attr.gid = gid;
        attr.size = size;
        attr.blocks_bytes = blocks_bytes;
        attr.atime_ns = atime_ns;
        attr.mtime_ns = mtime_ns;
        attr.ctime_ns = ctime_ns;
        if is_dir {
            attr.nlink = 2;
        }
        Ok(InodeRecord {
            ino,
            deleted,
            attr,
            extents,
            dentries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock {
            magic: MAGIC,
            capacity: 1 << 30,
            journal_blocks: 2048,
            n_ags: 4,
        };
        assert_eq!(Superblock::decode(&sb.encode()).unwrap(), sb);
        assert_eq!(sb.first_data_block(), 2049);
    }

    #[test]
    fn inode_record_roundtrip() {
        let mut attr = FileAttr::new(42, FileType::Directory, 0o750, 7);
        attr.size = 999;
        attr.blocks_bytes = 8192;
        let rec = InodeRecord {
            ino: 42,
            deleted: false,
            attr,
            extents: vec![(0, 100, 4), (10, 200, 2)],
            dentries: vec![("a".into(), 43, false), ("d".into(), 44, true)],
        };
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        let mut slice = buf.as_slice();
        let got = InodeRecord::decode_from(&mut slice).unwrap();
        assert_eq!(got.ino, rec.ino);
        assert_eq!(got.extents, rec.extents);
        assert_eq!(got.dentries, rec.dentries);
        assert_eq!(got.attr.size, 999);
        assert!(got.attr.is_dir());
        assert!(slice.is_empty());
    }

    #[test]
    fn tombstone_roundtrip() {
        let rec = InodeRecord::tombstone(9);
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        let got = InodeRecord::decode_from(&mut buf.as_slice()).unwrap();
        assert!(got.deleted);
        assert_eq!(got.ino, 9);
    }

    #[test]
    fn truncated_record_is_error() {
        let rec = InodeRecord::tombstone(9);
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        buf.truncate(buf.len() - 1);
        assert!(InodeRecord::decode_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn consecutive_records_decode() {
        let mut buf = Vec::new();
        InodeRecord::tombstone(1).encode_into(&mut buf);
        InodeRecord::tombstone(2).encode_into(&mut buf);
        let mut s = buf.as_slice();
        assert_eq!(InodeRecord::decode_from(&mut s).unwrap().ino, 1);
        assert_eq!(InodeRecord::decode_from(&mut s).unwrap().ino, 2);
        assert!(s.is_empty());
    }
}
