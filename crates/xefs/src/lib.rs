//! `xefs` — an XFS-like extent file system for block SSDs.
//!
//! Models the XFS design (Sweeney, USENIX '96) that the paper mounts on its
//! Optane SSD tier. The behaviours that matter to the reproduction:
//!
//! * **Allocation groups.** The data area is split into allocation groups,
//!   each with its own free-extent tree; inodes have an AG affinity so
//!   independent files allocate in parallel regions and large files get
//!   contiguous extents.
//! * **Delayed allocation.** Buffered writes accumulate in the DRAM page
//!   cache; device blocks are allocated only at writeback time, so a file
//!   written in many small appends still lands in a few large extents.
//! * **Metadata-only journaling.** Metadata transactions (inode attributes,
//!   extent maps, directories) are committed to a ring-buffer journal with
//!   sequence numbers and checksums; file data is written in place and is
//!   *not* journaled. Recovery replays the journal from the last
//!   checkpoint; data never fsync'd may be lost, but metadata is always
//!   consistent — the XFS contract.
//! * **Page cache + readahead.** Reads are served from a DRAM page cache
//!   ([`tvfs::PageCache`]) with sequential readahead.

mod extalloc;
mod fs;
mod journal;
mod layout;

pub use extalloc::{AgAllocator, ExtentAllocator};
pub use fs::{XeFs, XeOptions};
pub use layout::BLOCK;
