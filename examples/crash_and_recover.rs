//! Crash consistency across the composed stack (paper §4): power-fail the
//! devices mid-workload, remount every native file system through its own
//! recovery path, then recover Mux from its metafile + reconciliation.
//!
//! ```text
//! cargo run --release --example crash_and_recover
//! ```

use std::sync::Arc;

use e4fs::{E4Fs, E4Options};
use mux::{LruPolicy, Mux, MuxOptions, TierConfig};
use novafs::{NovaFs, NovaOptions};
use simdev::{hdd, nvme_ssd, pmem, Device, DeviceClass, VirtualClock};
use tvfs::{FileSystem, FileType, ROOT_INO};
use workloads::{pattern_at, pattern_check};
use xefs::{XeFs, XeOptions};

fn main() {
    println!("== crash and recover ==\n");
    let clock = VirtualClock::new();
    let pm = Device::with_profile(pmem(), 64 << 20, clock.clone());
    let ssd = Device::with_profile(nvme_ssd(), 256 << 20, clock.clone());
    let hdd_dev = Device::with_profile(hdd(), 1 << 30, clock.clone());

    // --- Phase 1: run a workload, fsync some of it, then "pull the plug".
    {
        let nova = Arc::new(NovaFs::format(pm.clone(), NovaOptions::default()).unwrap());
        let xe = Arc::new(XeFs::format(ssd.clone(), XeOptions::default()).unwrap());
        let e4 = Arc::new(E4Fs::format(hdd_dev.clone(), E4Options::default()).unwrap());
        let mux = Mux::new(
            clock.clone(),
            Arc::new(LruPolicy::default_watermarks()),
            MuxOptions::default(),
        );
        mux.add_tier(
            TierConfig {
                name: "pm".into(),
                class: DeviceClass::Pmem,
            },
            nova as Arc<dyn FileSystem>,
        );
        mux.add_tier(
            TierConfig {
                name: "ssd".into(),
                class: DeviceClass::Ssd,
            },
            xe as Arc<dyn FileSystem>,
        );
        mux.add_tier(
            TierConfig {
                name: "hdd".into(),
                class: DeviceClass::Hdd,
            },
            e4 as Arc<dyn FileSystem>,
        );
        mux.enable_metafile(0).unwrap();

        let d = mux
            .create(ROOT_INO, "durable", FileType::Directory, 0o755)
            .unwrap();
        let safe = mux
            .create(d.ino, "synced.dat", FileType::Regular, 0o644)
            .unwrap();
        mux.write(safe.ino, 0, &pattern_at(0, 256 * 1024)).unwrap();
        // Distribute it: migrate half the blocks to the SSD tier.
        mux.migrate_range(safe.ino, 0, 32, 1).unwrap();
        mux.fsync(safe.ino).unwrap();
        println!("wrote + fsynced /durable/synced.dat (256 KiB across PM+SSD)");

        let risky = mux
            .create(d.ino, "unsynced.dat", FileType::Regular, 0o644)
            .unwrap();
        mux.write(risky.ino, 0, &vec![9u8; 128 * 1024]).unwrap();
        println!("wrote /durable/unsynced.dat (128 KiB) — no fsync");
        println!("\n*** power failure: dropping every unflushed device write ***\n");
    }
    pm.crash();
    ssd.crash();
    hdd_dev.crash();

    // --- Phase 2: remount. Each native file system runs its own recovery
    // (NOVA log scan, xefs journal replay, e4fs JBD2 replay); Mux then
    // loads its metafile and reconciles with what the tiers actually hold.
    let nova = Arc::new(NovaFs::mount(pm.clone(), NovaOptions::default()).unwrap());
    println!("novafs:  mounted, recovered by per-inode log scan");
    let xe = Arc::new(XeFs::mount(ssd.clone(), XeOptions::default()).unwrap());
    println!("xefs:    mounted, journal replayed");
    let e4 = Arc::new(E4Fs::mount(hdd_dev.clone(), E4Options::default()).unwrap());
    println!("e4fs:    mounted, JBD2 recovery done");
    let mux = Mux::recover(
        clock,
        Arc::new(LruPolicy::default_watermarks()),
        MuxOptions::default(),
        vec![
            (
                TierConfig {
                    name: "pm".into(),
                    class: DeviceClass::Pmem,
                },
                nova as Arc<dyn FileSystem>,
            ),
            (
                TierConfig {
                    name: "ssd".into(),
                    class: DeviceClass::Ssd,
                },
                xe as Arc<dyn FileSystem>,
            ),
            (
                TierConfig {
                    name: "hdd".into(),
                    class: DeviceClass::Hdd,
                },
                e4 as Arc<dyn FileSystem>,
            ),
        ],
        0,
    )
    .unwrap();
    println!("mux:     metafile loaded, intents applied, tiers reconciled\n");

    // The fsynced file survived, bytes intact, across both tiers.
    let d = mux.lookup(ROOT_INO, "durable").unwrap();
    let safe = mux.lookup(d.ino, "synced.dat").unwrap();
    let mut buf = vec![0u8; 256 * 1024];
    mux.read(safe.ino, 0, &mut buf).unwrap();
    assert!(pattern_check(0, &buf), "synced data corrupted after crash!");
    println!(
        "/durable/synced.dat: {} bytes, contents verified OK",
        safe.size
    );

    // The unsynced file's fate depends on each tier's guarantees — it may
    // be gone or partial, but the file system composition is consistent.
    match mux.lookup(d.ino, "unsynced.dat") {
        Ok(attr) => println!(
            "/durable/unsynced.dat: survived with {} bytes (tier had persisted it)",
            attr.size
        ),
        Err(_) => println!("/durable/unsynced.dat: lost (never fsynced — allowed)"),
    }
    println!("\ncrash consistency is composed from the participating file systems (§4)");
}
