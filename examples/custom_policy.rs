//! User-defined tiering policies (paper §2.1): a native-Rust policy and a
//! verified register-machine program — the reproduction's stand-in for the
//! paper's eBPF extension point — both driving the same Mux.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use std::sync::Arc;

use mux::policy_vm::CtxField;
use mux::{PlacementCtx, PolicyProgram, TierId, TieringPolicy, VmOp, VmPolicy};
use tvfs::{FileSystem, FileType, ROOT_INO};

/// A native policy: small files (< 64 KiB at placement time) live on PM,
/// everything else on capacity tiers — four lines of logic, exactly the
/// "simple functions" the paper promises policies can be.
struct SmallFilesFast;

impl TieringPolicy for SmallFilesFast {
    fn name(&self) -> &str {
        "small-files-fast"
    }

    fn place(&self, ctx: &PlacementCtx<'_>) -> TierId {
        let mut sorted: Vec<_> = ctx.tiers.iter().collect();
        sorted.sort_by_key(|t| t.class);
        if ctx.file_size + ctx.len < 64 * 1024 {
            sorted.first().map(|t| t.id).unwrap_or(0)
        } else {
            sorted.last().map(|t| t.id).unwrap_or(0)
        }
    }
}

fn main() {
    println!("== custom tiering policies ==\n");
    let (mux, _clock, devices) = mux_repro::default_hierarchy(64 << 20, 256 << 20, 1 << 30);

    // --- 1. Native-Rust policy, swapped in at runtime. ---
    mux.set_policy(Arc::new(SmallFilesFast));
    let small = mux
        .create(ROOT_INO, "config.toml", FileType::Regular, 0o644)
        .unwrap();
    mux.write(small.ino, 0, &vec![1u8; 4096]).unwrap();
    let big = mux
        .create(ROOT_INO, "dataset.bin", FileType::Regular, 0o644)
        .unwrap();
    mux.write(big.ino, 0, &vec![2u8; 1 << 20]).unwrap();
    mux.fsync(small.ino).unwrap();
    mux.fsync(big.ino).unwrap();
    println!("native policy `small-files-fast`:");
    println!(
        "  PM bytes written:  {:>9} (the 4 KiB config)",
        devices[0].stats().snapshot().bytes_written
    );
    println!(
        "  HDD bytes written: {:>9} (the 1 MiB dataset)",
        devices[2].stats().snapshot().bytes_written
    );

    // --- 2. A loadable VM program (the eBPF stand-in). ---
    // Program: if sync-write OR len <= 128 KiB → tier 0 (fastest),
    //          else → tier 2 (slowest of three).
    let program = PolicyProgram::load(vec![
        VmOp::LoadCtx(1, CtxField::IsSync),
        VmOp::MovImm(2, 1),
        VmOp::Jeq(1, 2, 4), // sync → fast
        VmOp::LoadCtx(1, CtxField::Len),
        VmOp::MovImm(2, 128 * 1024),
        VmOp::Jgt(1, 2, 2), // big → slow
        VmOp::MovImm(0, 0), // fast path
        VmOp::Ret,
        VmOp::MovImm(0, 2), // slow path
        VmOp::Ret,
    ])
    .expect("program passes the verifier");
    println!("\nVM policy loaded ({} instructions, verified)", 10);
    mux.set_policy(Arc::new(VmPolicy::new("vm-size-sync", program)));

    let pm_before = devices[0].stats().snapshot().bytes_written;
    let hdd_before = devices[2].stats().snapshot().bytes_written;
    let f = mux
        .create(ROOT_INO, "vm-routed.dat", FileType::Regular, 0o644)
        .unwrap();
    mux.write(f.ino, 0, &vec![3u8; 16 * 1024]).unwrap(); // small → PM
    mux.write(f.ino, 1 << 20, &vec![4u8; 512 * 1024]).unwrap(); // big → HDD
    mux.fsync(f.ino).unwrap();
    println!(
        "  PM grew by  {:>9} bytes (16 KiB piece)",
        devices[0].stats().snapshot().bytes_written - pm_before
    );
    println!(
        "  HDD grew by {:>9} bytes (512 KiB piece)",
        devices[2].stats().snapshot().bytes_written - hdd_before
    );

    // The same file is now distributed across two file systems — read it
    // back through Mux's unified view.
    let mut buf = vec![0u8; 16 * 1024];
    mux.read(f.ino, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 3));
    let mut buf = vec![0u8; 512 * 1024];
    mux.read(f.ino, 1 << 20, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 4));
    println!("\nfile spans two tiers; reads reassemble transparently");

    // --- 3. A broken program is rejected at load time, like eBPF. ---
    let broken = PolicyProgram::load(vec![VmOp::Jmp(100), VmOp::Ret]);
    println!(
        "\nverifier rejects a bad program: {:?}",
        broken.err().unwrap()
    );
}
