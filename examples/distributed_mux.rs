//! Distributed Mux (paper §4): two machines, each running its own Mux over
//! local file systems, interconnected by attaching the remote machine's
//! Mux as a tier of the local one — the "Mux-to-Mux interconnection,
//! e.g., through Remote Procedure Call".
//!
//! ```text
//!   machine A (local)                     machine B (remote)
//!   ┌───────────────────┐   SimLink      ┌───────────────────┐
//!   │ Mux A             │  (RPC wire)    │ Mux B             │
//!   │  ├─ PM  (novafs)  │◄──────────────►│  ├─ SSD (xefs)    │
//!   │  ├─ SSD (xefs)    │                │  └─ HDD (e4fs)    │
//!   │  └─ tier: RemoteFs ── wraps ──────►│                   │
//!   └───────────────────┘                └───────────────────┘
//! ```
//!
//! ```text
//! cargo run --release --example distributed_mux
//! ```

use std::sync::Arc;

use e4fs::{E4Fs, E4Options};
use mux::{LruPolicy, Mux, MuxOptions, TierConfig};
use netfs::{LinkProfile, RemoteFs, SimLink};
use novafs::{NovaFs, NovaOptions};
use simdev::{Device, DeviceClass, VirtualClock};
use tvfs::{FileSystem, FileType, ROOT_INO};
use xefs::{XeFs, XeOptions};

fn main() {
    let clock = VirtualClock::new();

    // ---- Machine B: a Mux over SSD + HDD ("the archive box"). ----
    let b_ssd = Device::with_profile(simdev::nvme_ssd(), 256 << 20, clock.clone());
    let b_hdd = Device::with_profile(simdev::hdd(), 1 << 30, clock.clone());
    let mux_b = Arc::new(Mux::new(
        clock.clone(),
        Arc::new(LruPolicy::default_watermarks()),
        MuxOptions::default(),
    ));
    mux_b.add_tier(
        TierConfig {
            name: "b-ssd".into(),
            class: DeviceClass::Ssd,
        },
        Arc::new(XeFs::format(b_ssd, XeOptions::default()).unwrap()) as Arc<dyn FileSystem>,
    );
    mux_b.add_tier(
        TierConfig {
            name: "b-hdd".into(),
            class: DeviceClass::Hdd,
        },
        Arc::new(E4Fs::format(b_hdd, E4Options::default()).unwrap()) as Arc<dyn FileSystem>,
    );

    // ---- The interconnect: machine B's Mux behind an RPC link. ----
    let link = SimLink::new(LinkProfile::datacenter(), clock.clone());
    let remote_b = Arc::new(RemoteFs::new(
        "machine-b",
        link.clone(),
        Arc::clone(&mux_b) as Arc<dyn FileSystem>,
    ));

    // ---- Machine A: PM + SSD locally, machine B as the capacity tier.
    let a_pm = Device::with_profile(simdev::pmem(), 64 << 20, clock.clone());
    let a_ssd = Device::with_profile(simdev::nvme_ssd(), 256 << 20, clock.clone());
    let mux_a = Arc::new(Mux::new(
        clock.clone(),
        Arc::new(LruPolicy::default_watermarks()),
        MuxOptions::default(),
    ));
    mux_a.add_tier(
        TierConfig {
            name: "a-pm".into(),
            class: DeviceClass::Pmem,
        },
        Arc::new(NovaFs::format(a_pm, NovaOptions::default()).unwrap()) as Arc<dyn FileSystem>,
    );
    mux_a.add_tier(
        TierConfig {
            name: "a-ssd".into(),
            class: DeviceClass::Ssd,
        },
        Arc::new(XeFs::format(a_ssd, XeOptions::default()).unwrap()) as Arc<dyn FileSystem>,
    );
    let remote_tier = mux_a.add_tier(
        TierConfig {
            name: "machine-b".into(),
            class: DeviceClass::Hdd, // remote = the coldest tier
        },
        remote_b as Arc<dyn FileSystem>,
    );

    println!("== distributed Mux ==\n");
    println!("machine A tiers:");
    for t in mux_a.tier_status() {
        println!("  {:>10}  {:?}", t.name, t.class);
    }

    // Write locally, archive remotely — all through one namespace.
    let f = mux_a
        .create(ROOT_INO, "q3-report.dat", FileType::Regular, 0o644)
        .unwrap();
    let payload: Vec<u8> = (0..(1 << 20)).map(|i| (i % 249) as u8).collect();
    mux_a.write(f.ino, 0, &payload).unwrap();
    println!("\nwrote 1 MiB on machine A (PM tier)");

    let t0 = clock.now_ns();
    mux_a.migrate_file(f.ino, remote_tier).unwrap();
    let st = link.stats();
    let (msgs, bytes) = (st.messages(), st.bytes());
    println!(
        "archived to machine B in {:.2} ms (virtual): {} RPC messages, {:.1} MiB on the wire",
        (clock.now_ns() - t0) as f64 / 1e6,
        msgs,
        bytes as f64 / (1 << 20) as f64
    );

    // Machine B's own policy now manages the data within its hierarchy.
    let summary = mux_b.run_policy_migrations();
    println!(
        "machine B ran its own tiering pass: {} plans, {} executed",
        summary.planned, summary.executed
    );

    // Reads flow transparently across the wire.
    let t0 = clock.now_ns();
    let mut buf = vec![0u8; payload.len()];
    mux_a.read(f.ino, 0, &mut buf).unwrap();
    assert_eq!(buf, payload);
    println!(
        "read back across the interconnect in {:.2} ms (virtual) — contents verified",
        (clock.now_ns() - t0) as f64 / 1e6
    );

    // Partitions surface as I/O errors, not corruption.
    link.set_partitioned(true);
    let err = mux_a.read(f.ino, 0, &mut buf).unwrap_err();
    println!("\nduring a partition, reads fail cleanly: {err}");
    link.set_partitioned(false);
    mux_a.read(f.ino, 0, &mut buf).unwrap();
    println!("after healing, reads succeed again");
}
