//! The OCC Synchronizer under fire (paper §2.4): a writer hammers a file
//! while Mux migrates it back and forth between tiers. Compare the
//! optimistic protocol against whole-copy locking.
//!
//! ```text
//! cargo run --release --example migration_under_load
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mux::BLOCK;
use tvfs::{FileSystem, FileType, ROOT_INO};

fn run(lock_based: bool) -> (u64, (u64, u64, u64, u64, u64), u64) {
    let (mux, _clock, _devices) = mux_repro::default_hierarchy(64 << 20, 256 << 20, 1 << 30);
    let file = mux
        .create(ROOT_INO, "contended", FileType::Regular, 0o644)
        .unwrap();
    let blocks = 2048u64;
    mux.write(file.ino, 0, &vec![1u8; (blocks * BLOCK) as usize])
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let writer = {
        let mux = Arc::clone(&mux);
        let stop = Arc::clone(&stop);
        let ops = Arc::clone(&ops);
        let ino = file.ino;
        std::thread::spawn(move || {
            let mut i = 0u64;
            let page = vec![7u8; BLOCK as usize];
            while !stop.load(Ordering::Relaxed) {
                mux.write(ino, (i % blocks) * BLOCK, &page).unwrap();
                ops.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
        })
    };
    // Count writer progress strictly inside the migration windows, so
    // thread-scheduling gaps between rounds don't pollute the comparison.
    let mut during = 0u64;
    for round in 0..8 {
        let to = if round % 2 == 0 { 1 } else { 2 };
        let before = ops.load(Ordering::Relaxed);
        if lock_based {
            mux.migrate_range_lock_based(file.ino, 0, blocks, to)
                .unwrap();
        } else {
            mux.migrate_range(file.ino, 0, blocks, to).unwrap();
        }
        during += ops.load(Ordering::Relaxed) - before;
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    // Integrity: every block readable and recent.
    let mut buf = vec![0u8; (blocks * BLOCK) as usize];
    mux.read(file.ino, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 1 || b == 7), "data corrupted");
    (
        during,
        mux.occ_stats().snapshot(),
        mux.occ_stats().lock_hold_vns(),
    )
}

fn main() {
    println!("== migration under concurrent writes ==\n");
    let (occ_ops, occ, occ_hold) = run(false);
    println!("OCC synchronizer (paper §2.4):");
    println!("  writer ops completed during 8 migrations: {occ_ops}");
    println!(
        "  exclusive-lock time (virtual): {:.1} µs — commits only",
        occ_hold as f64 / 1e3
    );
    println!(
        "  migrations={} conflicts={} retries={} lock-fallbacks={} blocks-moved={}",
        occ.0, occ.1, occ.2, occ.3, occ.4
    );
    let (locked_ops, _, locked_hold) = run(true);
    println!("\nlock-based migration (the traditional scheme):");
    println!("  writer ops completed during 8 migrations: {locked_ops}");
    println!(
        "  exclusive-lock time (virtual): {:.1} µs — the whole copy",
        locked_hold as f64 / 1e3
    );
    println!(
        "\nOCC shrank the user-visible critical path {:.0}x: conflicts were\n\
         detected and only the conflicting blocks were retried, instead of\n\
         blocking every write for the whole copy.",
        locked_hold as f64 / occ_hold.max(1) as f64
    );
}
