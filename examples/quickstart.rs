//! Quickstart: build the paper's three-tier hierarchy, write a file
//! through Mux, watch the tiering happen.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tvfs::{FileSystem, FileType, SetAttr, ROOT_INO};

fn main() {
    // PM 64 MiB, SSD 256 MiB, HDD 1 GiB — NOVA-like / XFS-like /
    // Ext4-like file systems, Mux with the paper's LRU policy on top.
    let (mux, clock, devices) = mux_repro::default_hierarchy(64 << 20, 256 << 20, 1 << 30);

    println!("== Mux quickstart ==\n");
    println!("tiers:");
    for t in mux.tier_status() {
        println!(
            "  {:>10}  class={:?}  {} MiB free of {} MiB",
            t.name,
            t.class,
            t.free_bytes >> 20,
            t.total_bytes >> 20
        );
    }

    // Plain VFS usage: Mux is just a FileSystem.
    let dir = mux
        .create(ROOT_INO, "projects", FileType::Directory, 0o755)
        .unwrap();
    let file = mux
        .create(dir.ino, "report.dat", FileType::Regular, 0o644)
        .unwrap();
    let payload: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
    mux.write(file.ino, 0, &payload).unwrap();
    mux.fsync(file.ino).unwrap();

    let attr = mux.getattr(file.ino).unwrap();
    println!("\nwrote /projects/report.dat: {} bytes", attr.size);
    println!("placement: the LRU policy put it on the fastest tier (PM):");
    println!(
        "  PM device bytes written: {}",
        devices[0].stats().snapshot().bytes_written
    );

    // Migrate the file to the HDD tier through the OCC synchronizer —
    // any pair of tiers works (Figure 3a's extensibility point).
    mux.migrate_file(file.ino, 2).unwrap();
    println!("\nmigrated to HDD tier:");
    println!(
        "  HDD device bytes written: {}",
        devices[2].stats().snapshot().bytes_written
    );

    // Reads reassemble transparently, wherever blocks live.
    let mut buf = vec![0u8; payload.len()];
    mux.read(file.ino, 0, &mut buf).unwrap();
    assert_eq!(buf, payload);
    println!("read back OK after migration");

    // Truncate + sparse write: Mux preserves offsets across tiers.
    mux.setattr(file.ino, &SetAttr::truncate(512)).unwrap();
    mux.write(file.ino, 10 << 20, b"sparse tail").unwrap();
    let (start, _len) = mux.next_data(file.ino, 1 << 20).unwrap().unwrap();
    println!("sparse data found at offset {} (10 MiB, as written)", start);

    println!(
        "\nvirtual time elapsed: {:.3} ms (deterministic)",
        clock.now_ns() as f64 / 1e6
    );
    let s = mux.stats().snapshot();
    println!(
        "mux stats: {} writes, {} reads, {} native dispatches, {} blocks migrated",
        s.writes,
        s.reads,
        s.dispatches,
        mux.occ_stats().snapshot().4
    );
}
