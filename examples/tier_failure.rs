//! Demo: what Mux does when a device starts dying mid-workload.
//!
//! ```text
//! cargo run --release --example tier_failure
//! ```
//!
//! Builds the paper's PM/SSD/HDD hierarchy, injects intermittent faults
//! into the PM device (absorbed by bounded retry), then fail-stops it
//! entirely and shows the circuit breaker fencing the tier while writes
//! redirect to the SSD.

use mux::BLOCK;
use simdev::FaultMode;
use tvfs::{FileSystem, FileType, ROOT_INO};
use workloads::{pattern_at, pattern_check};

fn main() {
    let (mux, _clock, devs) = mux_repro::default_hierarchy(64 << 20, 256 << 20, 1 << 30);
    let f = mux
        .create(ROOT_INO, "data.bin", FileType::Regular, 0o644)
        .unwrap();

    println!("== phase 1: flaky device (intermittent faults, retried) ==");
    devs[0].set_fault_mode(FaultMode::Intermittent {
        period: 24,
        seed: 42,
    });
    for i in 0..16u64 {
        mux.write(f.ino, i * BLOCK, &pattern_at(i, BLOCK as usize))
            .expect("transient faults must not surface");
    }
    let s = mux.stats().snapshot();
    println!(
        "  16 writes ok; device errors seen: {}, retries: {}, tier state: {:?}",
        s.io_errors,
        s.io_retries,
        mux.tier_health(0).state
    );

    println!("== phase 2: device dies (fail-stop, breaker fences tier) ==");
    devs[0].set_fault_mode(FaultMode::FailStop { remaining_ops: 0 });
    let payload = pattern_at(99, BLOCK as usize);
    let mut failures = 0;
    while mux.write(f.ino, 0, &payload).is_err() {
        failures += 1;
    }
    println!("  write succeeded after {failures} failed attempt(s) — redirected off PM");
    for t in mux.tier_status() {
        println!(
            "  tier {} ({:<8}) health={:<8} writable={}",
            t.id,
            t.name,
            t.health.label(),
            t.is_writable()
        );
    }
    let mut buf = vec![0u8; BLOCK as usize];
    mux.read(f.ino, 0, &mut buf).unwrap();
    assert!(pattern_check(99, &buf));
    let s = mux.stats().snapshot();
    println!(
        "  redirected writes: {}, block 0 now on tier {:?}, readback ok",
        s.redirected_writes,
        mux.file_placement(f.ino).unwrap().first().map(|e| e.2)
    );
}
