//! A log-structured key-value store running on Mux — the kind of
//! application the paper's introduction motivates: hot keys end up served
//! from persistent memory, the cold bulk sinks to disk, and the
//! application never thinks about tiers.
//!
//! The store appends values to segment files and keeps an in-memory index
//! `key → (segment, offset, len)`. Mux's LRU policy + migration passes do
//! the data placement.
//!
//! ```text
//! cargo run --release --example tiered_kv_store
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use mux::Mux;
use tvfs::{FileSystem, FileType, ROOT_INO};
use workloads::Zipfian;

struct KvStore {
    fs: Arc<Mux>,
    index: HashMap<u64, (u64, u64, u32)>, // key → (segment ino, off, len)
    segment: u64,
    segment_off: u64,
    segment_no: u32,
    dir: u64,
}

const SEGMENT_BYTES: u64 = 4 << 20;

impl KvStore {
    fn open(fs: Arc<Mux>) -> Self {
        let dir = fs
            .create(ROOT_INO, "kv", FileType::Directory, 0o755)
            .unwrap();
        let seg = fs
            .create(dir.ino, "segment-0000", FileType::Regular, 0o644)
            .unwrap();
        KvStore {
            fs,
            index: HashMap::new(),
            segment: seg.ino,
            segment_off: 0,
            segment_no: 0,
            dir: dir.ino,
        }
    }

    fn put(&mut self, key: u64, value: &[u8]) {
        if self.segment_off + value.len() as u64 > SEGMENT_BYTES {
            self.fs.fsync(self.segment).unwrap();
            self.segment_no += 1;
            let seg = self
                .fs
                .create(
                    self.dir,
                    &format!("segment-{:04}", self.segment_no),
                    FileType::Regular,
                    0o644,
                )
                .unwrap();
            self.segment = seg.ino;
            self.segment_off = 0;
        }
        self.fs
            .write(self.segment, self.segment_off, value)
            .unwrap();
        self.index
            .insert(key, (self.segment, self.segment_off, value.len() as u32));
        self.segment_off += value.len() as u64;
    }

    fn get(&self, key: u64) -> Option<Vec<u8>> {
        let &(seg, off, len) = self.index.get(&key)?;
        let mut buf = vec![0u8; len as usize];
        let n = self.fs.read(seg, off, &mut buf).unwrap();
        buf.truncate(n);
        Some(buf)
    }
}

fn main() {
    let (fs, clock, devices) = mux_repro::default_hierarchy(
        16 << 20,  // deliberately small PM: tiering pressure
        128 << 20, // SSD
        1 << 30,   // HDD
    );
    let mut kv = KvStore::open(Arc::clone(&fs));

    println!("== tiered key-value store on Mux ==\n");
    // Load 4096 keys of 4 KiB each = 16 MiB of values: more than PM holds.
    let n_keys = 4096u64;
    for key in 0..n_keys {
        let value = vec![(key % 251) as u8; 4096];
        kv.put(key, &value);
    }
    println!("loaded {n_keys} keys ({} MiB)", (n_keys * 4096) >> 20);

    // Skewed reads: a few keys are hot.
    let mut zipf = Zipfian::new(n_keys, 0.99, 7);
    for _ in 0..20_000 {
        let key = zipf.next_item();
        let v = kv.get(key).unwrap();
        assert_eq!(v[0], (key % 251) as u8);
    }
    // Let the policy rebalance: hot segments promote, cold demote.
    let summary = fs.run_policy_migrations();
    println!(
        "policy migration pass: {} plans, {} executed, {} blocks moved",
        summary.planned, summary.executed, summary.blocks_moved
    );

    // Measure hot-key read latency after convergence.
    let t0 = clock.now_ns();
    let probes = 5_000;
    for _ in 0..probes {
        let key = zipf.next_item();
        kv.get(key).unwrap();
    }
    let avg_ns = (clock.now_ns() - t0) / probes;
    println!("avg read latency after rebalancing: {avg_ns} ns (virtual)");

    for (i, name) in ["PM", "SSD", "HDD"].iter().enumerate() {
        let s = devices[i].stats().snapshot();
        println!(
            "{name}: {} MiB written, {} MiB read",
            s.bytes_written >> 20,
            s.bytes_read >> 20
        );
    }
    let occ = fs.occ_stats().snapshot();
    println!(
        "migrations: {} runs, {} blocks moved, {} conflicts, {} lock fallbacks",
        occ.0, occ.4, occ.1, occ.3
    );
}
