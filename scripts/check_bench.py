#!/usr/bin/env python3
"""CI regression gate over the thread-scaling sweep.

Usage: check_bench.py <current scaling.json> <baseline.json>

Fails (exit 1) if:
  * single-thread throughput for any (config, mix) present in the
    baseline regressed by more than REGRESSION_TOLERANCE, or
  * the read-heavy mix no longer reaches MIN_SPEEDUP_8T aggregate
    speedup at 8 threads, or
  * any cell reports verify failures.

Throughput is virtual-time (deterministic), so the gate is safe on
shared CI runners: a failure means the code got slower, not the machine.
"""

import json
import sys

REGRESSION_TOLERANCE = 0.15  # fail if >15% below baseline
MIN_SPEEDUP_8T = 3.0  # acceptance floor for read-heavy @ 8 threads


def key(cell):
    return (cell["config"], cell["mix"], cell["threads"])


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        current = {key(c): c for c in json.load(f)}
    with open(sys.argv[2]) as f:
        baseline = {key(c): c for c in json.load(f)}

    failures = []

    for k, base in sorted(baseline.items()):
        if k[2] != 1:
            continue  # the gate pins single-thread cost; scaling below
        cur = current.get(k)
        if cur is None:
            failures.append(f"{k}: missing from current results")
            continue
        floor = base["throughput_mib_s"] * (1.0 - REGRESSION_TOLERANCE)
        if cur["throughput_mib_s"] < floor:
            failures.append(
                f"{k}: {cur['throughput_mib_s']:.1f} MiB/s < "
                f"{floor:.1f} (baseline {base['throughput_mib_s']:.1f} "
                f"- {REGRESSION_TOLERANCE:.0%})"
            )
        else:
            print(
                f"ok {k}: {cur['throughput_mib_s']:.1f} MiB/s "
                f"(baseline {base['throughput_mib_s']:.1f})"
            )

    for k, cur in sorted(current.items()):
        if cur.get("verify_failures", 0):
            failures.append(f"{k}: {cur['verify_failures']} verify failures")

    for (config, mix, threads), cur in sorted(current.items()):
        if mix == "read-heavy" and threads == 8:
            if cur["speedup_vs_1t"] < MIN_SPEEDUP_8T:
                failures.append(
                    f"({config}, {mix}, 8t): speedup "
                    f"{cur['speedup_vs_1t']:.2f}x < {MIN_SPEEDUP_8T}x"
                )
            else:
                print(
                    f"ok ({config}, {mix}, 8t): "
                    f"{cur['speedup_vs_1t']:.2f}x speedup"
                )

    if failures:
        print("\nBENCH GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
