#!/usr/bin/env python3
"""CI regression gates over deterministic bench results.

Usage:
  check_bench.py <current scaling.json> <baseline.json>
  check_bench.py --crash <current crash_matrix.json> <baseline crash_matrix.json>
  check_bench.py --autotier <current autotier.json> <baseline autotier.json>
  check_bench.py --integrity <current integrity.json> <baseline integrity.json>
  check_bench.py --read-overhead <current read_overhead.json> <baseline read_overhead.json>

Scaling mode fails (exit 1) if:
  * single-thread throughput for any (config, mix) present in the
    baseline regressed by more than REGRESSION_TOLERANCE, or
  * the read-heavy mix no longer reaches MIN_SPEEDUP_8T aggregate
    speedup at 8 threads, or
  * any cell reports verify failures.

Crash mode fails (exit 1) if:
  * any crash point present and recovered in the baseline now fails
    (a "recovered" -> "violated"/"panic" regression), or
  * the current matrix has any failure at all (the suite's contract is
    zero violations and zero panics), or
  * coverage shrank below MIN_CRASH_POINTS enumerated points.

Autotier mode fails (exit 1) if:
  * the hot set did not converge onto the fast tiers
    (>= AUTOTIER_MIN_CONVERGENCE of hot-set blocks off HDD), or
  * steady-state read p50 with the daemon on is not better than the
    daemon-off run of the same workload, or
  * foreground throughput with the daemon on fell below
    AUTOTIER_MIN_FG_RATIO of the daemon-off run, or
  * convergence or the foreground ratio regressed by more than
    REGRESSION_TOLERANCE against the committed baseline.

Integrity mode fails (exit 1) if:
  * either bit-rot storm detected less than 100% of rotten blocks, or
  * the replicated storm repaired less than 100% of what it detected, or
  * any corrupt byte reached a caller in either storm, or
  * the unreplicated storm left any undetected block unquarantined, or
  * the scrubber's foreground read-p95 tax exceeds SCRUB_P95_BUDGET
    (or regressed by more than REGRESSION_TOLERANCE vs the baseline), or
  * the paced scrubber completed no full pass during the overhead run.

Read-overhead mode fails (exit 1) if:
  * Mux read overhead over native exceeds READ_OVERHEAD_BUDGET_PCT on
    the PM or SSD tier (the fast-path acceptance target), or
  * overhead on any tier regressed by more than
    READ_OVERHEAD_SLACK_PCT percentage points against the committed
    baseline (catches the HDD tier, which has no percentage budget).

All numbers are virtual-time (deterministic), so the gates are safe on
shared CI runners: a failure means the code got worse, not the machine.
"""

import json
import sys

REGRESSION_TOLERANCE = 0.15  # fail if >15% below baseline
MIN_SPEEDUP_8T = 3.0  # acceptance floor for read-heavy @ 8 threads
MIN_CRASH_POINTS = 500  # acceptance floor for crash-matrix coverage
AUTOTIER_MIN_CONVERGENCE = 0.9  # hot-set blocks that must leave the HDD
AUTOTIER_MIN_FG_RATIO = 0.8  # daemon-on / daemon-off foreground floor
SCRUB_P95_BUDGET = 1.25  # scrub-on / scrub-off foreground read p95 ceiling
READ_OVERHEAD_BUDGET_PCT = 10.0  # Mux-over-native ceiling on PM and SSD reads
READ_OVERHEAD_SLACK_PCT = 2.0  # percentage points of drift allowed vs baseline


def crash_gate(current_path, baseline_path):
    with open(current_path) as f:
        current = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = []

    def failed_points(matrix):
        out = {}
        for sc in matrix["scenarios"]:
            k = (sc["scenario"], sc["mode"])
            out[k] = {p["k"]: p for p in sc["failures"]}
        return out

    base_failed = failed_points(baseline)
    cur_failed = failed_points(current)

    # Regressions: a point the baseline recovered must keep recovering.
    for key, fails in sorted(cur_failed.items()):
        base = base_failed.get(key, {})
        for k, p in sorted(fails.items()):
            if k not in base:
                failures.append(
                    f"{key[0]}[{key[1]}] k={k}: recovered -> "
                    f"{p['kind']} ({p['detail']})"
                )

    # Contract: the committed matrix is all-green; any failure is a bug.
    if current["violated"] or current["panicked"]:
        failures.append(
            f"matrix not clean: {current['violated']} violated, "
            f"{current['panicked']} panicked"
        )

    if current["total_points"] < MIN_CRASH_POINTS:
        failures.append(
            f"coverage shrank: {current['total_points']} points "
            f"< {MIN_CRASH_POINTS}"
        )
    else:
        print(
            f"ok coverage: {current['total_points']} points, "
            f"{current['recovered']} recovered"
        )

    if failures:
        print("\nCRASH GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("crash gate passed")
    return 0


def autotier_gate(current_path, baseline_path):
    with open(current_path) as f:
        cur = json.load(f)
    with open(baseline_path) as f:
        base = json.load(f)

    failures = []
    on, off = cur["daemon_on"], cur["daemon_off"]

    if on["convergence"] < AUTOTIER_MIN_CONVERGENCE:
        failures.append(
            f"hot set did not converge: {on['convergence']:.2%} "
            f"< {AUTOTIER_MIN_CONVERGENCE:.0%} of blocks off HDD"
        )
    else:
        print(f"ok convergence: {on['convergence']:.2%} of hot blocks off HDD")

    if on["read_p50_ns"] >= off["read_p50_ns"]:
        failures.append(
            f"daemon-on read p50 ({on['read_p50_ns']} ns) not better "
            f"than daemon-off ({off['read_p50_ns']} ns)"
        )
    else:
        print(
            f"ok read p50: {on['read_p50_ns']} ns on vs "
            f"{off['read_p50_ns']} ns off"
        )

    if cur["fg_ratio"] < AUTOTIER_MIN_FG_RATIO:
        failures.append(
            f"foreground throughput ratio {cur['fg_ratio']:.2f} "
            f"< {AUTOTIER_MIN_FG_RATIO}"
        )
    else:
        print(f"ok foreground ratio on/off: {cur['fg_ratio']:.2f}")

    # Regressions against the committed baseline.
    base_conv = base["daemon_on"]["convergence"]
    if on["convergence"] < base_conv * (1.0 - REGRESSION_TOLERANCE):
        failures.append(
            f"convergence regressed: {on['convergence']:.2%} vs "
            f"baseline {base_conv:.2%}"
        )
    if cur["fg_ratio"] < base["fg_ratio"] * (1.0 - REGRESSION_TOLERANCE):
        failures.append(
            f"foreground ratio regressed: {cur['fg_ratio']:.2f} vs "
            f"baseline {base['fg_ratio']:.2f}"
        )

    if failures:
        print("\nAUTOTIER GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("autotier gate passed")
    return 0


def integrity_gate(current_path, baseline_path):
    with open(current_path) as f:
        cur = json.load(f)
    with open(baseline_path) as f:
        base = json.load(f)

    failures = []

    for name in ("replicated", "unreplicated"):
        st = cur[name]
        if st["detection_rate"] < 1.0:
            failures.append(
                f"{name}: detected {st['detected']} of {st['blocks']} "
                f"rotten blocks ({st['detection_rate']:.2%})"
            )
        else:
            print(f"ok {name}: 100% of {st['blocks']} rotten blocks detected")
        if st["corrupt_bytes_served"]:
            failures.append(
                f"{name}: {st['corrupt_bytes_served']} corrupt bytes "
                f"reached a caller"
            )
        else:
            print(f"ok {name}: zero corrupt bytes served")

    rep = cur["replicated"]
    if rep["repair_rate"] < 1.0 or rep["quarantined"]:
        failures.append(
            f"replicated: repaired {rep['repaired']} of {rep['detected']} "
            f"detections, {rep['quarantined']} quarantined (want 100%, 0)"
        )
    else:
        print(f"ok replicated: all {rep['repaired']} detections repaired")

    unrep = cur["unreplicated"]
    if unrep["quarantined"] != unrep["blocks"]:
        failures.append(
            f"unreplicated: {unrep['quarantined']} of {unrep['blocks']} "
            f"blocks quarantined (every unrepairable block must be)"
        )
    else:
        print(f"ok unreplicated: all {unrep['quarantined']} blocks quarantined")

    ratio = cur["scrub_p95_ratio"]
    if ratio > SCRUB_P95_BUDGET:
        failures.append(
            f"scrub foreground tax: p95 ratio {ratio:.3f} > "
            f"{SCRUB_P95_BUDGET} budget"
        )
    elif ratio > base["scrub_p95_ratio"] * (1.0 + REGRESSION_TOLERANCE):
        failures.append(
            f"scrub foreground tax regressed: p95 ratio {ratio:.3f} vs "
            f"baseline {base['scrub_p95_ratio']:.3f}"
        )
    else:
        print(f"ok scrub tax: fg read p95 ratio {ratio:.3f} (budget {SCRUB_P95_BUDGET})")

    if cur["scrub_passes"] < 1:
        failures.append("paced scrubber completed no full pass")
    else:
        print(
            f"ok scrubber: {cur['scrub_passes']} passes, "
            f"{cur['scrub_blocks_verified']} blocks verified"
        )

    if failures:
        print("\nINTEGRITY GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("integrity gate passed")
    return 0


def read_overhead_gate(current_path, baseline_path):
    with open(current_path) as f:
        cur = {r["tier"]: r for r in json.load(f)}
    with open(baseline_path) as f:
        base = {r["tier"]: r for r in json.load(f)}

    failures = []

    # Absolute budget: the fast path must hold PM and SSD under 10%.
    for tier in ("PM (novafs)", "SSD (xefs)"):
        r = cur.get(tier)
        if r is None:
            failures.append(f"{tier}: missing from current results")
            continue
        if r["overhead_pct"] > READ_OVERHEAD_BUDGET_PCT:
            failures.append(
                f"{tier}: Mux overhead {r['overhead_pct']:.1f}% > "
                f"{READ_OVERHEAD_BUDGET_PCT}% budget "
                f"(native {r['native_ns']:.0f} ns, mux {r['mux_ns']:.0f} ns, "
                f"fast-path hit {r.get('fastpath_hit_pct', 0.0):.1f}%)"
            )
        else:
            print(
                f"ok {tier}: overhead {r['overhead_pct']:.1f}% "
                f"(budget {READ_OVERHEAD_BUDGET_PCT}%, fast-path hit "
                f"{r.get('fastpath_hit_pct', 0.0):.1f}%)"
            )

    # Drift against the committed baseline, all tiers (covers the HDD,
    # which has no absolute budget).
    for tier, b in sorted(base.items()):
        r = cur.get(tier)
        if r is None:
            failures.append(f"{tier}: missing from current results")
            continue
        ceiling = b["overhead_pct"] + READ_OVERHEAD_SLACK_PCT
        if r["overhead_pct"] > ceiling:
            failures.append(
                f"{tier}: overhead regressed to {r['overhead_pct']:.1f}% "
                f"(baseline {b['overhead_pct']:.1f}% + "
                f"{READ_OVERHEAD_SLACK_PCT} pp slack)"
            )
        else:
            print(
                f"ok {tier}: overhead {r['overhead_pct']:.1f}% vs "
                f"baseline {b['overhead_pct']:.1f}%"
            )

    if failures:
        print("\nREAD-OVERHEAD GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("read-overhead gate passed")
    return 0


def key(cell):
    return (cell["config"], cell["mix"], cell["threads"])


def main():
    if len(sys.argv) == 4 and sys.argv[1] == "--crash":
        return crash_gate(sys.argv[2], sys.argv[3])
    if len(sys.argv) == 4 and sys.argv[1] == "--autotier":
        return autotier_gate(sys.argv[2], sys.argv[3])
    if len(sys.argv) == 4 and sys.argv[1] == "--integrity":
        return integrity_gate(sys.argv[2], sys.argv[3])
    if len(sys.argv) == 4 and sys.argv[1] == "--read-overhead":
        return read_overhead_gate(sys.argv[2], sys.argv[3])
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        current = {key(c): c for c in json.load(f)}
    with open(sys.argv[2]) as f:
        baseline = {key(c): c for c in json.load(f)}

    failures = []

    for k, base in sorted(baseline.items()):
        if k[2] != 1:
            continue  # the gate pins single-thread cost; scaling below
        cur = current.get(k)
        if cur is None:
            failures.append(f"{k}: missing from current results")
            continue
        floor = base["throughput_mib_s"] * (1.0 - REGRESSION_TOLERANCE)
        if cur["throughput_mib_s"] < floor:
            failures.append(
                f"{k}: {cur['throughput_mib_s']:.1f} MiB/s < "
                f"{floor:.1f} (baseline {base['throughput_mib_s']:.1f} "
                f"- {REGRESSION_TOLERANCE:.0%})"
            )
        else:
            print(
                f"ok {k}: {cur['throughput_mib_s']:.1f} MiB/s "
                f"(baseline {base['throughput_mib_s']:.1f})"
            )

    for k, cur in sorted(current.items()):
        if cur.get("verify_failures", 0):
            failures.append(f"{k}: {cur['verify_failures']} verify failures")

    for (config, mix, threads), cur in sorted(current.items()):
        if mix == "read-heavy" and threads == 8:
            if cur["speedup_vs_1t"] < MIN_SPEEDUP_8T:
                failures.append(
                    f"({config}, {mix}, 8t): speedup "
                    f"{cur['speedup_vs_1t']:.2f}x < {MIN_SPEEDUP_8T}x"
                )
            else:
                print(
                    f"ok ({config}, {mix}, 8t): "
                    f"{cur['speedup_vs_1t']:.2f}x speedup"
                )

    if failures:
        print("\nBENCH GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
