#!/usr/bin/env python3
"""CI regression gates over deterministic bench results.

Usage:
  check_bench.py <current scaling.json> <baseline.json>
  check_bench.py --crash <current crash_matrix.json> <baseline crash_matrix.json>
  check_bench.py --autotier <current autotier.json> <baseline autotier.json>
  check_bench.py --integrity <current integrity.json> <baseline integrity.json>
  check_bench.py --read-overhead <current read_overhead.json> <baseline read_overhead.json>
  check_bench.py --mirror <current mirror.json> <baseline mirror.json>
  check_bench.py --qos <current qos.json> <baseline qos.json>
  check_bench.py --cluster <current cluster.json> <baseline cluster.json>
  check_bench.py --all [baseline-ref]

`--all` runs every gate in one process against freshly regenerated
results under bench_results/, taking each baseline from the committed
copy at `baseline-ref` (default HEAD) via `git show`, and prints a
per-gate summary table. Any missing result or baseline file is a hard
failure — a gate that cannot read its inputs must never pass silently.

Scaling mode fails (exit 1) if:
  * single-thread throughput for any (config, mix) present in the
    baseline regressed by more than REGRESSION_TOLERANCE, or
  * the read-heavy mix no longer reaches MIN_SPEEDUP_8T aggregate
    speedup at 8 threads, or
  * any cell reports verify failures.

Crash mode fails (exit 1) if:
  * any crash point present and recovered in the baseline now fails
    (a "recovered" -> "violated"/"panic" regression), or
  * the current matrix has any failure at all (the suite's contract is
    zero violations and zero panics), or
  * coverage shrank below MIN_CRASH_POINTS enumerated points.

Autotier mode fails (exit 1) if:
  * the hot set did not converge onto the fast tiers
    (>= AUTOTIER_MIN_CONVERGENCE of hot-set blocks off HDD), or
  * steady-state read p50 with the daemon on is not better than the
    daemon-off run of the same workload, or
  * foreground throughput with the daemon on fell below
    AUTOTIER_MIN_FG_RATIO of the daemon-off run, or
  * convergence or the foreground ratio regressed by more than
    REGRESSION_TOLERANCE against the committed baseline.

Integrity mode fails (exit 1) if:
  * either bit-rot storm detected less than 100% of rotten blocks, or
  * the replicated storm repaired less than 100% of what it detected, or
  * any corrupt byte reached a caller in either storm, or
  * the unreplicated storm left any undetected block unquarantined, or
  * the scrubber's foreground read-p95 tax exceeds SCRUB_P95_BUDGET
    (or regressed by more than REGRESSION_TOLERANCE vs the baseline), or
  * the paced scrubber completed no full pass during the overhead run.

Read-overhead mode fails (exit 1) if:
  * Mux read overhead over native exceeds READ_OVERHEAD_BUDGET_PCT on
    the PM or SSD tier (the fast-path acceptance target), or
  * overhead on any tier regressed by more than
    READ_OVERHEAD_SLACK_PCT percentage points against the committed
    baseline (catches the HDD tier, which has no percentage budget).

Mirror mode fails (exit 1) if:
  * the mirrored arm created no replicas on the fast tier, or
  * mirrored read p99 is not under MIRROR_MAX_P99_RATIO of the
    single-copy arm's p99, or
  * fenced-PM goodput with mirrors is not at least
    MIRROR_MIN_DEGRADED_RATIO times the single-copy arm's, or
  * either ratio regressed by more than REGRESSION_TOLERANCE against
    the committed baseline.

QoS mode fails (exit 1) if:
  * the QoS arm's victim read p99 exceeds QOS_MAX_BLOWUP times the
    antagonist-free baseline arm (isolation must hold), or
  * the unfenced arm's blowup is below QOS_MIN_UNFENCED_BLOWUP (the
    antagonist must demonstrably starve an unfenced victim, or the
    experiment is not exercising anything), or
  * the QoS arm did not promote >= QOS_MIN_VICTIM_PM of the victim's
    blocks onto PM, or the unfenced arm promoted more than
    QOS_MAX_UNFENCED_VICTIM_PM of them (placement must corroborate the
    latency story), or
  * plan-time fair-share fencing never engaged in the QoS arm
    (qos_plan_exclusions == 0), or
  * either blowup regressed by more than REGRESSION_TOLERANCE against
    the committed baseline.

Cluster mode fails (exit 1) if:
  * aggregate throughput at 4 nodes is below CLUSTER_MIN_SCALING_4N of
    ideal linear scaling from the 1-node row, or
  * any scaling row reports pattern-verification failures, or
  * the partition/heal chaos arm lost any acked byte, left migration
    debris after heal, or failed a structural check, or
  * the chaos arm never exercised the machinery (no failed ops while
    dark, no breaker fast-fails, or no migration abort), or
  * 4-node efficiency or 1-node throughput regressed by more than
    REGRESSION_TOLERANCE against the committed baseline.

All numbers are virtual-time (deterministic), so the gates are safe on
shared CI runners: a failure means the code got worse, not the machine.
"""

import json
import os
import subprocess
import sys
import tempfile

REGRESSION_TOLERANCE = 0.15  # fail if >15% below baseline
MIN_SPEEDUP_8T = 3.0  # acceptance floor for read-heavy @ 8 threads
MIN_CRASH_POINTS = 500  # acceptance floor for crash-matrix coverage
AUTOTIER_MIN_CONVERGENCE = 0.9  # hot-set blocks that must leave the HDD
AUTOTIER_MIN_FG_RATIO = 0.8  # daemon-on / daemon-off foreground floor
SCRUB_P95_BUDGET = 1.25  # scrub-on / scrub-off foreground read p95 ceiling
READ_OVERHEAD_BUDGET_PCT = 10.0  # Mux-over-native ceiling on PM and SSD reads
READ_OVERHEAD_SLACK_PCT = 2.0  # percentage points of drift allowed vs baseline
MIRROR_MAX_P99_RATIO = 0.9  # mirrored read p99 must beat single-copy by >=10%
MIRROR_MIN_DEGRADED_RATIO = 1.2  # fenced-PM goodput must beat single-copy by >=20%
QOS_MAX_BLOWUP = 2.0  # victim p99 with QoS on, relative to antagonist-free
QOS_MIN_UNFENCED_BLOWUP = 3.0  # unfenced starvation must be material
QOS_MIN_VICTIM_PM = 0.9  # QoS arm: victim blocks that must reach PM
QOS_MAX_UNFENCED_VICTIM_PM = 0.1  # unfenced arm: victim blocks allowed on PM
CLUSTER_MIN_SCALING_4N = 0.8  # 4-node aggregate throughput vs ideal linear


class GateInputError(Exception):
    """A gate's input file is missing or unreadable — always a hard failure."""


def load_json(path):
    """Loads a result file; an absent file is a hard failure, never a skip.

    (An earlier version of this script let a missing bench_results file
    slide through as exit 0, which silently disabled the gate.)
    """
    if not os.path.exists(path):
        raise GateInputError(
            f"MISSING RESULT FILE: {path} — regenerate it with "
            f"`cargo run --release -p bench --bin repro` (or restore the "
            f"committed baseline); a gate without inputs must not pass"
        )
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise GateInputError(f"UNREADABLE RESULT FILE: {path}: {e}") from e


def git_baseline(name, ref):
    """Extracts `bench_results/<name>.json` at `ref` into a temp file."""
    res = subprocess.run(
        ["git", "show", f"{ref}:bench_results/{name}.json"],
        capture_output=True,
        text=True,
    )
    if res.returncode != 0:
        raise GateInputError(
            f"MISSING BASELINE: bench_results/{name}.json not found at "
            f"{ref} ({res.stderr.strip()}); commit a baseline before "
            f"gating against it"
        )
    fd, path = tempfile.mkstemp(prefix=f"{name}_baseline_", suffix=".json")
    with os.fdopen(fd, "w") as f:
        f.write(res.stdout)
    return path


def crash_gate(current_path, baseline_path):
    current = load_json(current_path)
    baseline = load_json(baseline_path)

    failures = []

    def failed_points(matrix):
        out = {}
        for sc in matrix["scenarios"]:
            k = (sc["scenario"], sc["mode"])
            out[k] = {p["k"]: p for p in sc["failures"]}
        return out

    base_failed = failed_points(baseline)
    cur_failed = failed_points(current)

    # Regressions: a point the baseline recovered must keep recovering.
    for key_, fails in sorted(cur_failed.items()):
        base = base_failed.get(key_, {})
        for k, p in sorted(fails.items()):
            if k not in base:
                failures.append(
                    f"{key_[0]}[{key_[1]}] k={k}: recovered -> "
                    f"{p['kind']} ({p['detail']})"
                )

    # Contract: the committed matrix is all-green; any failure is a bug.
    if current["violated"] or current["panicked"]:
        failures.append(
            f"matrix not clean: {current['violated']} violated, "
            f"{current['panicked']} panicked"
        )

    if current["total_points"] < MIN_CRASH_POINTS:
        failures.append(
            f"coverage shrank: {current['total_points']} points "
            f"< {MIN_CRASH_POINTS}"
        )
    else:
        print(
            f"ok coverage: {current['total_points']} points, "
            f"{current['recovered']} recovered"
        )

    if failures:
        print("\nCRASH GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("crash gate passed")
    return 0


def autotier_gate(current_path, baseline_path):
    cur = load_json(current_path)
    base = load_json(baseline_path)

    failures = []
    on, off = cur["daemon_on"], cur["daemon_off"]

    if on["convergence"] < AUTOTIER_MIN_CONVERGENCE:
        failures.append(
            f"hot set did not converge: {on['convergence']:.2%} "
            f"< {AUTOTIER_MIN_CONVERGENCE:.0%} of blocks off HDD"
        )
    else:
        print(f"ok convergence: {on['convergence']:.2%} of hot blocks off HDD")

    if on["read_p50_ns"] >= off["read_p50_ns"]:
        failures.append(
            f"daemon-on read p50 ({on['read_p50_ns']} ns) not better "
            f"than daemon-off ({off['read_p50_ns']} ns)"
        )
    else:
        print(
            f"ok read p50: {on['read_p50_ns']} ns on vs "
            f"{off['read_p50_ns']} ns off"
        )

    if cur["fg_ratio"] < AUTOTIER_MIN_FG_RATIO:
        failures.append(
            f"foreground throughput ratio {cur['fg_ratio']:.2f} "
            f"< {AUTOTIER_MIN_FG_RATIO}"
        )
    else:
        print(f"ok foreground ratio on/off: {cur['fg_ratio']:.2f}")

    # Regressions against the committed baseline.
    base_conv = base["daemon_on"]["convergence"]
    if on["convergence"] < base_conv * (1.0 - REGRESSION_TOLERANCE):
        failures.append(
            f"convergence regressed: {on['convergence']:.2%} vs "
            f"baseline {base_conv:.2%}"
        )
    if cur["fg_ratio"] < base["fg_ratio"] * (1.0 - REGRESSION_TOLERANCE):
        failures.append(
            f"foreground ratio regressed: {cur['fg_ratio']:.2f} vs "
            f"baseline {base['fg_ratio']:.2f}"
        )

    if failures:
        print("\nAUTOTIER GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("autotier gate passed")
    return 0


def integrity_gate(current_path, baseline_path):
    cur = load_json(current_path)
    base = load_json(baseline_path)

    failures = []

    for name in ("replicated", "unreplicated"):
        st = cur[name]
        if st["detection_rate"] < 1.0:
            failures.append(
                f"{name}: detected {st['detected']} of {st['blocks']} "
                f"rotten blocks ({st['detection_rate']:.2%})"
            )
        else:
            print(f"ok {name}: 100% of {st['blocks']} rotten blocks detected")
        if st["corrupt_bytes_served"]:
            failures.append(
                f"{name}: {st['corrupt_bytes_served']} corrupt bytes "
                f"reached a caller"
            )
        else:
            print(f"ok {name}: zero corrupt bytes served")

    rep = cur["replicated"]
    if rep["repair_rate"] < 1.0 or rep["quarantined"]:
        failures.append(
            f"replicated: repaired {rep['repaired']} of {rep['detected']} "
            f"detections, {rep['quarantined']} quarantined (want 100%, 0)"
        )
    else:
        print(f"ok replicated: all {rep['repaired']} detections repaired")

    unrep = cur["unreplicated"]
    if unrep["quarantined"] != unrep["blocks"]:
        failures.append(
            f"unreplicated: {unrep['quarantined']} of {unrep['blocks']} "
            f"blocks quarantined (every unrepairable block must be)"
        )
    else:
        print(f"ok unreplicated: all {unrep['quarantined']} blocks quarantined")

    ratio = cur["scrub_p95_ratio"]
    if ratio > SCRUB_P95_BUDGET:
        failures.append(
            f"scrub foreground tax: p95 ratio {ratio:.3f} > "
            f"{SCRUB_P95_BUDGET} budget"
        )
    elif ratio > base["scrub_p95_ratio"] * (1.0 + REGRESSION_TOLERANCE):
        failures.append(
            f"scrub foreground tax regressed: p95 ratio {ratio:.3f} vs "
            f"baseline {base['scrub_p95_ratio']:.3f}"
        )
    else:
        print(f"ok scrub tax: fg read p95 ratio {ratio:.3f} (budget {SCRUB_P95_BUDGET})")

    if cur["scrub_passes"] < 1:
        failures.append("paced scrubber completed no full pass")
    else:
        print(
            f"ok scrubber: {cur['scrub_passes']} passes, "
            f"{cur['scrub_blocks_verified']} blocks verified"
        )

    if failures:
        print("\nINTEGRITY GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("integrity gate passed")
    return 0


def read_overhead_gate(current_path, baseline_path):
    cur = {r["tier"]: r for r in load_json(current_path)}
    base = {r["tier"]: r for r in load_json(baseline_path)}

    failures = []

    # Absolute budget: the fast path must hold PM and SSD under 10%.
    for tier in ("PM (novafs)", "SSD (xefs)"):
        r = cur.get(tier)
        if r is None:
            failures.append(f"{tier}: missing from current results")
            continue
        if r["overhead_pct"] > READ_OVERHEAD_BUDGET_PCT:
            failures.append(
                f"{tier}: Mux overhead {r['overhead_pct']:.1f}% > "
                f"{READ_OVERHEAD_BUDGET_PCT}% budget "
                f"(native {r['native_ns']:.0f} ns, mux {r['mux_ns']:.0f} ns, "
                f"fast-path hit {r.get('fastpath_hit_pct', 0.0):.1f}%)"
            )
        else:
            print(
                f"ok {tier}: overhead {r['overhead_pct']:.1f}% "
                f"(budget {READ_OVERHEAD_BUDGET_PCT}%, fast-path hit "
                f"{r.get('fastpath_hit_pct', 0.0):.1f}%)"
            )

    # Drift against the committed baseline, all tiers (covers the HDD,
    # which has no absolute budget).
    for tier, b in sorted(base.items()):
        r = cur.get(tier)
        if r is None:
            failures.append(f"{tier}: missing from current results")
            continue
        ceiling = b["overhead_pct"] + READ_OVERHEAD_SLACK_PCT
        if r["overhead_pct"] > ceiling:
            failures.append(
                f"{tier}: overhead regressed to {r['overhead_pct']:.1f}% "
                f"(baseline {b['overhead_pct']:.1f}% + "
                f"{READ_OVERHEAD_SLACK_PCT} pp slack)"
            )
        else:
            print(
                f"ok {tier}: overhead {r['overhead_pct']:.1f}% vs "
                f"baseline {b['overhead_pct']:.1f}%"
            )

    if failures:
        print("\nREAD-OVERHEAD GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("read-overhead gate passed")
    return 0


def mirror_gate(current_path, baseline_path):
    cur = load_json(current_path)
    base = load_json(baseline_path)

    failures = []
    on = cur["mirrored"]

    if not on["mirrors_created"] or not on["pm_replica_blocks"]:
        failures.append(
            f"no replica placement: {on['mirrors_created']} mirrors "
            f"created, {on['pm_replica_blocks']} replica blocks on PM"
        )
    else:
        print(
            f"ok placement: {on['pm_replica_blocks']} replica blocks on PM "
            f"({on['mirrors_created']} created, "
            f"{on['mirror_reads_fast']} reads served from replicas)"
        )

    # Absolute margins: mirrors must clearly beat single-copy placement,
    # healthy and fenced.
    if cur["p99_ratio"] > MIRROR_MAX_P99_RATIO:
        failures.append(
            f"read p99 ratio mirrored/single-copy {cur['p99_ratio']:.2f} > "
            f"{MIRROR_MAX_P99_RATIO} ceiling "
            f"({on['read_p99_ns']} ns vs {cur['baseline']['read_p99_ns']} ns)"
        )
    else:
        print(
            f"ok read p99: {on['read_p99_ns']} ns mirrored vs "
            f"{cur['baseline']['read_p99_ns']} ns single-copy "
            f"(ratio {cur['p99_ratio']:.2f}, ceiling {MIRROR_MAX_P99_RATIO})"
        )

    if cur["degraded_ratio"] < MIRROR_MIN_DEGRADED_RATIO:
        failures.append(
            f"fenced-PM goodput ratio mirrored/single-copy "
            f"{cur['degraded_ratio']:.2f} < {MIRROR_MIN_DEGRADED_RATIO} floor "
            f"({on['degraded_reads_ok']} ok reads vs "
            f"{cur['baseline']['degraded_reads_ok']})"
        )
    else:
        print(
            f"ok fenced-PM goodput: {on['degraded_mbps']:.1f} MB/s mirrored "
            f"vs {cur['baseline']['degraded_mbps']:.1f} MB/s single-copy "
            f"(ratio {cur['degraded_ratio']:.2f}, "
            f"floor {MIRROR_MIN_DEGRADED_RATIO})"
        )

    # Regressions against the committed baseline run.
    if cur["p99_ratio"] > base["p99_ratio"] * (1.0 + REGRESSION_TOLERANCE):
        failures.append(
            f"read p99 ratio regressed: {cur['p99_ratio']:.2f} vs "
            f"baseline {base['p99_ratio']:.2f}"
        )
    if cur["degraded_ratio"] < base["degraded_ratio"] * (1.0 - REGRESSION_TOLERANCE):
        failures.append(
            f"fenced-PM goodput ratio regressed: {cur['degraded_ratio']:.2f} "
            f"vs baseline {base['degraded_ratio']:.2f}"
        )

    if failures:
        print("\nMIRROR GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("mirror gate passed")
    return 0


def qos_gate(current_path, baseline_path):
    cur = load_json(current_path)
    base = load_json(baseline_path)

    failures = []
    qos, unfenced = cur["qos"], cur["unfenced"]

    if cur["qos_blowup"] > QOS_MAX_BLOWUP:
        failures.append(
            f"victim not isolated: QoS-arm p99 blowup {cur['qos_blowup']:.2f}x "
            f"> {QOS_MAX_BLOWUP}x budget ({qos['victim_read_p99_ns']} ns vs "
            f"{cur['alone']['victim_read_p99_ns']} ns alone)"
        )
    else:
        print(
            f"ok isolation: QoS-arm victim p99 {qos['victim_read_p99_ns']} ns, "
            f"{cur['qos_blowup']:.2f}x alone (budget {QOS_MAX_BLOWUP}x)"
        )

    if cur["unfenced_blowup"] < QOS_MIN_UNFENCED_BLOWUP:
        failures.append(
            f"antagonist not antagonizing: unfenced blowup "
            f"{cur['unfenced_blowup']:.2f}x < {QOS_MIN_UNFENCED_BLOWUP}x — "
            f"the experiment no longer demonstrates starvation"
        )
    else:
        print(
            f"ok contrast: unfenced victim p99 blowup "
            f"{cur['unfenced_blowup']:.2f}x (floor {QOS_MIN_UNFENCED_BLOWUP}x)"
        )

    # Placement census must corroborate the latency story.
    if qos["victim_pm_blocks"] < QOS_MIN_VICTIM_PM * qos["victim_blocks"]:
        failures.append(
            f"QoS arm: only {qos['victim_pm_blocks']} of "
            f"{qos['victim_blocks']} victim blocks on PM "
            f"(want >= {QOS_MIN_VICTIM_PM:.0%})"
        )
    else:
        print(
            f"ok placement: {qos['victim_pm_blocks']}/{qos['victim_blocks']} "
            f"victim blocks on PM with QoS"
        )
    if unfenced["victim_pm_blocks"] > QOS_MAX_UNFENCED_VICTIM_PM * unfenced["victim_blocks"]:
        failures.append(
            f"unfenced arm: {unfenced['victim_pm_blocks']} of "
            f"{unfenced['victim_blocks']} victim blocks reached PM "
            f"(want <= {QOS_MAX_UNFENCED_VICTIM_PM:.0%} — the antagonist "
            f"should be hogging it)"
        )
    else:
        print(
            f"ok starvation census: {unfenced['victim_pm_blocks']}/"
            f"{unfenced['victim_blocks']} victim blocks on PM unfenced"
        )

    if not qos["qos_plan_exclusions"]:
        failures.append(
            "plan-time fencing never engaged: qos_plan_exclusions == 0 "
            "in the QoS arm"
        )
    else:
        print(
            f"ok fencing: {qos['qos_plan_exclusions']} plan exclusions, "
            f"{qos['qos_deferrals']} deferrals, {qos['qos_sheds']} sheds"
        )

    # Regressions against the committed baseline run.
    if cur["qos_blowup"] > base["qos_blowup"] * (1.0 + REGRESSION_TOLERANCE):
        failures.append(
            f"QoS blowup regressed: {cur['qos_blowup']:.2f}x vs "
            f"baseline {base['qos_blowup']:.2f}x"
        )
    if cur["unfenced_blowup"] < base["unfenced_blowup"] * (1.0 - REGRESSION_TOLERANCE):
        failures.append(
            f"unfenced contrast shrank: {cur['unfenced_blowup']:.2f}x vs "
            f"baseline {base['unfenced_blowup']:.2f}x"
        )

    if failures:
        print("\nQOS GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("qos gate passed")
    return 0


def cluster_gate(current_path, baseline_path):
    cur = load_json(current_path)
    base = load_json(baseline_path)

    failures = []

    if cur["scaling_4n"] < CLUSTER_MIN_SCALING_4N:
        failures.append(
            f"4-node scaling {cur['scaling_4n']:.2f} < "
            f"{CLUSTER_MIN_SCALING_4N} of ideal linear"
        )
    else:
        print(
            f"ok scaling: {cur['scaling_4n']:.2f} of ideal linear at 4 nodes "
            f"(floor {CLUSTER_MIN_SCALING_4N})"
        )

    for row in cur["rows"]:
        if row.get("verify_failures", 0):
            failures.append(
                f"{row['nodes']}-node row: {row['verify_failures']} "
                f"pattern-verification failures"
            )

    chaos = cur["chaos"]
    if chaos["lost_bytes"]:
        failures.append(
            f"chaos arm LOST ACKED DATA: {chaos['lost_bytes']} of "
            f"{chaos['acked_bytes']} acked bytes unreadable after heal"
        )
    else:
        print(
            f"ok chaos oracle: {chaos['acked_bytes']} acked bytes, "
            f"0 lost through partition+heal"
        )
    if chaos["debris_after_heal"]:
        failures.append(
            f"chaos arm left {chaos['debris_after_heal']} migration "
            f"staging/intent orphans after heal"
        )
    if chaos["structural_violations"]:
        failures.append(
            f"chaos arm: {chaos['structural_violations']} nodes failed "
            f"the structural check after heal"
        )
    if chaos["creates_rerouted"] != chaos["creates_during_partition"]:
        failures.append(
            f"placement sent {chaos['creates_during_partition'] - chaos['creates_rerouted']} "
            f"creates to the dark node"
        )

    # The arm must demonstrably exercise the machinery, or the oracle is
    # vacuous: ops must fail while a node is dark, the breaker must fast-
    # fail, and the mid-partition migration must abort.
    for field, label in [
        ("ops_failed", "no ops failed while a node was dark"),
        ("breaker_fast_fails", "peer breaker never fast-failed"),
        ("migration_aborts", "mid-partition migration never aborted"),
    ]:
        if not chaos[field]:
            failures.append(f"chaos arm vacuous: {label}")
    if not failures:
        print(
            f"ok chaos coverage: {chaos['ops_failed']} dark-op failures, "
            f"{chaos['breaker_fast_fails']} fast-fails, "
            f"{chaos['migration_aborts']} migration aborts, "
            f"{chaos['creates_rerouted']}/{chaos['creates_during_partition']} "
            f"creates rerouted"
        )

    # Regressions against the committed baseline run.
    floor = base["scaling_4n"] * (1.0 - REGRESSION_TOLERANCE)
    if cur["scaling_4n"] < floor:
        failures.append(
            f"4-node scaling regressed: {cur['scaling_4n']:.2f} vs "
            f"baseline {base['scaling_4n']:.2f}"
        )
    cur_1n = next((r for r in cur["rows"] if r["nodes"] == 1), None)
    base_1n = next((r for r in base["rows"] if r["nodes"] == 1), None)
    if cur_1n is None:
        failures.append("no 1-node row in current results")
    elif base_1n is not None:
        floor = base_1n["agg_mib_s"] * (1.0 - REGRESSION_TOLERANCE)
        if cur_1n["agg_mib_s"] < floor:
            failures.append(
                f"1-node throughput regressed: {cur_1n['agg_mib_s']:.1f} "
                f"MiB/s vs baseline {base_1n['agg_mib_s']:.1f}"
            )
        else:
            print(
                f"ok 1-node throughput: {cur_1n['agg_mib_s']:.1f} MiB/s "
                f"(baseline {base_1n['agg_mib_s']:.1f})"
            )

    if failures:
        print("\nCLUSTER GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("cluster gate passed")
    return 0


def key(cell):
    return (cell["config"], cell["mix"], cell["threads"])


def scaling_gate(current_path, baseline_path):
    current = {key(c): c for c in load_json(current_path)}
    baseline = {key(c): c for c in load_json(baseline_path)}

    failures = []

    for k, base in sorted(baseline.items()):
        if k[2] != 1:
            continue  # the gate pins single-thread cost; scaling below
        cur = current.get(k)
        if cur is None:
            failures.append(f"{k}: missing from current results")
            continue
        floor = base["throughput_mib_s"] * (1.0 - REGRESSION_TOLERANCE)
        if cur["throughput_mib_s"] < floor:
            failures.append(
                f"{k}: {cur['throughput_mib_s']:.1f} MiB/s < "
                f"{floor:.1f} (baseline {base['throughput_mib_s']:.1f} "
                f"- {REGRESSION_TOLERANCE:.0%})"
            )
        else:
            print(
                f"ok {k}: {cur['throughput_mib_s']:.1f} MiB/s "
                f"(baseline {base['throughput_mib_s']:.1f})"
            )

    for k, cur in sorted(current.items()):
        if cur.get("verify_failures", 0):
            failures.append(f"{k}: {cur['verify_failures']} verify failures")

    for (config, mix, threads), cur in sorted(current.items()):
        if mix == "read-heavy" and threads == 8:
            if cur["speedup_vs_1t"] < MIN_SPEEDUP_8T:
                failures.append(
                    f"({config}, {mix}, 8t): speedup "
                    f"{cur['speedup_vs_1t']:.2f}x < {MIN_SPEEDUP_8T}x"
                )
            else:
                print(
                    f"ok ({config}, {mix}, 8t): "
                    f"{cur['speedup_vs_1t']:.2f}x speedup"
                )

    if failures:
        print("\nBENCH GATE FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("\nbench gate passed")
    return 0


# (gate name, gate function, current result file, committed baseline name)
ALL_GATES = [
    ("scaling", scaling_gate, "bench_results/scaling.json", "baseline"),
    ("crash", crash_gate, "bench_results/crash_matrix.json", "crash_matrix"),
    ("autotier", autotier_gate, "bench_results/autotier.json", "autotier"),
    ("integrity", integrity_gate, "bench_results/integrity.json", "integrity"),
    (
        "read-overhead",
        read_overhead_gate,
        "bench_results/read_overhead.json",
        "read_overhead",
    ),
    ("mirror", mirror_gate, "bench_results/mirror.json", "mirror"),
    ("qos", qos_gate, "bench_results/qos.json", "qos"),
    ("cluster", cluster_gate, "bench_results/cluster.json", "cluster"),
]


def all_gates(ref):
    """Runs every gate, printing a per-gate summary table at the end.

    A gate whose inputs are missing is reported as FAIL (missing input)
    and the run keeps going, so one summary covers the whole suite.
    """
    outcomes = []
    for name, fn, cur_path, base_name in ALL_GATES:
        print(f"\n=== {name} gate ===")
        try:
            rc = fn(cur_path, git_baseline(base_name, ref))
            outcomes.append((name, "PASS" if rc == 0 else "FAIL"))
        except GateInputError as e:
            print(e)
            outcomes.append((name, "FAIL (missing input)"))

    width = max(len(n) for n, _ in outcomes)
    print("\n=== gate summary ===")
    print(f"  {'gate':<{width}}  result")
    print(f"  {'-' * width}  ------")
    for name, outcome in outcomes:
        print(f"  {name:<{width}}  {outcome}")

    failed = [n for n, o in outcomes if o != "PASS"]
    if failed:
        print(f"\n{len(failed)} of {len(outcomes)} gates failed: " + ", ".join(failed))
        return 1
    print(f"\nall {len(outcomes)} gates passed")
    return 0


MODES = {
    "--crash": crash_gate,
    "--autotier": autotier_gate,
    "--integrity": integrity_gate,
    "--read-overhead": read_overhead_gate,
    "--mirror": mirror_gate,
    "--qos": qos_gate,
    "--cluster": cluster_gate,
}


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--all":
        ref = sys.argv[2] if len(sys.argv) == 3 else "HEAD"
        return all_gates(ref)
    try:
        if len(sys.argv) == 4 and sys.argv[1] in MODES:
            return MODES[sys.argv[1]](sys.argv[2], sys.argv[3])
        if len(sys.argv) == 3:
            return scaling_gate(sys.argv[1], sys.argv[2])
    except GateInputError as e:
        print(e)
        return 2
    print(__doc__)
    return 2


if __name__ == "__main__":
    sys.exit(main())
