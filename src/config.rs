//! Declarative hierarchy configuration (paper §4, "Configuring Mux").
//!
//! "As the Mux design can easily integrate many existing file systems, an
//! emerging problem is how to find the best configuration of file systems
//! for a given workload or a given set of storage devices." Step zero of
//! that problem is making configurations *first-class values*: this module
//! defines a serde-serializable [`HierarchySpec`] and a [`build`] function
//! that turns one into a running stack — so configurations can be stored,
//! swept, compared and searched programmatically.
//!
//! ```
//! let spec: mux_repro::config::HierarchySpec = serde_json::from_str(r#"{
//!     "tiers": [
//!         {"name": "pm",  "device": {"profile": "pmem", "capacity_mib": 64},  "fs": "nova"},
//!         {"name": "ssd", "device": {"profile": "nvme_ssd", "capacity_mib": 256}, "fs": "xefs"},
//!         {"name": "hdd", "device": {"profile": "hdd", "capacity_mib": 1024}, "fs": "e4fs"}
//!     ],
//!     "policy": {"kind": "lru", "low_watermark": 0.7, "high_watermark": 0.9},
//!     "metafile_tier": 0
//! }"#).unwrap();
//! let built = mux_repro::config::build(&spec).unwrap();
//! assert_eq!(built.mux.tier_status().len(), 3);
//! ```

use std::sync::Arc;

use mux::{
    HotColdPolicy, LruPolicy, Mux, MuxOptions, PinnedPolicy, StripingPolicy, TieringPolicy,
    TpfsPolicy,
};
use serde::{Deserialize, Serialize};
use simdev::{Device, DeviceClass, DeviceProfile, VirtualClock};
use tvfs::{FileSystem, VfsError, VfsResult};

/// A named device profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ProfileSpec {
    /// Optane PMem 200-like persistent memory.
    Pmem,
    /// Optane SSD P4800X-like NVMe.
    NvmeSsd,
    /// Exos X18-like rotational disk.
    Hdd,
    /// CXL-attached flash.
    CxlSsd,
}

impl ProfileSpec {
    fn profile(self) -> DeviceProfile {
        match self {
            ProfileSpec::Pmem => simdev::pmem(),
            ProfileSpec::NvmeSsd => simdev::nvme_ssd(),
            ProfileSpec::Hdd => simdev::hdd(),
            ProfileSpec::CxlSsd => simdev::cxl_ssd(),
        }
    }
}

/// Device description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Which performance profile.
    pub profile: ProfileSpec,
    /// Capacity in MiB.
    pub capacity_mib: u64,
}

/// Which native file system runs on the tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FsSpec {
    /// NOVA-like log-structured PM file system.
    Nova,
    /// XFS-like extent file system.
    Xefs,
    /// Ext4-like journaling file system.
    E4fs,
}

/// One tier of the hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TierSpec {
    /// Tier name (reports, policies).
    pub name: String,
    /// The device under it.
    pub device: DeviceSpec,
    /// The native file system on it.
    pub fs: FsSpec,
    /// Native timestamp granularity in ns (§4 feature imparity);
    /// omitted = nanosecond precision.
    #[serde(default)]
    pub timestamp_granularity_ns: Option<u64>,
}

/// Tiering policy selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PolicySpec {
    /// The paper's LRU policy.
    Lru {
        /// Demote-until utilization.
        low_watermark: f64,
        /// Demote-above utilization.
        high_watermark: f64,
    },
    /// TPFS-style size/synchronicity placement.
    Tpfs,
    /// Frequency-based hot/cold classification.
    HotCold,
    /// Everything pinned to one tier.
    Pinned {
        /// Destination tier index.
        tier: u32,
    },
    /// Round-robin striping.
    Striping {
        /// Stripe unit in 4 KiB blocks.
        stripe_blocks: u64,
    },
}

impl PolicySpec {
    fn policy(&self) -> Arc<dyn TieringPolicy> {
        match *self {
            PolicySpec::Lru {
                low_watermark,
                high_watermark,
            } => Arc::new(LruPolicy::new(low_watermark, high_watermark)),
            PolicySpec::Tpfs => Arc::new(TpfsPolicy::default()),
            PolicySpec::HotCold => Arc::new(HotColdPolicy::new()),
            PolicySpec::Pinned { tier } => Arc::new(PinnedPolicy::new(tier)),
            PolicySpec::Striping { stripe_blocks } => Arc::new(StripingPolicy::new(stripe_blocks)),
        }
    }
}

/// A complete hierarchy description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HierarchySpec {
    /// Tiers, fastest first by convention.
    pub tiers: Vec<TierSpec>,
    /// The tiering policy.
    pub policy: PolicySpec,
    /// Tier index holding the durable Mux metafile (omit to disable).
    #[serde(default)]
    pub metafile_tier: Option<u32>,
}

/// A built hierarchy.
pub struct Built {
    /// The Mux instance.
    pub mux: Arc<Mux>,
    /// The shared clock.
    pub clock: VirtualClock,
    /// One device per tier, in spec order.
    pub devices: Vec<Device>,
}

/// Builds the stack a [`HierarchySpec`] describes.
pub fn build(spec: &HierarchySpec) -> VfsResult<Built> {
    if spec.tiers.is_empty() {
        return Err(VfsError::InvalidArgument("no tiers in spec".into()));
    }
    let clock = VirtualClock::new();
    let mux = Arc::new(Mux::new(
        clock.clone(),
        spec.policy.policy(),
        MuxOptions::default(),
    ));
    let mut devices = Vec::new();
    for t in &spec.tiers {
        let profile = t.device.profile.profile();
        let class: DeviceClass = profile.class;
        let dev = Device::with_profile(profile, t.device.capacity_mib << 20, clock.clone());
        let fs: Arc<dyn FileSystem> = match t.fs {
            FsSpec::Nova => Arc::new(novafs::NovaFs::format(
                dev.clone(),
                novafs::NovaOptions::default(),
            )?),
            FsSpec::Xefs => Arc::new(xefs::XeFs::format(dev.clone(), xefs::XeOptions::default())?),
            FsSpec::E4fs => Arc::new(e4fs::E4Fs::format(dev.clone(), e4fs::E4Options::default())?),
        };
        let id = mux.add_tier(
            mux::TierConfig {
                name: t.name.clone(),
                class,
            },
            fs,
        );
        if let Some(g) = t.timestamp_granularity_ns {
            mux.set_tier_timestamp_granularity(id, g)?;
        }
        devices.push(dev);
    }
    if let Some(mt) = spec.metafile_tier {
        mux.enable_metafile(mt)?;
    }
    Ok(Built {
        mux,
        clock,
        devices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvfs::{FileType, ROOT_INO};

    fn three_tier_json() -> &'static str {
        r#"{
            "tiers": [
                {"name": "pm",  "device": {"profile": "pmem", "capacity_mib": 64},  "fs": "nova"},
                {"name": "ssd", "device": {"profile": "nvme_ssd", "capacity_mib": 128}, "fs": "xefs"},
                {"name": "hdd", "device": {"profile": "hdd", "capacity_mib": 256}, "fs": "e4fs",
                 "timestamp_granularity_ns": 2000000000}
            ],
            "policy": {"kind": "lru", "low_watermark": 0.7, "high_watermark": 0.9},
            "metafile_tier": 0
        }"#
    }

    #[test]
    fn json_spec_builds_a_working_stack() {
        let spec: HierarchySpec = serde_json::from_str(three_tier_json()).unwrap();
        let built = build(&spec).unwrap();
        assert_eq!(built.mux.tier_status().len(), 3);
        let f = built
            .mux
            .create(ROOT_INO, "x", FileType::Regular, 0o644)
            .unwrap();
        built.mux.write(f.ino, 0, b"configured").unwrap();
        built.mux.fsync(f.ino).unwrap();
        let mut buf = [0u8; 10];
        built.mux.read(f.ino, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"configured");
        assert!(built.clock.now_ns() > 0);
    }

    #[test]
    fn spec_roundtrips_through_serde() {
        let spec: HierarchySpec = serde_json::from_str(three_tier_json()).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let again: HierarchySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(again.tiers.len(), 3);
        assert_eq!(again.tiers[2].timestamp_granularity_ns, Some(2_000_000_000));
        assert!(matches!(again.policy, PolicySpec::Lru { .. }));
    }

    #[test]
    fn all_policies_construct() {
        for p in [
            r#"{"kind": "tpfs"}"#,
            r#"{"kind": "hot_cold"}"#,
            r#"{"kind": "pinned", "tier": 1}"#,
            r#"{"kind": "striping", "stripe_blocks": 4}"#,
        ] {
            let policy: PolicySpec = serde_json::from_str(p).unwrap();
            let spec = HierarchySpec {
                tiers: vec![
                    TierSpec {
                        name: "a".into(),
                        device: DeviceSpec {
                            profile: ProfileSpec::Pmem,
                            capacity_mib: 32,
                        },
                        fs: FsSpec::Nova,
                        timestamp_granularity_ns: None,
                    },
                    TierSpec {
                        name: "b".into(),
                        device: DeviceSpec {
                            profile: ProfileSpec::NvmeSsd,
                            capacity_mib: 64,
                        },
                        fs: FsSpec::Xefs,
                        timestamp_granularity_ns: None,
                    },
                ],
                policy,
                metafile_tier: None,
            };
            let built = build(&spec).unwrap();
            let f = built
                .mux
                .create(ROOT_INO, "f", FileType::Regular, 0o644)
                .unwrap();
            built.mux.write(f.ino, 0, &[1u8; 4096]).unwrap();
        }
    }

    #[test]
    fn empty_spec_rejected() {
        let spec = HierarchySpec {
            tiers: vec![],
            policy: PolicySpec::Tpfs,
            metafile_tier: None,
        };
        assert!(build(&spec).is_err());
    }
}
