//! `mux-repro` — a from-scratch Rust reproduction of *"Rethinking Tiered
//! Storage: Talk to File Systems, Not Device Drivers"* (HotOS '25).
//!
//! This umbrella crate re-exports the workspace so examples and downstream
//! users have one dependency:
//!
//! * [`mux`] — the paper's contribution: the Mux tiered file system
//!   (Block Lookup Table, metadata affinity, OCC migration, SCM cache,
//!   policy runner).
//! * [`tvfs`] — the VFS boundary both Mux and the native file systems
//!   implement.
//! * [`novafs`] / [`xefs`] / [`e4fs`] — device-specific native file
//!   systems for PM / SSD / HDD.
//! * [`strata`] — the monolithic tiered-file-system baseline.
//! * [`simdev`] — simulated devices with deterministic virtual-time
//!   accounting.
//! * [`workloads`] — deterministic workload generators.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for paper-vs-measured results. Run the paper's
//! tables and figures with `cargo run --release -p bench --bin repro`.

pub mod config;

pub use e4fs;
pub use mux;
pub use novafs;
pub use simdev;
pub use strata;
pub use tvfs;
pub use workloads;
pub use xefs;

use std::sync::Arc;

use mux::cache::DaxWindow;
use mux::{CacheConfig, CacheController, LruPolicy, Mux, MuxOptions, TierConfig};
use simdev::{Device, DeviceClass, VirtualClock};
use tvfs::{FileSystem, FileType, ROOT_INO};

/// Builds the paper's reference hierarchy in one call: PM + SSD + HDD
/// devices, NOVA-like / XFS-like / Ext4-like file systems, and a Mux with
/// the paper's LRU policy — the fastest way to a working tiered file
/// system.
///
/// Returns `(mux, clock, [pm, ssd, hdd])`. Tier ids: 0 = PM, 1 = SSD,
/// 2 = HDD.
///
/// # Examples
///
/// ```
/// use tvfs::{FileSystem, FileType, ROOT_INO};
/// let (mux, _clock, _devs) = mux_repro::default_hierarchy(64 << 20, 256 << 20, 1 << 30);
/// let f = mux.create(ROOT_INO, "hello", FileType::Regular, 0o644).unwrap();
/// mux.write(f.ino, 0, b"tiered!").unwrap();
/// let mut buf = [0u8; 7];
/// mux.read(f.ino, 0, &mut buf).unwrap();
/// assert_eq!(&buf, b"tiered!");
/// ```
pub fn default_hierarchy(
    pm_bytes: u64,
    ssd_bytes: u64,
    hdd_bytes: u64,
) -> (Arc<Mux>, VirtualClock, [Device; 3]) {
    let clock = VirtualClock::new();
    let pm = Device::with_profile(simdev::pmem(), pm_bytes, clock.clone());
    let ssd = Device::with_profile(simdev::nvme_ssd(), ssd_bytes, clock.clone());
    let hdd = Device::with_profile(simdev::hdd(), hdd_bytes, clock.clone());
    let nova =
        Arc::new(novafs::NovaFs::format(pm.clone(), novafs::NovaOptions::default()).unwrap());
    let xe = Arc::new(xefs::XeFs::format(ssd.clone(), xefs::XeOptions::default()).unwrap());
    let e4 = Arc::new(e4fs::E4Fs::format(hdd.clone(), e4fs::E4Options::default()).unwrap());
    let m = Arc::new(Mux::new(
        clock.clone(),
        Arc::new(LruPolicy::default_watermarks()),
        MuxOptions::default(),
    ));
    m.add_tier(
        TierConfig {
            name: "pm-nova".into(),
            class: DeviceClass::Pmem,
        },
        nova as Arc<dyn FileSystem>,
    );
    m.add_tier(
        TierConfig {
            name: "ssd-xefs".into(),
            class: DeviceClass::Ssd,
        },
        xe as Arc<dyn FileSystem>,
    );
    m.add_tier(
        TierConfig {
            name: "hdd-e4fs".into(),
            class: DeviceClass::Hdd,
        },
        e4 as Arc<dyn FileSystem>,
    );
    (m, clock, [pm, ssd, hdd])
}

/// Builds the paper's §2.5 SCM cache: one preallocated cache file on the
/// PM file system, DAX-mapped through its device extents, managed by the
/// MGLRU cache controller. Attach the result with [`Mux::attach_cache`].
///
/// "Mux can create one file for all caches, which helps reduce the
/// overhead of managing multiple files as well as disk fragmentation.
/// Alternatively, Mux can preallocate the cache file to ensure cache
/// availability and reduce block allocation overhead."
pub fn scm_cache_on_nova(
    nova: &novafs::NovaFs,
    capacity_bytes: u64,
    config: CacheConfig,
) -> tvfs::VfsResult<Arc<CacheController>> {
    // Create + preallocate the cache file (zero-fill forces allocation).
    let attr = match nova.lookup(ROOT_INO, ".mux-cache") {
        Ok(a) => a,
        Err(tvfs::VfsError::NotFound) => {
            nova.create(ROOT_INO, ".mux-cache", FileType::Regular, 0o600)?
        }
        Err(e) => return Err(e),
    };
    let chunk = 4u64 << 20;
    let zeros = vec![0u8; chunk as usize];
    let mut off = attr.size;
    while off < capacity_bytes {
        let n = chunk.min(capacity_bytes - off);
        nova.write(attr.ino, off, &zeros[..n as usize])?;
        off += n;
    }
    // DAX-map the file: raw device extents, no per-access FS calls.
    let extents = nova.file_device_extents(attr.ino)?;
    let window = DaxWindow::new(nova.device().clone(), extents);
    Ok(Arc::new(CacheController::new(Box::new(window), config)))
}
