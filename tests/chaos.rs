//! Chaos tests over the full stack: inject device faults into the real
//! PM/SSD/HDD hierarchy mid-workload and assert the fault-tolerance
//! machinery holds its invariants — no lost or corrupted data on healthy
//! tiers, clean migration aborts, circuit-breaker fencing, and redirected
//! writes.
//!
//! The PM tier (novafs) is DAX write-through — every read and write is a
//! device op — so faulting the PM device exercises the breaker densely.
//! (xefs/e4fs buffer in a DRAM page cache, which itself absorbs faults.)

use std::sync::Arc;

use mux::{TierHealthState, BLOCK};
use simdev::FaultMode;
use tvfs::{FileSystem, FileType, ROOT_INO};
use workloads::{pattern_at, pattern_check};

fn hierarchy() -> (Arc<mux::Mux>, simdev::VirtualClock, [simdev::Device; 3]) {
    mux_repro::default_hierarchy(64 << 20, 256 << 20, 1 << 30)
}

/// The ISSUE acceptance scenario: kill a device mid-migration, watch the
/// abort stay clean, keep failing the tier until the breaker latches
/// Offline, and verify writes land on healthy tiers while `tier_status()`
/// reports the degradation.
#[test]
fn failstop_mid_migration_aborts_cleanly_and_tier_is_fenced() {
    let (mux, _clock, devs) = hierarchy();
    // `safe.dat` lives on the SSD; `stranded.dat` stays on PM.
    let f = mux
        .create(ROOT_INO, "safe.dat", FileType::Regular, 0o644)
        .unwrap();
    let len = (32 * BLOCK) as usize;
    mux.write(f.ino, 0, &pattern_at(0, len)).unwrap();
    mux.migrate_range(f.ino, 0, 32, 1).unwrap();
    let g = mux
        .create(ROOT_INO, "stranded.dat", FileType::Regular, 0o644)
        .unwrap();
    mux.write(g.ino, 0, &pattern_at(1, (4 * BLOCK) as usize))
        .unwrap();
    mux.fsync(f.ino).unwrap();
    mux.fsync(g.ino).unwrap();

    // The PM device dies a couple of ops into promoting `safe.dat` back
    // to it (novafs coalesces an extent into few device ops, so the
    // budget must be small for the failure to land mid-copy).
    devs[0].set_fault_mode(FaultMode::FailStop { remaining_ops: 2 });
    assert!(
        mux.migrate_range(f.ino, 0, 32, 0).is_err(),
        "migration onto the dying PM must abort"
    );
    assert_eq!(mux.occ_stats().aborts(), 1);

    // Invariant: the abort lost nothing — the SSD copy is still
    // authoritative and byte-identical.
    let mut buf = vec![0u8; len];
    mux.read(f.ino, 0, &mut buf).unwrap();
    assert!(
        pattern_check(0, &buf),
        "data corrupted by aborted migration"
    );

    // Keep failing the tier (reads of PM-resident data) until the breaker
    // latches Offline.
    let mut attempts = 0;
    let mut small = vec![0u8; BLOCK as usize];
    while mux.tier_health(0).state != TierHealthState::Offline {
        let _ = mux.read(g.ino, 0, &mut small);
        attempts += 1;
        assert!(attempts < 32, "breaker never latched Offline");
    }
    let status = mux.tier_status();
    let pm = status.iter().find(|t| t.id == 0).unwrap();
    assert_eq!(pm.health, TierHealthState::Offline);
    assert!(!pm.is_writable() && !pm.is_readable());
    assert!(status
        .iter()
        .filter(|t| t.id != 0)
        .all(|t| t.health == TierHealthState::Healthy));
    // Offline reads fail fast without hammering the dead device.
    let errs = mux.tier_health(0).errors;
    assert!(mux.read(g.ino, 0, &mut small).is_err());
    assert_eq!(mux.tier_health(0).errors, errs);

    // Overwriting the stranded file redirects off the fenced tier and
    // becomes readable again.
    mux.write(g.ino, 0, &pattern_at(2, (4 * BLOCK) as usize))
        .unwrap();
    let mut buf4 = vec![0u8; (4 * BLOCK) as usize];
    mux.read(g.ino, 0, &mut buf4).unwrap();
    assert!(pattern_check(2, &buf4));
    assert!(mux.stats().snapshot().redirected_writes > 0);
    assert!(
        mux.file_placement(g.ino)
            .unwrap()
            .iter()
            .all(|(_, _, t)| *t != 0),
        "redirected blocks must leave the offline tier"
    );

    // Fresh files avoid the offline tier entirely.
    let h = mux
        .create(ROOT_INO, "after.dat", FileType::Regular, 0o644)
        .unwrap();
    mux.write(h.ino, 0, &pattern_at(3, (8 * BLOCK) as usize))
        .unwrap();
    assert!(mux
        .file_placement(h.ino)
        .unwrap()
        .iter()
        .all(|(_, _, t)| *t != 0));
    let mut buf8 = vec![0u8; (8 * BLOCK) as usize];
    mux.read(h.ino, 0, &mut buf8).unwrap();
    assert!(pattern_check(3, &buf8));

    // The whole episode is visible in the health counters.
    let snap = mux.tier_health(0);
    assert!(snap.errors > 0);
    assert!(snap.trips >= 3, "Degraded, ReadOnly, Offline: {snap:?}");
}

/// Transient (intermittent) faults on the PM device during a mixed
/// write/migrate/read workload are fully absorbed by retry with backoff:
/// nothing surfaces to callers, data stays intact, retries show in stats.
#[test]
fn intermittent_pm_faults_do_not_surface() {
    let (mux, _clock, devs) = hierarchy();
    devs[0].set_fault_mode(FaultMode::Intermittent {
        period: 24,
        seed: 42,
    });
    let f = mux
        .create(ROOT_INO, "flaky.dat", FileType::Regular, 0o644)
        .unwrap();
    let len = (16 * BLOCK) as usize;
    mux.write(f.ino, 0, &pattern_at(3, len)).unwrap();
    // Bounce the file down to the SSD and back up to the flaky PM; every
    // hop reads or writes through the faulty device.
    let mut buf = vec![0u8; len];
    mux.read(f.ino, 0, &mut buf).unwrap();
    assert!(pattern_check(3, &buf));
    mux.migrate_range(f.ino, 0, 16, 1).unwrap();
    mux.migrate_range(f.ino, 0, 16, 0).unwrap();
    mux.read(f.ino, 0, &mut buf).unwrap();
    assert!(pattern_check(3, &buf));
    // The noise was real and was retried away; the tier never latched.
    let s = mux.stats().snapshot();
    assert!(
        s.io_retries > 0,
        "expected retries under intermittent faults"
    );
    assert!(mux.health().can_write(0) && mux.health().can_read(0));
}

/// Concurrent writers while a tier dies: threads hammer their own files
/// as the PM device fail-stops mid-workload; once the breaker trips,
/// writes redirect and every surviving file reads back exactly what its
/// writer last wrote.
#[test]
fn concurrent_writers_survive_tier_death() {
    let (mux, _clock, devs) = hierarchy();
    const THREADS: u64 = 4;
    const ROUNDS: u64 = 12;
    let files: Vec<_> = (0..THREADS)
        .map(|t| {
            mux.create(ROOT_INO, &format!("t{t}.dat"), FileType::Regular, 0o644)
                .unwrap()
                .ino
        })
        .collect();
    // Seed each file (default placement: the PM tier).
    for (t, &ino) in files.iter().enumerate() {
        mux.write(ino, 0, &pattern_at(t as u64, (4 * BLOCK) as usize))
            .unwrap();
    }
    let pm = devs[0].clone();
    let handles: Vec<_> = files
        .iter()
        .enumerate()
        .map(|(t, &ino)| {
            let mux = mux.clone();
            let pm = pm.clone();
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    if t == 0 && round == ROUNDS / 2 {
                        // Half-way in, one thread kills the PM for good.
                        pm.set_fault_mode(FaultMode::FailStop { remaining_ops: 0 });
                    }
                    let seed = t as u64 * 1000 + round;
                    let data = pattern_at(seed, (4 * BLOCK) as usize);
                    // Writes may fail while the breaker is still counting
                    // the tier down; once it trips they must redirect.
                    if mux.write(ino, 0, &data).is_ok() {
                        let mut buf = vec![0u8; (4 * BLOCK) as usize];
                        if mux.read(ino, 0, &mut buf).is_ok() {
                            assert!(
                                pattern_check(seed, &buf),
                                "thread {t} round {round}: stale or torn data"
                            );
                        }
                    }
                }
                // Each failed dispatch pushes the breaker toward ReadOnly;
                // within a few attempts the write must redirect and stick.
                let fin = pattern_at(t as u64 + 500, (4 * BLOCK) as usize);
                let mut tries = 0;
                while mux.write(ino, 0, &fin).is_err() {
                    tries += 1;
                    assert!(tries < 8, "thread {t}: write never redirected");
                }
                let mut buf = vec![0u8; (4 * BLOCK) as usize];
                mux.read(ino, 0, &mut buf).unwrap();
                assert!(
                    pattern_check(t as u64 + 500, &buf),
                    "thread {t}: final readback"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // The PM is fenced and the episode is visible in the stats.
    assert!(!mux.health().can_write(0));
    let s = mux.stats().snapshot();
    assert!(s.redirected_writes > 0, "writes must have redirected");
    assert!(s.io_errors > 0);
}
