//! Concurrency stress over the full stack: many threads, many files,
//! reads + writes + migrations + policy passes all racing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mux::BLOCK;
use tvfs::{FileSystem, FileType, ROOT_INO};

#[test]
fn parallel_migrations_of_independent_files() {
    let (mux, _clock, _devs) = mux_repro::default_hierarchy(128 << 20, 256 << 20, 1 << 30);
    let mux = Arc::new(mux);
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let mux = Arc::clone(&mux);
        handles.push(std::thread::spawn(move || {
            let f = mux
                .create(ROOT_INO, &format!("par{t}"), FileType::Regular, 0o644)
                .unwrap();
            let blocks = 32u64;
            let stamp = (t + 1) as u8;
            mux.write(f.ino, 0, &vec![stamp; (blocks * BLOCK) as usize])
                .unwrap();
            for round in 0..10u64 {
                let to = ((t + round) % 3) as u32;
                mux.migrate_range(f.ino, 0, blocks, to).unwrap();
                let mut buf = vec![0u8; (blocks * BLOCK) as usize];
                mux.read(f.ino, 0, &mut buf).unwrap();
                assert!(
                    buf.iter().all(|&b| b == stamp),
                    "thread {t} saw foreign data after round {round}"
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Exactly one migration stream per file: no cross-talk in OCC stats.
    // Threads 0 and 3 start with a no-op hop (data already on tier 0),
    // so 58 of the 60 requests actually move blocks.
    let (migs, _, _, _, moved) = mux.occ_stats().snapshot();
    assert_eq!(migs, 58);
    assert_eq!(moved, 58 * 32);
}

#[test]
fn concurrent_migration_of_same_file_is_rejected_not_corrupted() {
    let (mux, _clock, _devs) = mux_repro::default_hierarchy(128 << 20, 256 << 20, 1 << 30);
    let mux = Arc::new(mux);
    let f = mux
        .create(ROOT_INO, "hot", FileType::Regular, 0o644)
        .unwrap();
    let blocks = 1024u64;
    mux.write(f.ino, 0, &vec![5u8; (blocks * BLOCK) as usize])
        .unwrap();
    let busy_seen = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(std::sync::Barrier::new(4));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let mux = Arc::clone(&mux);
        let busy_seen = Arc::clone(&busy_seen);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            for round in 0..20u64 {
                // All four threads fire together every round, so per-file
                // serialization is guaranteed to collide.
                barrier.wait();
                let to = ((t + round) % 3) as u32;
                match mux.migrate_range(f.ino, 0, blocks, to) {
                    Ok(_) => {}
                    Err(tvfs::VfsError::Busy) => {
                        busy_seen.store(true, Ordering::Relaxed);
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // With 4 threads hammering one file, at least one Busy is expected
    // (per-file migrations are serialized, §2.4) — and the data survives.
    assert!(
        busy_seen.load(Ordering::Relaxed),
        "migrations never collided"
    );
    let mut buf = vec![0u8; (blocks * BLOCK) as usize];
    mux.read(f.ino, 0, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 5));
}

#[test]
fn readers_writers_and_policy_passes_race_safely() {
    let (mux, _clock, _devs) = mux_repro::default_hierarchy(32 << 20, 256 << 20, 1 << 30);
    let mux = Arc::new(mux);
    let n_files = 8u64;
    let blocks = 16u64;
    let mut inos = Vec::new();
    for i in 0..n_files {
        let f = mux
            .create(ROOT_INO, &format!("f{i}"), FileType::Regular, 0o644)
            .unwrap();
        mux.write(f.ino, 0, &vec![i as u8; (blocks * BLOCK) as usize])
            .unwrap();
        inos.push(f.ino);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let inos = Arc::new(inos);
    let mut handles = Vec::new();
    // Writers: each owns two files, stamping block headers.
    for t in 0..4u64 {
        let mux = Arc::clone(&mux);
        let stop = Arc::clone(&stop);
        let inos = Arc::clone(&inos);
        handles.push(std::thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for k in 0..2u64 {
                    let idx = (t * 2 + k) as usize;
                    let mut page = vec![idx as u8; BLOCK as usize];
                    page[..8].copy_from_slice(&round.to_le_bytes());
                    mux.write(inos[idx], (round % blocks) * BLOCK, &page)
                        .unwrap();
                }
                round += 1;
            }
        }));
    }
    // Readers: verify every block belongs to the right file.
    for _ in 0..2 {
        let mux = Arc::clone(&mux);
        let stop = Arc::clone(&stop);
        let inos = Arc::clone(&inos);
        handles.push(std::thread::spawn(move || {
            let mut buf = vec![0u8; BLOCK as usize];
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let idx = (i % n_files) as usize;
                let b = i % blocks;
                mux.read(inos[idx], b * BLOCK, &mut buf).unwrap();
                let tail = buf[BLOCK as usize - 1];
                assert!(
                    tail == idx as u8,
                    "file {idx} block {b} contains file {tail}'s data"
                );
                i += 1;
            }
        }));
    }
    // The policy engine churns placements underneath everyone.
    for _ in 0..12 {
        mux.run_policy_migrations();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}
