//! Crash torture: random workloads, torn-write power failures, remount
//! through each file system's real recovery path, verify that everything
//! fsynced survives byte-for-byte and that the file system is consistent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simdev::{Device, FaultMode, VirtualClock};
use tvfs::{FileSystem, FileType, ROOT_INO};

const REGION: u64 = 32 * 4096;

/// Runs a random workload with periodic fsync; returns the model content
/// as of the last fsync (what must survive).
fn torture(fs: &dyn FileSystem, seed: u64) -> (Vec<u8>, u64) {
    let f = fs.create(ROOT_INO, "t", FileType::Regular, 0o644).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = vec![0u8; REGION as usize];
    let mut size = 0u64;
    for i in 0..120 {
        let off = rng.gen_range(0..REGION - 1);
        let len = rng.gen_range(1..8192).min(REGION - off);
        let fill = rng.gen::<u8>();
        fs.write(f.ino, off, &vec![fill; len as usize]).unwrap();
        model[off as usize..(off + len) as usize].fill(fill);
        size = size.max(off + len);
        if i % 17 == 16 {
            fs.fsync(f.ino).unwrap();
        }
    }
    // Final fsync: the whole model state is now the durable frontier.
    fs.fsync(f.ino).unwrap();
    (model, size)
}

fn verify(fs: &dyn FileSystem, synced: &[u8], synced_size: u64) {
    let f = fs.lookup(ROOT_INO, "t").expect("fsynced file must exist");
    assert!(f.size >= synced_size, "size rolled back past last fsync");
    let mut buf = vec![0u8; synced_size as usize];
    let n = fs.read(f.ino, 0, &mut buf).unwrap();
    assert_eq!(n as u64, synced_size);
    assert_eq!(
        &buf[..],
        &synced[..synced_size as usize],
        "fsynced content diverged"
    );
}

#[test]
fn novafs_survives_torn_write_crashes() {
    for seed in 0..6u64 {
        let dev = Device::with_profile(simdev::pmem(), 64 << 20, VirtualClock::new());
        let (synced, synced_size) = {
            let fs = novafs::NovaFs::format(dev.clone(), novafs::NovaOptions::default()).unwrap();
            torture(&fs, seed)
        };
        dev.set_fault_mode(FaultMode::TornWrites { seed });
        dev.crash();
        dev.set_fault_mode(FaultMode::None);
        let fs = novafs::NovaFs::mount(dev, novafs::NovaOptions::default()).unwrap();
        verify(&fs, &synced, synced_size);
    }
}

#[test]
fn xefs_survives_torn_write_crashes() {
    for seed in 0..6u64 {
        let dev = Device::with_profile(simdev::nvme_ssd(), 64 << 20, VirtualClock::new());
        let (synced, synced_size) = {
            let fs = xefs::XeFs::format(dev.clone(), xefs::XeOptions::default()).unwrap();
            torture(&fs, seed)
        };
        dev.set_fault_mode(FaultMode::TornWrites { seed });
        dev.crash();
        dev.set_fault_mode(FaultMode::None);
        let fs = xefs::XeFs::mount(dev, xefs::XeOptions::default()).unwrap();
        verify(&fs, &synced, synced_size);
    }
}

#[test]
fn e4fs_survives_torn_write_crashes() {
    for seed in 0..6u64 {
        let dev = Device::with_profile(simdev::hdd(), 128 << 20, VirtualClock::new());
        let opts = e4fs::E4Options {
            journal_blocks: 512,
            blocks_per_group: 4096,
            inodes_per_group: 128,
            ..Default::default()
        };
        let (synced, synced_size) = {
            let fs = e4fs::E4Fs::format(dev.clone(), opts.clone()).unwrap();
            torture(&fs, seed)
        };
        dev.set_fault_mode(FaultMode::TornWrites { seed });
        dev.crash();
        dev.set_fault_mode(FaultMode::None);
        let fs = e4fs::E4Fs::mount(dev, opts).unwrap();
        verify(&fs, &synced, synced_size);
    }
}

#[test]
fn fail_stop_mid_workload_surfaces_errors_not_corruption() {
    // A device that dies mid-run must produce I/O errors; after the device
    // "recovers" (fault cleared + remount), previously fsynced data is
    // still valid.
    let dev = Device::with_profile(simdev::nvme_ssd(), 64 << 20, VirtualClock::new());
    let fs = xefs::XeFs::format(dev.clone(), xefs::XeOptions::default()).unwrap();
    let f = fs.create(ROOT_INO, "t", FileType::Regular, 0o644).unwrap();
    fs.write(f.ino, 0, &vec![7u8; 64 * 1024]).unwrap();
    fs.fsync(f.ino).unwrap();
    dev.set_fault_mode(FaultMode::FailStop { remaining_ops: 3 });
    // Keep writing until the device dies; the FS must return Err, not
    // panic or corrupt.
    let mut died = false;
    for i in 0..64u64 {
        if fs
            .write(f.ino, i * 4096, &vec![9u8; 4096])
            .and_then(|_| fs.fsync(f.ino))
            .is_err()
        {
            died = true;
            break;
        }
    }
    assert!(died, "fail-stop never surfaced");
    // Recover the device and remount.
    dev.set_fault_mode(FaultMode::None);
    dev.crash();
    let fs2 = xefs::XeFs::mount(dev, xefs::XeOptions::default()).unwrap();
    let f2 = fs2.lookup(ROOT_INO, "t").unwrap();
    let mut buf = vec![0u8; 64 * 1024];
    fs2.read(f2.ino, 0, &mut buf).unwrap();
    // The originally fsynced bytes are either the old value or a newer
    // fsynced one — never garbage.
    assert!(buf.iter().all(|&b| b == 7 || b == 9));
}
