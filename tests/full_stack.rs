//! End-to-end integration tests over the real stack: simulated devices →
//! novafs/xefs/e4fs → Mux, exercised through the `tvfs::Vfs` POSIX-ish
//! layer exactly as an application would.

use std::sync::Arc;

use mux::{LruPolicy, Mux, MuxOptions, PinnedPolicy, StripingPolicy, TierConfig, BLOCK};
use simdev::{DeviceClass, VirtualClock};
use tvfs::{FileSystem, FileType, OpenFlags, Vfs, ROOT_INO};
use workloads::{pattern_at, pattern_check, UniformRandom};

fn hierarchy() -> (Arc<Mux>, VirtualClock, [simdev::Device; 3]) {
    mux_repro::default_hierarchy(64 << 20, 256 << 20, 1 << 30)
}

#[test]
fn vfs_posix_surface_over_mux() {
    let (mux, _clock, _devs) = hierarchy();
    let vfs = Vfs::new();
    vfs.mount("/", mux).unwrap();
    vfs.mkdir("/home").unwrap();
    vfs.mkdir("/home/user").unwrap();
    let fd = vfs
        .open("/home/user/notes.txt", OpenFlags::read_write())
        .unwrap();
    vfs.write(fd, b"first line\n").unwrap();
    vfs.write(fd, b"second line\n").unwrap();
    vfs.fsync(fd).unwrap();
    vfs.seek(fd, 0).unwrap();
    let mut buf = [0u8; 23];
    assert_eq!(vfs.read(fd, &mut buf).unwrap(), 23);
    assert_eq!(&buf, b"first line\nsecond line\n");
    vfs.close(fd).unwrap();
    // Rename + stat through the VFS.
    vfs.rename("/home/user/notes.txt", "/home/user/log.txt")
        .unwrap();
    assert_eq!(vfs.stat("/home/user/log.txt").unwrap().size, 23);
    assert!(vfs.stat("/home/user/notes.txt").is_err());
    let names: Vec<String> = vfs
        .readdir("/home/user")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["log.txt"]);
}

#[test]
fn large_file_lifecycle_across_real_tiers() {
    let (mux, _clock, devs) = hierarchy();
    let f = mux
        .create(ROOT_INO, "big.dat", FileType::Regular, 0o644)
        .unwrap();
    // 8 MiB in 1 MiB chunks with verifiable contents.
    for i in 0..8u64 {
        let off = i << 20;
        mux.write(f.ino, off, &pattern_at(off, 1 << 20)).unwrap();
    }
    mux.fsync(f.ino).unwrap();
    // Bounce it across every tier, verifying after each hop.
    for &tier in &[1u32, 2, 0, 2, 1, 0] {
        mux.migrate_file(f.ino, tier).unwrap();
        let mut buf = vec![0u8; 1 << 20];
        for i in 0..8u64 {
            let off = i << 20;
            assert_eq!(mux.read(f.ino, off, &mut buf).unwrap(), 1 << 20);
            assert!(
                pattern_check(off, &buf),
                "chunk {i} corrupted on tier {tier}"
            );
        }
    }
    // All three devices genuinely saw traffic.
    for (i, d) in devs.iter().enumerate() {
        assert!(
            d.stats().snapshot().bytes_written > 8 << 20,
            "device {i} never got the data"
        );
    }
}

#[test]
fn random_io_consistency_against_shadow_model() {
    let (mux, _clock, _devs) = hierarchy();
    let f = mux
        .create(ROOT_INO, "rand.dat", FileType::Regular, 0o644)
        .unwrap();
    let region = 2u64 << 20;
    let mut shadow = vec![0u8; region as usize];
    let mut gen = UniformRandom::new(region - 8192, 1, 1, 99);
    for i in 0..500u64 {
        let off = gen.next_off();
        let len = 1 + (i % 8192);
        let data: Vec<u8> = (0..len).map(|j| ((i + j) % 251) as u8).collect();
        mux.write(f.ino, off, &data).unwrap();
        shadow[off as usize..off as usize + data.len()].copy_from_slice(&data);
        if i % 100 == 50 {
            // Interleave migrations to shuffle placement mid-run.
            mux.migrate_range(f.ino, 0, region / BLOCK, (i % 3) as u32)
                .unwrap();
        }
    }
    let size = mux.getattr(f.ino).unwrap().size;
    let mut buf = vec![0u8; size as usize];
    mux.read(f.ino, 0, &mut buf).unwrap();
    assert_eq!(
        &buf[..],
        &shadow[..size as usize],
        "content diverged from model"
    );
}

#[test]
fn striped_file_lands_on_all_three_real_file_systems() {
    let clock = VirtualClock::new();
    let pm = simdev::Device::with_profile(simdev::pmem(), 64 << 20, clock.clone());
    let ssd = simdev::Device::with_profile(simdev::nvme_ssd(), 128 << 20, clock.clone());
    let hdd = simdev::Device::with_profile(simdev::hdd(), 256 << 20, clock.clone());
    let nova = Arc::new(novafs::NovaFs::format(pm, novafs::NovaOptions::default()).unwrap());
    let xe = Arc::new(xefs::XeFs::format(ssd, xefs::XeOptions::default()).unwrap());
    let e4 = Arc::new(e4fs::E4Fs::format(hdd, e4fs::E4Options::default()).unwrap());
    let mux = Mux::new(
        clock,
        Arc::new(StripingPolicy::new(4)),
        MuxOptions::default(),
    );
    mux.add_tier(
        TierConfig {
            name: "pm".into(),
            class: DeviceClass::Pmem,
        },
        nova.clone() as Arc<dyn FileSystem>,
    );
    mux.add_tier(
        TierConfig {
            name: "ssd".into(),
            class: DeviceClass::Ssd,
        },
        xe.clone() as Arc<dyn FileSystem>,
    );
    mux.add_tier(
        TierConfig {
            name: "hdd".into(),
            class: DeviceClass::Hdd,
        },
        e4.clone() as Arc<dyn FileSystem>,
    );
    let f = mux
        .create(ROOT_INO, "striped", FileType::Regular, 0o644)
        .unwrap();
    let data = pattern_at(0, (24 * BLOCK) as usize);
    mux.write(f.ino, 0, &data).unwrap();
    mux.fsync(f.ino).unwrap();
    // The same file name exists in all three native file systems, each
    // holding a sparse slice (§2.1/§2.2).
    for fs in [
        nova as Arc<dyn FileSystem>,
        xe as Arc<dyn FileSystem>,
        e4 as Arc<dyn FileSystem>,
    ] {
        let attr = fs.lookup(ROOT_INO, "striped").unwrap();
        assert!(attr.blocks_bytes > 0, "{} holds no blocks", fs.fs_name());
        assert!(
            attr.blocks_bytes < 24 * BLOCK,
            "{} holds everything",
            fs.fs_name()
        );
    }
    let mut buf = vec![0u8; data.len()];
    mux.read(f.ino, 0, &mut buf).unwrap();
    assert!(pattern_check(0, &buf));
}

#[test]
fn crash_recovery_full_stack() {
    let clock = VirtualClock::new();
    let pm = simdev::Device::with_profile(simdev::pmem(), 64 << 20, clock.clone());
    let ssd = simdev::Device::with_profile(simdev::nvme_ssd(), 128 << 20, clock.clone());
    let data = pattern_at(0, 300_000);
    {
        let nova =
            Arc::new(novafs::NovaFs::format(pm.clone(), novafs::NovaOptions::default()).unwrap());
        let xe = Arc::new(xefs::XeFs::format(ssd.clone(), xefs::XeOptions::default()).unwrap());
        let mux = Mux::new(
            clock.clone(),
            Arc::new(LruPolicy::default_watermarks()),
            MuxOptions::default(),
        );
        mux.add_tier(
            TierConfig {
                name: "pm".into(),
                class: DeviceClass::Pmem,
            },
            nova as Arc<dyn FileSystem>,
        );
        mux.add_tier(
            TierConfig {
                name: "ssd".into(),
                class: DeviceClass::Ssd,
            },
            xe as Arc<dyn FileSystem>,
        );
        mux.enable_metafile(0).unwrap();
        let d = mux
            .create(ROOT_INO, "dir", FileType::Directory, 0o755)
            .unwrap();
        let f = mux.create(d.ino, "file", FileType::Regular, 0o644).unwrap();
        mux.write(f.ino, 0, &data).unwrap();
        // Split across both tiers, then make everything durable.
        mux.migrate_range(f.ino, 0, 36, 1).unwrap();
        mux.fsync(f.ino).unwrap();
    }
    pm.crash();
    ssd.crash();
    // Remount everything through real recovery paths.
    let nova = Arc::new(novafs::NovaFs::mount(pm, novafs::NovaOptions::default()).unwrap());
    let xe = Arc::new(xefs::XeFs::mount(ssd, xefs::XeOptions::default()).unwrap());
    let mux = Mux::recover(
        clock,
        Arc::new(LruPolicy::default_watermarks()),
        MuxOptions::default(),
        vec![
            (
                TierConfig {
                    name: "pm".into(),
                    class: DeviceClass::Pmem,
                },
                nova as Arc<dyn FileSystem>,
            ),
            (
                TierConfig {
                    name: "ssd".into(),
                    class: DeviceClass::Ssd,
                },
                xe as Arc<dyn FileSystem>,
            ),
        ],
        0,
    )
    .unwrap();
    let d = mux.lookup(ROOT_INO, "dir").unwrap();
    let f = mux.lookup(d.ino, "file").unwrap();
    assert_eq!(f.size, data.len() as u64);
    let mut buf = vec![0u8; data.len()];
    mux.read(f.ino, 0, &mut buf).unwrap();
    assert!(pattern_check(0, &buf), "fsynced data lost across crash");
}

#[test]
fn crash_mid_migration_never_loses_committed_data() {
    // Crash after the copy but before any source reclaim has been
    // persisted: recovery must come back with exactly one consistent copy.
    let clock = VirtualClock::new();
    let pm = simdev::Device::with_profile(simdev::pmem(), 64 << 20, clock.clone());
    let ssd = simdev::Device::with_profile(simdev::nvme_ssd(), 128 << 20, clock.clone());
    let data = pattern_at(0, (16 * BLOCK) as usize);
    {
        let nova =
            Arc::new(novafs::NovaFs::format(pm.clone(), novafs::NovaOptions::default()).unwrap());
        let xe = Arc::new(xefs::XeFs::format(ssd.clone(), xefs::XeOptions::default()).unwrap());
        let mux = Mux::new(
            clock.clone(),
            Arc::new(PinnedPolicy::new(0)),
            MuxOptions::default(),
        );
        mux.add_tier(
            TierConfig {
                name: "pm".into(),
                class: DeviceClass::Pmem,
            },
            nova as Arc<dyn FileSystem>,
        );
        mux.add_tier(
            TierConfig {
                name: "ssd".into(),
                class: DeviceClass::Ssd,
            },
            xe as Arc<dyn FileSystem>,
        );
        mux.enable_metafile(0).unwrap();
        let f = mux
            .create(ROOT_INO, "mig", FileType::Regular, 0o644)
            .unwrap();
        mux.write(f.ino, 0, &data).unwrap();
        mux.fsync(f.ino).unwrap();
        mux.migrate_range(f.ino, 0, 16, 1).unwrap();
        // Deliberately NO final fsync/snapshot: the BLT move lives only in
        // the intent journal. Crash now.
    }
    pm.crash();
    ssd.crash();
    let nova = Arc::new(novafs::NovaFs::mount(pm, novafs::NovaOptions::default()).unwrap());
    let xe = Arc::new(xefs::XeFs::mount(ssd, xefs::XeOptions::default()).unwrap());
    let mux = Mux::recover(
        clock,
        Arc::new(PinnedPolicy::new(0)),
        MuxOptions::default(),
        vec![
            (
                TierConfig {
                    name: "pm".into(),
                    class: DeviceClass::Pmem,
                },
                nova as Arc<dyn FileSystem>,
            ),
            (
                TierConfig {
                    name: "ssd".into(),
                    class: DeviceClass::Ssd,
                },
                xe as Arc<dyn FileSystem>,
            ),
        ],
        0,
    )
    .unwrap();
    let f = mux.lookup(ROOT_INO, "mig").unwrap();
    let mut buf = vec![0u8; data.len()];
    mux.read(f.ino, 0, &mut buf).unwrap();
    assert!(
        pattern_check(0, &buf),
        "data lost or corrupted across mid-migration crash"
    );
}

#[test]
fn tier_added_and_removed_at_runtime_over_real_fs() {
    let (mux, clock, _devs) = hierarchy();
    let f = mux
        .create(ROOT_INO, "mobile", FileType::Regular, 0o644)
        .unwrap();
    mux.write(f.ino, 0, &pattern_at(0, (32 * BLOCK) as usize))
        .unwrap();
    // Add a CXL-SSD fourth tier backed by a real xefs instance.
    let cxl_dev = simdev::Device::with_profile(simdev::cxl_ssd(), 128 << 20, clock);
    let cxl_fs = Arc::new(xefs::XeFs::format(cxl_dev, xefs::XeOptions::default()).unwrap());
    let id = mux.add_tier(
        TierConfig {
            name: "cxl".into(),
            class: DeviceClass::CxlSsd,
        },
        cxl_fs.clone() as Arc<dyn FileSystem>,
    );
    mux.migrate_file(f.ino, id).unwrap();
    assert!(cxl_fs.lookup(ROOT_INO, "mobile").unwrap().blocks_bytes > 0);
    // Remove it: Mux must drain the data off first (§2.1).
    mux.remove_tier(id).unwrap();
    assert_eq!(cxl_fs.lookup(ROOT_INO, "mobile").unwrap().blocks_bytes, 0);
    let mut buf = vec![0u8; (32 * BLOCK) as usize];
    mux.read(f.ino, 0, &mut buf).unwrap();
    assert!(pattern_check(0, &buf), "data lost during tier removal");
}

#[test]
fn policy_migration_pass_respects_capacity_pressure() {
    // Small PM tier fills; the LRU policy demotes through Mux onto the
    // real SSD file system.
    let clock = VirtualClock::new();
    let pm = simdev::Device::with_profile(simdev::pmem(), 8 << 20, clock.clone());
    let ssd = simdev::Device::with_profile(simdev::nvme_ssd(), 256 << 20, clock.clone());
    let nova = Arc::new(novafs::NovaFs::format(pm, novafs::NovaOptions::default()).unwrap());
    let xe = Arc::new(xefs::XeFs::format(ssd, xefs::XeOptions::default()).unwrap());
    let mux = Mux::new(
        clock,
        Arc::new(LruPolicy::default_watermarks()),
        MuxOptions::default(),
    );
    mux.add_tier(
        TierConfig {
            name: "pm".into(),
            class: DeviceClass::Pmem,
        },
        nova as Arc<dyn FileSystem>,
    );
    mux.add_tier(
        TierConfig {
            name: "ssd".into(),
            class: DeviceClass::Ssd,
        },
        xe.clone() as Arc<dyn FileSystem>,
    );
    // Write files until the PM tier is pressured.
    let mut inos = Vec::new();
    for i in 0..7 {
        let f = mux
            .create(ROOT_INO, &format!("f{i}"), FileType::Regular, 0o644)
            .unwrap();
        mux.write(f.ino, 0, &vec![i as u8; 1 << 20]).unwrap();
        inos.push(f.ino);
    }
    let before = mux.tier_status();
    let summary = mux.run_policy_migrations();
    let after = mux.tier_status();
    assert!(summary.executed > 0, "pressure must trigger demotion");
    let pm_before = before.iter().find(|t| t.name == "pm").unwrap().free_bytes;
    let pm_after = after.iter().find(|t| t.name == "pm").unwrap().free_bytes;
    assert!(pm_after > pm_before, "demotion must free PM space");
    // All data still correct.
    for (i, &ino) in inos.iter().enumerate() {
        let mut buf = vec![0u8; 1 << 20];
        mux.read(ino, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == i as u8), "file {i} corrupted");
    }
}

#[test]
fn concurrent_files_and_migrations_stress() {
    let (mux, _clock, _devs) = hierarchy();
    let mux = Arc::new(mux);
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let mux = Arc::clone(&mux);
        handles.push(std::thread::spawn(move || {
            let f = mux
                .create(ROOT_INO, &format!("t{t}"), FileType::Regular, 0o644)
                .unwrap();
            for round in 0..20u64 {
                let off = (round % 8) * BLOCK;
                let data = vec![(t * 37 + round) as u8; BLOCK as usize];
                mux.write(f.ino, off, &data).unwrap();
                if round % 5 == 4 {
                    let _ = mux.migrate_range(f.ino, 0, 8, ((t + round) % 3) as u32);
                }
                let mut buf = vec![0u8; BLOCK as usize];
                mux.read(f.ino, off, &mut buf).unwrap();
                assert_eq!(buf, data, "thread {t} round {round}");
            }
            mux.fsync(f.ino).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(mux.readdir(ROOT_INO).unwrap().len(), 4);
}

#[test]
fn scm_cache_file_on_nova_accelerates_hdd_reads() {
    // The §2.5 configuration end-to-end: a preallocated cache file on the
    // PM file system, DAX-mapped, absorbing reads of HDD-resident data.
    let clock = VirtualClock::new();
    let pm = simdev::Device::with_profile(simdev::pmem(), 64 << 20, clock.clone());
    let hdd = simdev::Device::with_profile(simdev::hdd(), 1 << 30, clock.clone());
    let nova = Arc::new(novafs::NovaFs::format(pm, novafs::NovaOptions::default()).unwrap());
    let e4 = Arc::new(
        e4fs::E4Fs::format(
            hdd,
            e4fs::E4Options {
                page_cache_bytes: 1 << 20, // tiny DRAM cache: SCM must work
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let mux = Mux::new(
        clock.clone(),
        Arc::new(PinnedPolicy::new(1)), // data lives on the HDD
        mux::MuxOptions::default(),
    );
    mux.add_tier(
        TierConfig {
            name: "pm".into(),
            class: DeviceClass::Pmem,
        },
        nova.clone() as Arc<dyn FileSystem>,
    );
    mux.add_tier(
        TierConfig {
            name: "hdd".into(),
            class: DeviceClass::Hdd,
        },
        e4 as Arc<dyn FileSystem>,
    );
    let cache = mux_repro::scm_cache_on_nova(&nova, 8 << 20, mux::CacheConfig::default()).unwrap();
    assert_eq!(cache.capacity_blocks(), 2048);
    mux.attach_cache(Arc::clone(&cache));
    let f = mux
        .create(ROOT_INO, "cold.dat", FileType::Regular, 0o644)
        .unwrap();
    mux.write(f.ino, 0, &pattern_at(0, 4 << 20)).unwrap();
    mux.fsync(f.ino).unwrap();
    // First pass: misses fill the SCM cache; second pass: hits.
    let mut buf = vec![0u8; 4096];
    for pass in 0..2 {
        let t0 = clock.now_ns();
        for b in 0..1024u64 {
            mux.read(f.ino, b * 4096, &mut buf).unwrap();
            assert!(pattern_check(b * 4096, &buf), "pass {pass} block {b}");
        }
        let dt = clock.now_ns() - t0;
        if pass == 1 {
            let (hits, _) = cache.hit_stats();
            assert!(hits >= 1024, "second pass must hit the SCM cache");
            assert!(
                dt < 50_000_000,
                "cached pass should avoid HDD entirely, took {dt}ns"
            );
        }
    }
}
