//! Property tests run against all three native file systems: each must
//! behave like a flat file model under arbitrary op sequences, and must
//! survive a remount (novafs/e4fs/xefs recovery paths) with fsynced state
//! intact.

use std::sync::Arc;

use proptest::prelude::*;

use simdev::{Device, VirtualClock};
use tvfs::{FileSystem, FileType, SetAttr, ROOT_INO};

const REGION: u64 = 48 * 4096;

#[derive(Debug, Clone)]
enum Op {
    Write { off: u64, len: u64, fill: u8 },
    Read { off: u64, len: u64 },
    Punch { off: u64, len: u64 },
    Truncate { size: u64 },
    Fsync,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..REGION - 1, 1..12_000u64, any::<u8>())
            .prop_map(|(off, len, fill)| Op::Write { off, len, fill }),
        3 => (0..REGION, 1..16_000u64).prop_map(|(off, len)| Op::Read { off, len }),
        1 => (0..REGION, 1..16_000u64).prop_map(|(off, len)| Op::Punch { off, len }),
        1 => (0..REGION).prop_map(|size| Op::Truncate { size }),
        1 => Just(Op::Fsync),
    ]
}

struct Model {
    data: Vec<u8>,
    size: u64,
}

impl Model {
    fn new() -> Self {
        Model {
            data: vec![0u8; (2 * REGION) as usize],
            size: 0,
        }
    }
}

fn check_ops(fs: Arc<dyn FileSystem>, ops: &[Op]) -> Result<(), TestCaseError> {
    let f = fs.create(ROOT_INO, "f", FileType::Regular, 0o644).unwrap();
    let mut m = Model::new();
    for op in ops {
        match *op {
            Op::Write { off, len, fill } => {
                let len = len.min(REGION - off).max(1);
                let buf = vec![fill; len as usize];
                prop_assert_eq!(fs.write(f.ino, off, &buf).unwrap(), buf.len());
                m.data[off as usize..off as usize + buf.len()].copy_from_slice(&buf);
                m.size = m.size.max(off + len);
            }
            Op::Read { off, len } => {
                let mut buf = vec![0u8; len as usize];
                let n = fs.read(f.ino, off, &mut buf).unwrap();
                let want_end = (off + len).min(m.size);
                let want: &[u8] = if off >= m.size {
                    &[]
                } else {
                    &m.data[off as usize..want_end as usize]
                };
                prop_assert_eq!(&buf[..n], want, "read {}+{} on {}", off, len, fs.fs_name());
            }
            Op::Punch { off, len } => {
                fs.punch_hole(f.ino, off, len).unwrap();
                let end = ((off + len) as usize).min(m.data.len());
                m.data[off as usize..end].fill(0);
            }
            Op::Truncate { size } => {
                fs.setattr(f.ino, &SetAttr::truncate(size)).unwrap();
                if size < m.size {
                    m.data[size as usize..m.size as usize].fill(0);
                }
                m.size = size;
            }
            Op::Fsync => {
                fs.fsync(f.ino).unwrap();
            }
        }
        prop_assert_eq!(fs.getattr(f.ino).unwrap().size, m.size);
    }
    let mut buf = vec![0u8; m.size as usize];
    let n = fs.read(f.ino, 0, &mut buf).unwrap();
    prop_assert_eq!(n as u64, m.size);
    prop_assert_eq!(&buf[..], &m.data[..m.size as usize]);
    Ok(())
}

/// Runs ops, syncs, remounts through the recovery path, and verifies the
/// full content survived.
fn check_remount<F, M>(format: F, mount: M, dev: Device, ops: &[Op]) -> Result<(), TestCaseError>
where
    F: FnOnce(Device) -> Arc<dyn FileSystem>,
    M: FnOnce(Device) -> Arc<dyn FileSystem>,
{
    let mut m = Model::new();
    {
        let fs = format(dev.clone());
        let f = fs.create(ROOT_INO, "f", FileType::Regular, 0o644).unwrap();
        for op in ops {
            if let Op::Write { off, len, fill } = *op {
                let len = len.min(REGION - off).max(1);
                let buf = vec![fill; len as usize];
                fs.write(f.ino, off, &buf).unwrap();
                m.data[off as usize..off as usize + buf.len()].copy_from_slice(&buf);
                m.size = m.size.max(off + len);
            }
        }
        fs.sync().unwrap();
    }
    dev.crash(); // drop anything unflushed; sync'd state must survive
    let fs = mount(dev);
    let f = fs.lookup(ROOT_INO, "f").unwrap();
    prop_assert_eq!(f.size, m.size);
    let mut buf = vec![0u8; m.size as usize];
    fs.read(f.ino, 0, &mut buf).unwrap();
    prop_assert_eq!(&buf[..], &m.data[..m.size as usize]);
    Ok(())
}

fn nova_dev() -> Device {
    Device::with_profile(simdev::pmem(), 64 << 20, VirtualClock::new())
}

fn ssd_dev() -> Device {
    Device::with_profile(simdev::nvme_ssd(), 64 << 20, VirtualClock::new())
}

fn hdd_dev() -> Device {
    Device::with_profile(simdev::hdd(), 128 << 20, VirtualClock::new())
}

fn small_e4() -> e4fs::E4Options {
    e4fs::E4Options {
        journal_blocks: 512,
        blocks_per_group: 4096,
        inodes_per_group: 128,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn novafs_matches_model(ops in proptest::collection::vec(op_strategy(), 1..32)) {
        let fs = Arc::new(novafs::NovaFs::format(nova_dev(), novafs::NovaOptions::default()).unwrap());
        check_ops(fs, &ops)?;
    }

    #[test]
    fn xefs_matches_model(ops in proptest::collection::vec(op_strategy(), 1..32)) {
        let fs = Arc::new(xefs::XeFs::format(ssd_dev(), xefs::XeOptions::default()).unwrap());
        check_ops(fs, &ops)?;
    }

    #[test]
    fn e4fs_matches_model(ops in proptest::collection::vec(op_strategy(), 1..32)) {
        let fs = Arc::new(e4fs::E4Fs::format(hdd_dev(), small_e4()).unwrap());
        check_ops(fs, &ops)?;
    }

    #[test]
    fn novafs_survives_remount(ops in proptest::collection::vec(op_strategy(), 1..16)) {
        check_remount(
            |d| Arc::new(novafs::NovaFs::format(d, novafs::NovaOptions::default()).unwrap()) as _,
            |d| Arc::new(novafs::NovaFs::mount(d, novafs::NovaOptions::default()).unwrap()) as _,
            nova_dev(),
            &ops,
        )?;
    }

    #[test]
    fn xefs_survives_remount(ops in proptest::collection::vec(op_strategy(), 1..16)) {
        check_remount(
            |d| Arc::new(xefs::XeFs::format(d, xefs::XeOptions::default()).unwrap()) as _,
            |d| Arc::new(xefs::XeFs::mount(d, xefs::XeOptions::default()).unwrap()) as _,
            ssd_dev(),
            &ops,
        )?;
    }

    #[test]
    fn e4fs_survives_remount(ops in proptest::collection::vec(op_strategy(), 1..16)) {
        check_remount(
            |d| Arc::new(e4fs::E4Fs::format(d, small_e4()).unwrap()) as _,
            |d| Arc::new(e4fs::E4Fs::mount(d, small_e4()).unwrap()) as _,
            hdd_dev(),
            &ops,
        )?;
    }
}
