//! Offline shim for `bytes`: the `Buf`/`BufMut` trait subset this
//! workspace uses — little-endian integer accessors over `&[u8]` readers
//! and `Vec<u8>` writers. Out-of-bounds reads panic, as upstream does.

/// Read side: a cursor over bytes.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf underflow");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "Buf underflow");
        *self = &self[cnt..];
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(7);
        v.put_u16_le(0xBEEF);
        v.put_u32_le(0xDEAD_BEEF);
        v.put_u64_le(0x0123_4567_89AB_CDEF);
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "Buf underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
