//! Offline shim for `criterion`: the macro/group/bencher API over a plain
//! wall-clock measurement loop. Under `cargo bench` (cargo passes
//! `--bench`) each benchmark is measured and a `time: … ns/iter` line is
//! printed; under `cargo test` each benchmark body runs exactly once as a
//! smoke test, as upstream criterion does.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declared per-iteration volume, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Composite benchmark identifier (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        run_one(self, &label, None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        run_one(self.criterion, &label, throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    /// How many times `iter` should run its routine this call.
    iterations: u64,
    /// Accumulated routine time for the call.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(c: &Criterion, label: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !c.bench_mode {
        // cargo test: run the body once as a smoke test.
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        return;
    }
    // Warm-up: grow the batch until the warm-up budget is spent.
    let mut batch = 1u64;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iterations: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_start.elapsed() >= c.warm_up_time {
            let per_iter = b.elapsed.as_nanos().max(1) / batch.max(1) as u128;
            // Pick a batch size so one sample is ~measurement_time/sample_size.
            let target = c.measurement_time.as_nanos() / c.sample_size.max(1) as u128;
            batch = ((target / per_iter.max(1)) as u64).clamp(1, 1 << 24);
            break;
        }
        batch = (batch * 2).min(1 << 24);
    }
    // Measurement: `sample_size` batches, keep the fastest per-iter time.
    let mut best_ns = u128::MAX;
    let mut total_ns = 0u128;
    let mut total_iters = 0u64;
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iterations: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos();
        best_ns = best_ns.min(ns / batch as u128);
        total_ns += ns;
        total_iters += batch;
    }
    let mean_ns = total_ns / total_iters.max(1) as u128;
    let mut line = format!("{label:<48} time: [{best_ns} ns {mean_ns} ns/iter]");
    if let Some(t) = throughput {
        let (volume, unit) = match t {
            Throughput::Bytes(b) | Throughput::BytesDecimal(b) => (b as f64, "MiB/s"),
            Throughput::Elements(e) => (e as f64, "Kelem/s"),
        };
        if mean_ns > 0 {
            let per_sec = volume * 1e9 / mean_ns as f64;
            let scaled = match t {
                Throughput::Bytes(_) | Throughput::BytesDecimal(_) => per_sec / (1024.0 * 1024.0),
                Throughput::Elements(_) => per_sec / 1000.0,
            };
            line += &format!("  thrpt: {scaled:.1} {unit}");
        }
    }
    println!("{line}");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!{
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            bench_mode: false,
            ..Criterion::default()
        };
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn groups_run_in_test_mode() {
        let mut c = Criterion {
            bench_mode: false,
            ..Criterion::default()
        };
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(4096));
        g.bench_function("a", |b| b.iter(|| runs += 1));
        g.bench_function(BenchmarkId::new("b", 7), |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 2);
    }
}
