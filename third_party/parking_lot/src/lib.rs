//! Offline shim for `parking_lot`: the same panic-free lock API, backed by
//! `std::sync`. Poisoning is deliberately ignored (parking_lot has none);
//! a lock held by a panicking thread is simply re-acquired.

use std::sync;

pub use sync::MutexGuard as StdMutexGuard;

/// A mutex whose guards are returned directly (no `Result`), like
/// `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Condition variable forwarding to `std::sync::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard; emulate parking_lot's in-place wait
        // by taking it out and putting the reacquired guard back.
        unsafe {
            let taken = std::ptr::read(guard as *mut MutexGuard<'_, T>);
            let back = match self.0.wait(taken) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            std::ptr::write(guard as *mut MutexGuard<'_, T>, back);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        let _r = l.read();
        assert!(l.try_write().is_none());
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
