//! Offline shim for `proptest`: the `Strategy`/`proptest!` subset this
//! workspace uses. Cases are generated from a deterministic per-test RNG;
//! there is no shrinking, so a failing case is reported as generated.

pub mod test_runner {
    /// Deterministic splitmix64 generator used to produce test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test identifier so each test gets its own stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Failure value usable with `?` inside `proptest!` bodies.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` combinator (regenerates until the predicate holds).
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive cases");
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Weighted choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Boxes a strategy for use in heterogeneous collections.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec()`], inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Full-range strategy for primitives (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    pub trait Arbitrary: Sized {
        fn from_u64(raw: u64) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn from_u64(raw: u64) -> Self { raw as $t }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn from_u64(raw: u64) -> Self {
            raw & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::from_u64(rng.next_u64())
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (`w => strat`) or unweighted choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![ $(1 => $strat),+ ]
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// The test-defining macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = __outcome {
                    panic!("proptest case {} failed: {}", __case, e);
                }
            }
        }
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn ranges_in_bounds(x in 10..20u64, y in 0..=5usize) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn maps_apply(v in (0..10u64).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn oneof_and_vec(ops in crate::collection::vec(prop_oneof![
            3 => (0..100u64).prop_map(Some),
            1 => Just(None),
        ], 1..16)) {
            prop_assert!(!ops.is_empty() && ops.len() < 16);
            for x in ops.into_iter().flatten() {
                prop_assert!(x < 100);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0..1000u64;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
