//! Offline shim for `rand` 0.8: the `Rng`/`SeedableRng` subset this
//! workspace uses, backed by a splitmix64 generator. The stream differs
//! from upstream rand (equally valid for workload generation) and is NOT
//! cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

/// Types producible by `Rng::gen` (rand's `Standard` distribution).
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Numeric types drawable uniformly from a range (rand's `SampleUniform`).
pub trait SampleUniform: Copy {
    fn sample_exclusive(lo: Self, hi: Self, raw: u64) -> Self;
    fn sample_inclusive(lo: Self, hi: Self, raw: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive(lo: Self, hi: Self, raw: u64) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (raw as u128 % span) as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, raw: u64) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `Rng::gen_range`. Blanket impls over
/// [`SampleUniform`] keep integer-literal inference working as upstream.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng.next_u64())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng.next_u64())
    }
}

/// User-facing generator methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::gen_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_covers_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = r.gen();
            if f < 0.25 {
                lo = true;
            }
            if f > 0.75 {
                hi = true;
            }
        }
        assert!(lo && hi, "f64 stream does not span [0,1)");
    }
}
