//! Offline shim for `serde`: `Serialize`/`Deserialize` defined directly
//! over a JSON-like value tree (`__private::Value`). The derive macros in
//! `serde_derive` and the text layer in `serde_json` both target this
//! tree, which covers the data-model subset this workspace serializes.

pub use serde_derive::{Deserialize, Serialize};

pub mod __private {
    use std::fmt;

    /// The in-memory data model everything serializes through.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        U64(u64),
        I64(i64),
        F64(f64),
        Str(String),
        Seq(Vec<Value>),
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// Map lookup by key (first match).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_map(&self) -> Result<&[(String, Value)], Error> {
            match self {
                Value::Map(entries) => Ok(entries),
                other => Err(Error::new(format!("expected map, got {}", other.kind()))),
            }
        }

        pub fn as_str(&self) -> Result<&str, Error> {
            match self {
                Value::Str(s) => Ok(s),
                other => Err(Error::new(format!("expected string, got {}", other.kind()))),
            }
        }

        pub fn as_u64(&self) -> Result<u64, Error> {
            match *self {
                Value::U64(v) => Ok(v),
                Value::I64(v) if v >= 0 => Ok(v as u64),
                Value::F64(v) if v >= 0.0 && v.fract() == 0.0 => Ok(v as u64),
                ref other => Err(Error::new(format!(
                    "expected unsigned integer, got {}",
                    other.kind()
                ))),
            }
        }

        pub fn as_i64(&self) -> Result<i64, Error> {
            match *self {
                Value::I64(v) => Ok(v),
                Value::U64(v) if v <= i64::MAX as u64 => Ok(v as i64),
                Value::F64(v) if v.fract() == 0.0 => Ok(v as i64),
                ref other => Err(Error::new(format!(
                    "expected integer, got {}",
                    other.kind()
                ))),
            }
        }

        pub fn as_f64(&self) -> Result<f64, Error> {
            match *self {
                Value::F64(v) => Ok(v),
                Value::U64(v) => Ok(v as f64),
                Value::I64(v) => Ok(v as f64),
                ref other => Err(Error::new(format!("expected number, got {}", other.kind()))),
            }
        }

        pub fn as_bool(&self) -> Result<bool, Error> {
            match *self {
                Value::Bool(b) => Ok(b),
                ref other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
            }
        }

        fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
                Value::Str(_) => "string",
                Value::Seq(_) => "array",
                Value::Map(_) => "object",
            }
        }
    }

    /// Serialization/deserialization error.
    #[derive(Debug, Clone)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        pub fn new(msg: impl Into<String>) -> Self {
            Error { msg: msg.into() }
        }

        pub fn missing_field(ty: &str, field: &str) -> Self {
            Error::new(format!("missing field `{field}` for {ty}"))
        }

        pub fn unknown_variant(ty: &str, variant: &str) -> Self {
            Error::new(format!("unknown variant `{variant}` for {ty}"))
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}
}

use __private::{Error, Value};

/// A type that can lower itself into the shared value tree.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// A type that can rebuild itself from the shared value tree.
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::new(format!("expected array, got {:?}", other))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Seq(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
            )),
            _ => Err(Error::new("expected 2-element array")),
        }
    }
}
