//! Offline shim for `serde_derive`: a hand-rolled (no `syn`/`quote`)
//! derive for the `Serialize`/`Deserialize` traits of the sibling `serde`
//! shim. Supports the shapes this workspace uses:
//!
//! - structs with named fields, field-level `#[serde(default)]`
//! - unit-only enums (serialized as strings)
//! - internally tagged enums (`#[serde(tag = "...")]`) with unit and
//!   struct variants
//! - container-level `#[serde(rename_all = "snake_case")]`
//!
//! Anything outside that subset is a compile error, not silent
//! misbehaviour.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    rename_all_snake: bool,
    tag: Option<String>,
}

#[derive(Default)]
struct FieldAttrs {
    default: bool,
}

struct Field {
    name: String,
    ty: String,
    attrs: FieldAttrs,
}

struct Variant {
    name: String,
    fields: Option<Vec<Field>>, // None = unit variant
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    attrs: ContainerAttrs,
    name: String,
    shape: Shape,
}

fn snake_case(ident: &str) -> String {
    let mut out = String::new();
    for (i, ch) in ident.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

/// Parses `#[...]` attribute groups at `tokens[i..]`, returning serde
/// key/values seen and the index past the attributes.
fn parse_attrs(tokens: &[TokenTree], mut i: usize) -> (Vec<(String, Option<String>)>, usize) {
    let mut found = Vec::new();
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            found.extend(parse_serde_args(args.stream()));
                        }
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    (found, i)
}

/// Parses the inside of `#[serde( ... )]`: comma-separated `key` or
/// `key = "value"` entries.
fn parse_serde_args(stream: TokenStream) -> Vec<(String, Option<String>)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => panic!("serde shim: unsupported attribute syntax"),
        };
        i += 1;
        let mut value = None;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Literal(lit)) => {
                        let s = lit.to_string();
                        value = Some(s.trim_matches('"').to_string());
                        i += 1;
                    }
                    _ => panic!("serde shim: expected literal after `=`"),
                }
            }
        }
        out.push((key, value));
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    out
}

fn container_attrs(pairs: &[(String, Option<String>)]) -> ContainerAttrs {
    let mut attrs = ContainerAttrs::default();
    for (key, value) in pairs {
        match key.as_str() {
            "rename_all" => {
                if value.as_deref() != Some("snake_case") {
                    panic!("serde shim: only rename_all = \"snake_case\" is supported");
                }
                attrs.rename_all_snake = true;
            }
            "tag" => attrs.tag = value.clone(),
            other => panic!("serde shim: unsupported container attribute `{other}`"),
        }
    }
    attrs
}

fn field_attrs(pairs: &[(String, Option<String>)]) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    for (key, _) in pairs {
        match key.as_str() {
            "default" => attrs.default = true,
            other => panic!("serde shim: unsupported field attribute `{other}`"),
        }
    }
    attrs
}

/// Skips `pub`, `pub(...)` at `tokens[i..]`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses named fields from the brace group of a struct or struct variant.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (pairs, next) = parse_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim: expected `:` after field name, got {other}"),
        }
        // Collect the type until a comma at angle-bracket depth zero.
        let mut ty = String::new();
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                _ => {}
            }
            match &tokens[i] {
                TokenTree::Punct(p) => {
                    ty.push(p.as_char());
                    if p.spacing() == Spacing::Alone {
                        ty.push(' ');
                    }
                }
                other => {
                    ty.push_str(&other.to_string());
                    ty.push(' ');
                }
            }
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // consume the comma
        }
        fields.push(Field {
            name,
            ty: ty.trim().to_string(),
            attrs: field_attrs(&pairs),
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (_pairs, next) = parse_attrs(&tokens, i);
        i = next;
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected variant name, got {other}"),
        };
        i += 1;
        let mut fields = None;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    fields = Some(parse_fields(g.stream()));
                    i += 1;
                }
                Delimiter::Parenthesis => {
                    panic!("serde shim: tuple variants are not supported")
                }
                _ => {}
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (pairs, next) = parse_attrs(&tokens, 0);
    let attrs = container_attrs(&pairs);
    let mut i = skip_vis(&tokens, next);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim: generic types are not supported");
        }
    }
    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde shim: expected braced body, got {other}"),
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("serde shim: cannot derive for `{other}`"),
    };
    Input { attrs, name, shape }
}

fn variant_label(attrs: &ContainerAttrs, variant: &str) -> String {
    if attrs.rename_all_snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.shape {
        Shape::Struct(fields) => {
            body.push_str("let mut __m: Vec<(String, ::serde::__private::Value)> = Vec::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "__m.push((String::from(\"{n}\"), ::serde::Serialize::serialize_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            body.push_str("::serde::__private::Value::Map(__m)\n");
        }
        Shape::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let label = variant_label(&input.attrs, &v.name);
                match (&v.fields, &input.attrs.tag) {
                    (None, None) => body.push_str(&format!(
                        "{name}::{v} => ::serde::__private::Value::Str(String::from(\"{label}\")),\n",
                        v = v.name
                    )),
                    (None, Some(tag)) => body.push_str(&format!(
                        "{name}::{v} => ::serde::__private::Value::Map(vec![(String::from(\"{tag}\"), ::serde::__private::Value::Str(String::from(\"{label}\")))]),\n",
                        v = v.name
                    )),
                    (Some(fields), Some(tag)) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        body.push_str(&format!(
                            "{name}::{v} {{ {b} }} => {{\n",
                            v = v.name,
                            b = binders.join(", ")
                        ));
                        body.push_str(&format!(
                            "let mut __m: Vec<(String, ::serde::__private::Value)> = vec![(String::from(\"{tag}\"), ::serde::__private::Value::Str(String::from(\"{label}\")))];\n"
                        ));
                        for f in fields {
                            body.push_str(&format!(
                                "__m.push((String::from(\"{n}\"), ::serde::Serialize::serialize_value({n})));\n",
                                n = f.name
                            ));
                        }
                        body.push_str("::serde::__private::Value::Map(__m)\n},\n");
                    }
                    (Some(_), None) => panic!(
                        "serde shim: struct variants need #[serde(tag = \"...\")]"
                    ),
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::__private::Value {{\n{body}}}\n}}\n"
    )
}

fn gen_field_read(ty_name: &str, f: &Field, source: &str) -> String {
    let missing = if f.attrs.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return Err(::serde::__private::Error::missing_field(\"{ty_name}\", \"{n}\"))",
            n = f.name
        )
    };
    format!(
        "{n}: match {source}.get(\"{n}\") {{\n\
         Some(__x) => <{ty} as ::serde::Deserialize>::deserialize_value(__x)?,\n\
         None => {missing},\n\
         }},\n",
        n = f.name,
        ty = f.ty
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.shape {
        Shape::Struct(fields) => {
            body.push_str("__v.as_map()?;\n");
            body.push_str(&format!("Ok({name} {{\n"));
            for f in fields {
                body.push_str(&gen_field_read(name, f, "__v"));
            }
            body.push_str("})\n");
        }
        Shape::Enum(variants) => match &input.attrs.tag {
            None => {
                body.push_str("let __s = __v.as_str()?;\nmatch __s {\n");
                for v in variants {
                    if v.fields.is_some() {
                        panic!("serde shim: struct variants need #[serde(tag = \"...\")]");
                    }
                    let label = variant_label(&input.attrs, &v.name);
                    body.push_str(&format!("\"{label}\" => Ok({name}::{v}),\n", v = v.name));
                }
                body.push_str(&format!(
                    "__other => Err(::serde::__private::Error::unknown_variant(\"{name}\", __other)),\n}}\n"
                ));
            }
            Some(tag) => {
                body.push_str(&format!(
                    "let __tag = match __v.get(\"{tag}\") {{\n\
                     Some(t) => t.as_str()?.to_owned(),\n\
                     None => return Err(::serde::__private::Error::missing_field(\"{name}\", \"{tag}\")),\n\
                     }};\n\
                     match __tag.as_str() {{\n"
                ));
                for v in variants {
                    let label = variant_label(&input.attrs, &v.name);
                    match &v.fields {
                        None => {
                            body.push_str(&format!("\"{label}\" => Ok({name}::{v}),\n", v = v.name))
                        }
                        Some(fields) => {
                            body.push_str(&format!(
                                "\"{label}\" => Ok({name}::{v} {{\n",
                                v = v.name
                            ));
                            for f in fields {
                                body.push_str(&gen_field_read(name, f, "__v"));
                            }
                            body.push_str("}),\n");
                        }
                    }
                }
                body.push_str(&format!(
                    "__other => Err(::serde::__private::Error::unknown_variant(\"{name}\", __other)),\n}}\n"
                ));
            }
        },
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &::serde::__private::Value) -> ::std::result::Result<Self, ::serde::__private::Error> {{\n{body}}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde shim: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde shim: generated invalid Deserialize impl")
}
