//! Offline shim for `serde_json`: a complete JSON text parser/printer
//! bridging to the `serde` shim's value tree. Covers `from_str`,
//! `to_string` and `to_string_pretty`.

use serde::__private::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON parse/print error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::__private::Error> for Error {
    fn from(e: serde::__private::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize_value(&value).map_err(Error::from)
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&first) {
                                // surrogate pair
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // Keep floats recognizable as floats, as serde_json does.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(width) => (
            "\n",
            " ".repeat(width * (depth + 1)),
            " ".repeat(width * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(colon);
                write_value(val, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert!(from_str::<bool>(" true ").unwrap());
        assert_eq!(from_str::<String>(r#""a\nb""#).unwrap(), "a\nb");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn parses_nested() {
        let v: Vec<Vec<u64>> = from_str("[[1,2],[3]]").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn prints_roundtrip() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_has_indentation() {
        let s = to_string_pretty(&vec![1u64]).unwrap();
        assert_eq!(s, "[\n  1\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 x").is_err());
    }

    #[test]
    fn float_marker_preserved() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
    }
}
